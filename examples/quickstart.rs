//! Quickstart: embed a cluster, load a table, run SQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use presto::common::{DataType, Schema, Value};
use presto::PrestoEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Start an embedded cluster (coordinator + 4 simulated workers) with a
    // `memory` catalog pre-mounted.
    let engine = PrestoEngine::builder().build()?;

    // Load a little data.
    let schema = Schema::of(&[
        ("city", DataType::Varchar),
        ("country", DataType::Varchar),
        ("population", DataType::Bigint),
    ]);
    let rows: Vec<Vec<Value>> = vec![
        vec![
            Value::varchar("Tokyo"),
            Value::varchar("JP"),
            Value::Bigint(37_400_068),
        ],
        vec![
            Value::varchar("Delhi"),
            Value::varchar("IN"),
            Value::Bigint(28_514_000),
        ],
        vec![
            Value::varchar("Shanghai"),
            Value::varchar("CN"),
            Value::Bigint(25_582_000),
        ],
        vec![
            Value::varchar("Osaka"),
            Value::varchar("JP"),
            Value::Bigint(19_281_000),
        ],
        vec![
            Value::varchar("Mumbai"),
            Value::varchar("IN"),
            Value::Bigint(19_980_000),
        ],
    ];
    engine.memory_connector().load_rows("cities", schema, &rows);
    engine.memory_connector().analyze("cities")?;

    // Run queries.
    let result = engine.execute(
        "SELECT country, COUNT(*) AS cities, SUM(population) AS people \
         FROM cities GROUP BY country ORDER BY people DESC",
    )?;
    println!("country | cities | people");
    println!("--------+--------+-----------");
    for row in result.rows() {
        println!("{:7} | {:6} | {}", row[0], row[1], row[2]);
    }

    // EXPLAIN shows the distributed plan (fragments + exchanges).
    let plan = engine.execute("EXPLAIN SELECT country, COUNT(*) FROM cities GROUP BY country")?;
    println!("\n{}", plan.rows()[0][0]);

    println!(
        "query took {:?} wall, {:?} cpu",
        result.wall_time, result.cpu_time
    );
    Ok(())
}
