//! The Interactive Analytics use case (§II-A): many concurrent ad-hoc
//! queries over a Hive-style warehouse, with the MLFQ scheduler keeping
//! cheap queries fast while heavier ones run.
//!
//! ```sh
//! cargo run --release --example interactive_analytics
//! ```

use presto::cluster::{Cluster, ClusterConfig};
use presto::connector::{CatalogManager, Connector};
use presto::connectors::HiveConnector;
use presto::workload::usecases::{UseCase, WorkloadGenerator};
use presto::workload::TpchGenerator;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let warehouse = std::env::temp_dir().join("presto-example-warehouse");
    std::fs::remove_dir_all(&warehouse).ok();
    let hive = HiveConnector::new(&warehouse)?;
    println!("generating TPC-H data (scale 0.01) into the warehouse…");
    TpchGenerator::new(0.01).load_hive(&hive)?;

    let mut catalogs = CatalogManager::new();
    catalogs.register("hive", Arc::clone(&hive) as Arc<dyn Connector>);
    let cluster = Cluster::start(
        ClusterConfig {
            workers: 4,
            threads_per_worker: 2,
            ..Default::default()
        },
        catalogs,
    )?;

    // Fire 20 concurrent ad-hoc queries, like a busy dashboard hour.
    let mut generator = WorkloadGenerator::new(UseCase::Interactive, 42);
    let session = UseCase::Interactive.session();
    let handles: Vec<_> = (0..20)
        .map(|_| cluster.submit(generator.next_query(), session.clone()))
        .collect();
    let mut times = Vec::new();
    for h in handles {
        let out = h.join().unwrap()?;
        times.push(out.wall_time);
    }
    times.sort();
    println!("ran {} queries concurrently on 4 workers", times.len());
    println!("  p50 {:>10.2?}", times[times.len() / 2]);
    println!("  p90 {:>10.2?}", times[times.len() * 9 / 10]);
    println!("  max {:>10.2?}", times[times.len() - 1]);
    let busy: std::time::Duration = cluster.telemetry().worker_busy().iter().sum();
    println!("aggregate worker CPU: {busy:.2?}");
    std::fs::remove_dir_all(&warehouse).ok();
    Ok(())
}
