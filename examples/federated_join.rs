//! Federated query: one SQL statement joining three different storage
//! systems — the paper's headline capability ("process data from many
//! different data sources even within a single query", §I).
//!
//! ```sh
//! cargo run --example federated_join
//! ```

use presto::common::{DataType, NodeId, Schema, Session, Value};
use presto::connector::Connector;
use presto::connectors::{RaptorConnector, ShardedSqlConnector};
use presto::PrestoEngine;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Catalog 1: the default in-memory warehouse holds `users`.
    // Catalog 2: a Raptor (shared-nothing) store holds `events`.
    // Catalog 3: a sharded-SQL store (indexed by key) holds `accounts`.
    let raptor_dir = std::env::temp_dir().join("presto-example-raptor");
    std::fs::remove_dir_all(&raptor_dir).ok();
    let raptor = RaptorConnector::new(&raptor_dir, vec![NodeId(0), NodeId(1)])?;
    let sharded = ShardedSqlConnector::new(4);

    let engine = PrestoEngine::builder()
        .catalog("raptor", Arc::clone(&raptor) as Arc<dyn Connector>)
        .catalog("sharded", Arc::clone(&sharded) as Arc<dyn Connector>)
        .build()?;

    // users(uid, name) in memory.
    let users = Schema::of(&[("uid", DataType::Bigint), ("name", DataType::Varchar)]);
    engine.memory_connector().load_rows(
        "users",
        users,
        &(0..100)
            .map(|i| vec![Value::Bigint(i), Value::varchar(format!("user{i}"))])
            .collect::<Vec<_>>(),
    );
    engine.memory_connector().analyze("users")?;

    // events(uid, kind, amount) in Raptor, bucketed on uid.
    let events = Schema::of(&[
        ("uid", DataType::Bigint),
        ("kind", DataType::Varchar),
        ("amount", DataType::Double),
    ]);
    raptor.create_bucketed_table("events", &events, vec![0], 4)?;
    let rows: Vec<Vec<Value>> = (0..5000)
        .map(|i| {
            vec![
                Value::Bigint(i % 100),
                Value::varchar(if i % 3 == 0 { "view" } else { "click" }),
                Value::Double((i % 17) as f64),
            ]
        })
        .collect();
    raptor.load_table("events", &[presto::page::Page::from_rows(&events, &rows)])?;

    // accounts(uid, balance) in sharded SQL, indexed on uid.
    let accounts = Schema::of(&[("uid", DataType::Bigint), ("balance", DataType::Double)]);
    let rows: Vec<Vec<Value>> = (0..100)
        .map(|i| vec![Value::Bigint(i), Value::Double(i as f64 * 10.0)])
        .collect();
    sharded.load_table("accounts", accounts, 0, &rows);

    // One query, three systems: memory ⋈ raptor ⋈ sharded.
    let result = engine.execute_with_session(
        "SELECT u.name, COUNT(*) AS clicks, SUM(e.amount) AS total, MAX(a.balance) AS balance \
         FROM memory.users u \
         JOIN raptor.events e ON u.uid = e.uid \
         JOIN sharded.accounts a ON u.uid = a.uid \
         WHERE e.kind = 'click' AND u.uid < 5 \
         GROUP BY u.name ORDER BY u.name",
        &Session::default(),
    )?;
    println!("name   | clicks | total | balance");
    println!("-------+--------+-------+--------");
    for row in result.rows() {
        println!("{:6} | {:6} | {:5} | {}", row[0], row[1], row[2], row[3]);
    }
    std::fs::remove_dir_all(&raptor_dir).ok();
    Ok(())
}
