//! The Batch ETL use case (§II-B): transform a large table and write the
//! result back to the warehouse, with phased scheduling and adaptive
//! writer scaling (§IV-E3).
//!
//! ```sh
//! cargo run --release --example batch_etl
//! ```

use presto::cluster::{Cluster, ClusterConfig};
use presto::common::{DataType, Schema};
use presto::connector::{CatalogManager, Connector, ConnectorMetadata};
use presto::connectors::HiveConnector;
use presto::workload::usecases::UseCase;
use presto::workload::TpchGenerator;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let warehouse = std::env::temp_dir().join("presto-example-etl");
    std::fs::remove_dir_all(&warehouse).ok();
    let hive = HiveConnector::new(&warehouse)?;
    println!("loading TPC-H (scale 0.01)…");
    TpchGenerator::new(0.01).load_hive(&hive)?;

    // Target table for the aggregate.
    hive.create_table(
        "supplier_revenue",
        &Schema::of(&[
            ("suppkey", DataType::Bigint),
            ("returnflag", DataType::Varchar),
            ("net_revenue", DataType::Double),
            ("order_count", DataType::Bigint),
        ]),
    )?;

    let mut catalogs = CatalogManager::new();
    catalogs.register("hive", Arc::clone(&hive) as Arc<dyn Connector>);
    let cluster = Cluster::start(ClusterConfig::default(), catalogs)?;

    // ETL sessions use phased scheduling for memory efficiency (§IV-D1).
    let session = UseCase::BatchEtl.session();
    let out = cluster.execute_with_session(
        "INSERT INTO supplier_revenue \
         SELECT l.suppkey, l.returnflag, \
                SUM(l.extendedprice * (1.0 - l.discount)) AS net_revenue, \
                COUNT(*) AS order_count \
         FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey \
         GROUP BY l.suppkey, l.returnflag",
        &session,
    )?;
    println!(
        "wrote {} rows in {:.2?} (cpu {:.2?})",
        out.rows()[0][0],
        out.wall_time,
        out.cpu_time
    );

    // Read the result back.
    let check = cluster.execute_with_session(
        "SELECT returnflag, COUNT(*) AS suppliers, SUM(net_revenue) AS revenue \
         FROM supplier_revenue GROUP BY returnflag ORDER BY returnflag",
        &session,
    )?;
    println!("\nflag | suppliers | revenue");
    for row in check.rows() {
        println!(
            "{:4} | {:9} | {:.2}",
            row[0],
            row[1],
            row[2].as_f64().unwrap_or(0.0)
        );
    }
    std::fs::remove_dir_all(&warehouse).ok();
    Ok(())
}
