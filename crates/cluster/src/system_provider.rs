//! The cluster side of the `system` catalog (§VII): implements
//! [`SystemStateProvider`] over live workers, telemetry, the trace ring,
//! and the query-history store, so `system.runtime.*` tables can be
//! scanned with ordinary SQL.
//!
//! Row layouts must match [`SystemTable::schema`] positionally — the
//! connector builds pages straight from these rows. Live and historical
//! state merge per table: `queries` shows queued/running queries from
//! telemetry plus finished/failed ones from history; `tasks` and
//! `operators` show live task snapshots (worker attributed) plus retained
//! summaries of completed queries (worker NULL — task placement is not
//! kept after completion).

use presto_common::{TraceBuffer, Value};
use presto_connectors::system::{SystemStateProvider, SystemTable};
use std::sync::Arc;

use crate::history::QueryHistory;
use crate::telemetry::ClusterTelemetry;
use crate::worker::Worker;

/// Everything the system tables read from.
pub struct ClusterSystemState {
    workers: Vec<Arc<Worker>>,
    telemetry: ClusterTelemetry,
    history: Arc<QueryHistory>,
    trace: Option<Arc<TraceBuffer>>,
}

fn bigint(v: u64) -> Value {
    Value::Bigint(i64::try_from(v).unwrap_or(i64::MAX))
}

fn nanos(d: std::time::Duration) -> Value {
    bigint(d.as_nanos() as u64)
}

impl ClusterSystemState {
    pub fn new(
        workers: Vec<Arc<Worker>>,
        telemetry: ClusterTelemetry,
        history: Arc<QueryHistory>,
        trace: Option<Arc<TraceBuffer>>,
    ) -> Arc<ClusterSystemState> {
        Arc::new(ClusterSystemState {
            workers,
            telemetry,
            history,
            trace,
        })
    }

    /// `system.runtime.queries`: live queries from telemetry (history-only
    /// columns NULL), then finished/failed queries from the history store.
    fn queries(&self) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for (query, record) in self.telemetry.all_query_records() {
            if record.finished_at.is_some() {
                continue; // terminal: the history store owns the final row
            }
            let state = if record.started_at.is_some() {
                "running"
            } else {
                "queued"
            };
            rows.push(vec![
                bigint(query.0),
                Value::varchar(state),
                Value::Null,
                Value::Null,
                // Still in flight: queued time is "so far".
                bigint(record.queued_at.elapsed().as_nanos() as u64),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ]);
        }
        for e in self.history.snapshot() {
            rows.push(vec![
                bigint(e.query.0),
                Value::varchar(e.state),
                e.error_tag.map_or(Value::Null, Value::varchar),
                e.error_message
                    .as_deref()
                    .map_or(Value::Null, Value::varchar),
                nanos(e.queued),
                nanos(e.planning),
                nanos(e.executing),
                nanos(e.cpu),
                nanos(e.wall),
                bigint(e.attempts as u64),
                bigint(e.retries() as u64),
                bigint(e.peak_memory_bytes),
                bigint(e.rows_returned),
            ]);
        }
        rows
    }

    /// `system.runtime.tasks`: live tasks per worker, then retained task
    /// summaries of completed queries.
    fn tasks(&self) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for w in &self.workers {
            for handle in w.live_tasks() {
                let stats = handle.task.stats_snapshot();
                rows.push(vec![
                    bigint(handle.id.stage.query.0),
                    bigint(handle.id.stage.stage as u64),
                    bigint(handle.id.task as u64),
                    bigint(w.node.0 as u64),
                    Value::varchar("running"),
                    nanos(stats.cpu_time),
                    bigint(stats.output_pages),
                    bigint(stats.output_wire_bytes),
                    bigint(stats.output_logical_bytes),
                    bigint(stats.exchange_bytes_received),
                ]);
            }
        }
        for e in self.history.snapshot() {
            for t in &e.tasks {
                rows.push(vec![
                    bigint(e.query.0),
                    bigint(t.stage as u64),
                    bigint(t.task as u64),
                    Value::Null,
                    Value::varchar(e.state),
                    nanos(t.cpu),
                    bigint(t.output_pages),
                    bigint(t.output_wire_bytes),
                    bigint(t.output_logical_bytes),
                    bigint(t.exchange_bytes_received),
                ]);
            }
        }
        rows
    }

    /// `system.runtime.operators`: the per-operator stats rollup, live and
    /// retained.
    fn operators(&self) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for w in &self.workers {
            for handle in w.live_tasks() {
                let stats = handle.task.stats_snapshot();
                for p in &stats.pipelines {
                    for op in &p.operators {
                        let s = &op.stats;
                        rows.push(vec![
                            bigint(handle.id.stage.query.0),
                            bigint(handle.id.stage.stage as u64),
                            bigint(handle.id.task as u64),
                            bigint(p.pipeline as u64),
                            Value::varchar(op.name),
                            bigint(s.input_rows),
                            bigint(s.input_bytes),
                            bigint(s.output_rows),
                            bigint(s.output_bytes),
                            nanos(s.cpu),
                            nanos(s.blocked_total()),
                            bigint(s.peak_user_memory_bytes + s.peak_system_memory_bytes),
                            bigint(s.counter("spilled_bytes").unwrap_or(0)),
                            bigint(s.counter("spill_events").unwrap_or(0)),
                        ]);
                    }
                }
            }
        }
        for e in self.history.snapshot() {
            for t in &e.tasks {
                for op in &t.operators {
                    rows.push(vec![
                        bigint(e.query.0),
                        bigint(t.stage as u64),
                        bigint(t.task as u64),
                        bigint(op.pipeline as u64),
                        Value::varchar(op.name),
                        bigint(op.input_rows),
                        bigint(op.input_bytes),
                        bigint(op.output_rows),
                        bigint(op.output_bytes),
                        nanos(op.cpu),
                        nanos(op.blocked),
                        bigint(op.peak_memory_bytes),
                        bigint(op.spilled_bytes),
                        bigint(op.spill_events),
                    ]);
                }
            }
        }
        rows
    }

    /// `system.runtime.memory_pools`: one row per (worker, pool). The
    /// system pool tracks cache retention — it has no separate peak or
    /// limit, so those columns read 0.
    fn memory_pools(&self) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for w in &self.workers {
            let p = w.pool.snapshot();
            let worker = bigint(w.node.0 as u64);
            for (name, used, peak, limit) in [
                ("general", p.general_used, p.peak_general, p.general_limit),
                (
                    "reserved",
                    p.reserved_used,
                    p.peak_reserved,
                    p.reserved_limit,
                ),
                ("system", p.system_used, 0, 0),
            ] {
                rows.push(vec![
                    worker.clone(),
                    Value::varchar(name),
                    Value::Bigint(used),
                    Value::Bigint(peak),
                    Value::Bigint(limit),
                    Value::Bigint(p.blocked_reservations),
                    Value::Bigint(p.revocation_requests),
                    bigint(p.active_queries as u64),
                ]);
            }
        }
        rows
    }

    /// `system.runtime.caches`: one row per registered cache layer.
    fn caches(&self) -> Vec<Vec<Value>> {
        self.telemetry
            .cache_counters_by_layer()
            .into_iter()
            .map(|(layer, c)| {
                vec![
                    Value::varchar(layer),
                    bigint(c.hits),
                    bigint(c.misses),
                    bigint(c.evictions),
                    bigint(c.inserts),
                    bigint(c.invalidations),
                    bigint(c.bytes),
                ]
            })
            .collect()
    }

    /// `system.runtime.dynamic_filters`: one row of cluster-lifetime
    /// totals.
    fn dynamic_filters(&self) -> Vec<Vec<Value>> {
        let m = self.telemetry.dynamic_filter_metrics();
        vec![vec![
            bigint(m.filters_published),
            bigint(m.splits_pruned),
            bigint(m.stripes_pruned),
            bigint(m.rows_filtered),
            bigint(m.wait_nanos),
        ]]
    }

    /// `system.runtime.trace_events`: the retained trace ring, one row per
    /// event, each carrying the current overwrite count so truncation is
    /// visible from SQL. Empty when tracing is disabled.
    fn trace_events(&self) -> Vec<Vec<Value>> {
        let Some(trace) = &self.trace else {
            return Vec::new();
        };
        let overwritten = bigint(trace.overwritten_events());
        trace
            .snapshot()
            .into_iter()
            .map(|e| {
                vec![
                    Value::varchar(e.kind.name()),
                    bigint(e.ts_nanos),
                    bigint(e.dur_nanos),
                    bigint(e.pid as u64),
                    bigint(e.tid as u64),
                    bigint(e.a),
                    bigint(e.b),
                    overwritten.clone(),
                ]
            })
            .collect()
    }
}

impl SystemStateProvider for ClusterSystemState {
    fn rows(&self, table: SystemTable) -> Vec<Vec<Value>> {
        match table {
            SystemTable::Queries => self.queries(),
            SystemTable::Tasks => self.tasks(),
            SystemTable::Operators => self.operators(),
            SystemTable::MemoryPools => self.memory_pools(),
            SystemTable::Caches => self.caches(),
            SystemTable::DynamicFilters => self.dynamic_filters(),
            SystemTable::TraceEvents => self.trace_events(),
        }
    }
}
