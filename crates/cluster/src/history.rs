//! Bounded query-history store (§VII): lifecycle and final statistics of
//! the last N queries, so `system.runtime.queries` (and tasks/operators)
//! cover finished queries, not just live ones.
//!
//! The store is lock-cheap by construction: the coordinator records one
//! fully-built [`QueryHistoryEntry`] per finished query under a short
//! mutex push (the expensive part — summarizing the `QueryStats` tree —
//! happens outside the lock), and readers clone `Arc`s out. Retention is
//! a ring: once `capacity` entries are held, recording the next evicts
//! the oldest, and the eviction count is exported so truncation is never
//! silent.

use parking_lot::Mutex;
use presto_common::QueryId;
use presto_exec::QueryStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One state transition, stamped in nanoseconds since cluster start (the
/// [`crate::telemetry::ClusterTelemetry::now_nanos`] domain). States:
/// "queued", "started", "retry" (one per retry attempt, with chaos/fault
/// retries included), "finished", "failed".
#[derive(Debug, Clone)]
pub struct LifecycleEvent {
    pub state: &'static str,
    pub at_nanos: u64,
}

/// One operator's final counters within a task.
#[derive(Debug, Clone)]
pub struct OperatorSummary {
    pub pipeline: u32,
    pub name: &'static str,
    pub input_rows: u64,
    pub input_bytes: u64,
    pub output_rows: u64,
    pub output_bytes: u64,
    pub cpu: Duration,
    pub blocked: Duration,
    pub peak_memory_bytes: u64,
    /// Bytes this operator wrote to spill run files (§IV-F2).
    pub spilled_bytes: u64,
    /// Spill episodes (revocations and overflow flushes).
    pub spill_events: u64,
}

/// One task's final counters (per-stage rows/bytes roll up from these).
#[derive(Debug, Clone)]
pub struct TaskSummary {
    pub stage: u32,
    pub task: u32,
    pub cpu: Duration,
    pub output_pages: u64,
    pub output_wire_bytes: u64,
    pub output_logical_bytes: u64,
    pub exchange_bytes_received: u64,
    pub operators: Vec<OperatorSummary>,
}

/// Everything retained about one finished (or failed) query.
#[derive(Debug, Clone)]
pub struct QueryHistoryEntry {
    pub query: QueryId,
    /// "finished" or "failed".
    pub state: &'static str,
    pub error_tag: Option<&'static str>,
    pub error_message: Option<String>,
    /// Explicit phase wall times (planning/executing summed over retries).
    pub queued: Duration,
    pub planning: Duration,
    pub executing: Duration,
    pub cpu: Duration,
    pub wall: Duration,
    /// 1 + retries.
    pub attempts: u32,
    /// Sum of per-operator memory high-water marks — an upper-bound-ish
    /// account of what the query held at peak.
    pub peak_memory_bytes: u64,
    pub rows_returned: u64,
    pub tasks: Vec<TaskSummary>,
    /// State transitions with timestamps, retries and fault events
    /// included.
    pub events: Vec<LifecycleEvent>,
    /// When the terminal state was recorded, nanos since cluster start.
    pub finished_at_nanos: u64,
}

impl QueryHistoryEntry {
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Summarize a final [`QueryStats`] tree into per-task retained form,
/// returning the task summaries and the summed peak-memory account.
pub fn summarize_stats(stats: &QueryStats) -> (Vec<TaskSummary>, u64) {
    let mut tasks = Vec::new();
    let mut peak = 0u64;
    for stage in &stats.stages {
        for t in &stage.tasks {
            let mut operators = Vec::new();
            for p in &t.pipelines {
                for op in &p.operators {
                    let s = &op.stats;
                    let op_peak = s.peak_user_memory_bytes + s.peak_system_memory_bytes;
                    peak += op_peak;
                    operators.push(OperatorSummary {
                        pipeline: p.pipeline as u32,
                        name: op.name,
                        input_rows: s.input_rows,
                        input_bytes: s.input_bytes,
                        output_rows: s.output_rows,
                        output_bytes: s.output_bytes,
                        cpu: s.cpu,
                        blocked: s.blocked_total(),
                        peak_memory_bytes: op_peak,
                        spilled_bytes: s.counter("spilled_bytes").unwrap_or(0),
                        spill_events: s.counter("spill_events").unwrap_or(0),
                    });
                }
            }
            tasks.push(TaskSummary {
                stage: stage.stage,
                task: t.task.task,
                cpu: t.cpu_time,
                output_pages: t.output_pages,
                output_wire_bytes: t.output_wire_bytes,
                output_logical_bytes: t.output_logical_bytes,
                exchange_bytes_received: t.exchange_bytes_received,
                operators,
            });
        }
    }
    (tasks, peak)
}

/// The bounded ring of retained queries.
pub struct QueryHistory {
    capacity: usize,
    entries: Mutex<VecDeque<Arc<QueryHistoryEntry>>>,
    recorded: AtomicU64,
    evicted: AtomicU64,
}

impl QueryHistory {
    /// `capacity` 0 disables retention entirely (records become no-ops).
    pub fn new(capacity: usize) -> Arc<QueryHistory> {
        Arc::new(QueryHistory {
            capacity,
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        })
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queries recorded over the cluster lifetime (≥ `len`).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Entries dropped to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Record a finished query. The entry should be fully built before the
    /// call; the lock is held only for the ring push.
    pub fn record(&self, entry: QueryHistoryEntry) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let entry = Arc::new(entry);
        let mut entries = self.entries.lock();
        if entries.len() >= self.capacity {
            entries.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        entries.push_back(entry);
    }

    /// Every retained entry, oldest first.
    pub fn snapshot(&self) -> Vec<Arc<QueryHistoryEntry>> {
        self.entries.lock().iter().cloned().collect()
    }

    /// The retained entry for one query, if it has not been evicted.
    pub fn get(&self, query: QueryId) -> Option<Arc<QueryHistoryEntry>> {
        self.entries
            .lock()
            .iter()
            .find(|e| e.query == query)
            .cloned()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn entry(id: u64) -> QueryHistoryEntry {
        QueryHistoryEntry {
            query: QueryId(id),
            state: "finished",
            error_tag: None,
            error_message: None,
            queued: Duration::from_micros(5),
            planning: Duration::from_micros(50),
            executing: Duration::from_millis(2),
            cpu: Duration::from_millis(1),
            wall: Duration::from_millis(3),
            attempts: 1,
            peak_memory_bytes: 1024,
            rows_returned: 10,
            tasks: Vec::new(),
            events: vec![
                LifecycleEvent {
                    state: "queued",
                    at_nanos: id * 100,
                },
                LifecycleEvent {
                    state: "finished",
                    at_nanos: id * 100 + 50,
                },
            ],
            finished_at_nanos: id * 100 + 50,
        }
    }

    #[test]
    fn retains_last_n_and_counts_evictions() {
        let h = QueryHistory::new(3);
        for i in 0..10 {
            h.record(entry(i));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.recorded(), 10);
        assert_eq!(h.evicted(), 7);
        let ids: Vec<u64> = h.snapshot().iter().map(|e| e.query.0).collect();
        assert_eq!(ids, vec![7, 8, 9], "oldest evicted first");
        assert!(h.get(QueryId(9)).is_some());
        assert!(h.get(QueryId(0)).is_none());
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let h = QueryHistory::new(0);
        h.record(entry(1));
        assert!(h.is_empty());
        assert_eq!(h.recorded(), 1);
        assert_eq!(h.evicted(), 1);
    }

    #[test]
    fn concurrent_recording_respects_bound() {
        let h = QueryHistory::new(16);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..500 {
                        h.record(entry(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(h.len(), 16);
        assert_eq!(h.recorded(), 4000);
        assert_eq!(h.evicted(), 4000 - 16);
    }
}
