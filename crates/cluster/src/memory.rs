//! Node memory pools with general/reserved arbitration (§IV-F2).
//!
//! Every node has a *general* pool and a *reserved* pool. Queries reserve
//! user and system memory against the general pool, subject to per-query
//! per-node and global limits. When a node's general pool is exhausted,
//! the query using the most memory on that node is *promoted* to the
//! reserved pool — on every node, and at most one query cluster-wide —
//! which lets it finish and unblock everyone else. Alternatively the
//! cluster can be configured to kill that query instead.

use parking_lot::Mutex;
use presto_common::{PrestoError, QueryId, Result, TraceBuffer, TraceKind};
use presto_exec::memory::{MemoryPool, ReservationResult, RevocationHandle};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};

/// Per-query, cluster-wide memory counters and limits, shared by all node
/// pools. Registered by the coordinator at admission.
#[derive(Debug)]
pub struct QueryMemoryLimits {
    pub query: QueryId,
    /// Global (cluster-aggregated) user-memory limit.
    pub max_user_global: u64,
    /// Per-node user-memory limit.
    pub max_user_per_node: u64,
    /// Per-node total (user+system) limit.
    pub max_total_per_node: u64,
    /// Cluster-wide user memory currently reserved.
    pub global_user: AtomicI64,
    /// Set when the query was killed for memory; carries the message.
    pub killed: Mutex<Option<String>>,
}

impl QueryMemoryLimits {
    pub fn new(
        query: QueryId,
        max_user_global: u64,
        max_user_per_node: u64,
        max_total_per_node: u64,
    ) -> Arc<QueryMemoryLimits> {
        Arc::new(QueryMemoryLimits {
            query,
            max_user_global,
            max_user_per_node,
            max_total_per_node,
            global_user: AtomicI64::new(0),
            killed: Mutex::new(None),
        })
    }
}

/// Cluster-wide reserved-pool ownership: "To prevent deadlock (where
/// different workers stall different queries) only a single query can
/// enter the reserved pool across the entire cluster."
#[derive(Debug, Default)]
pub struct ReservedPoolLock {
    owner: Mutex<Option<QueryId>>,
}

impl ReservedPoolLock {
    pub fn new() -> Arc<ReservedPoolLock> {
        Arc::new(ReservedPoolLock::default())
    }

    /// Try to promote `query`; returns true if it now owns (or already
    /// owned) the reserved pool.
    fn try_acquire(&self, query: QueryId) -> bool {
        let mut owner = self.owner.lock();
        match *owner {
            None => {
                *owner = Some(query);
                true
            }
            Some(q) => q == query,
        }
    }

    pub fn owner(&self) -> Option<QueryId> {
        *self.owner.lock()
    }

    /// Release if `query` owns the pool (query completion).
    pub fn release(&self, query: QueryId) {
        let mut owner = self.owner.lock();
        if *owner == Some(query) {
            *owner = None;
        }
    }
}

#[derive(Debug, Default, Clone)]
struct QueryUsage {
    user: i64,
    system: i64,
}

struct PoolState {
    general_used: i64,
    reserved_used: i64,
    peak_general: i64,
    peak_reserved: i64,
    per_query: HashMap<QueryId, QueryUsage>,
}

impl PoolState {
    fn note_peaks(&mut self) {
        self.peak_general = self.peak_general.max(self.general_used);
        self.peak_reserved = self.peak_reserved.max(self.reserved_used);
    }
}

/// Point-in-time view of one node pool, for metrics export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    pub general_used: i64,
    pub reserved_used: i64,
    pub system_used: i64,
    pub peak_general: i64,
    pub peak_reserved: i64,
    pub general_limit: i64,
    pub reserved_limit: i64,
    pub blocked_reservations: i64,
    /// Spill requests the arbiter issued to revocable reservations
    /// (§IV-F2 revocable memory) instead of promoting or killing.
    pub revocation_requests: i64,
    /// Queries with non-zero accounting on this node right now.
    pub active_queries: usize,
}

/// One worker node's memory pool.
pub struct NodeMemoryPool {
    node: presto_common::NodeId,
    general_limit: i64,
    reserved_limit: i64,
    kill_on_exhausted: bool,
    state: Mutex<PoolState>,
    reserved: Arc<ReservedPoolLock>,
    limits: Mutex<HashMap<QueryId, Arc<QueryMemoryLimits>>>,
    /// Count of reservation attempts that blocked (telemetry).
    blocked_reservations: AtomicI64,
    /// Per-driver revocable reservations (§IV-F2 revocable memory). On
    /// general-pool exhaustion the arbiter asks the largest one to spill
    /// *before* reserved-pool promotion or kill.
    revocables: Mutex<HashMap<QueryId, Vec<Arc<RevocationHandle>>>>,
    /// Spill requests issued by the arbiter (telemetry).
    revocation_requests: AtomicI64,
    /// Node-level *system* memory not owned by any query — metadata and
    /// footer caches. It consumes general-pool headroom so that cached
    /// bytes participate in §IV-F2 arbitration, but never blocks or kills:
    /// caches bound themselves by eviction.
    system_used: AtomicI64,
    /// Optional timeline: grants/revokes land here as trace events.
    trace: OnceLock<Arc<TraceBuffer>>,
}

impl NodeMemoryPool {
    pub fn new(
        node: presto_common::NodeId,
        general_limit: u64,
        reserved_limit: u64,
        kill_on_exhausted: bool,
        reserved: Arc<ReservedPoolLock>,
    ) -> Arc<NodeMemoryPool> {
        Arc::new(NodeMemoryPool {
            node,
            general_limit: general_limit as i64,
            reserved_limit: reserved_limit as i64,
            kill_on_exhausted,
            state: Mutex::new(PoolState {
                general_used: 0,
                reserved_used: 0,
                peak_general: 0,
                peak_reserved: 0,
                per_query: HashMap::new(),
            }),
            reserved,
            limits: Mutex::new(HashMap::new()),
            blocked_reservations: AtomicI64::new(0),
            revocables: Mutex::new(HashMap::new()),
            revocation_requests: AtomicI64::new(0),
            system_used: AtomicI64::new(0),
            trace: OnceLock::new(),
        })
    }

    /// Ask the largest revocable reservation (any query, any driver) to
    /// spill. Returns false when none has revocable bytes left or all are
    /// already servicing a request — the caller then falls through to
    /// promotion/kill so an unserviced request can never stall the pool.
    fn request_revocation(&self) -> bool {
        let revocables = self.revocables.lock();
        let target = revocables
            .values()
            .flatten()
            .filter(|h| h.bytes() > 0 && !h.is_requested())
            .max_by_key(|h| h.bytes());
        match target {
            Some(handle) => {
                handle.request();
                self.revocation_requests.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Spill requests the arbiter has issued so far.
    pub fn revocation_requests(&self) -> i64 {
        self.revocation_requests.load(Ordering::Relaxed)
    }

    /// Attach a trace buffer; reservation grants and releases then emit
    /// [`TraceKind::MemoryGrant`] / [`TraceKind::MemoryRevoke`] events.
    pub fn set_trace(&self, trace: Arc<TraceBuffer>) {
        let _ = self.trace.set(trace);
    }

    fn trace_delta(&self, query: QueryId, delta: i64) {
        if delta == 0 {
            return;
        }
        if let Some(trace) = self.trace.get() {
            let kind = if delta > 0 {
                TraceKind::MemoryGrant
            } else {
                TraceKind::MemoryRevoke
            };
            trace.record(kind, self.node.0, 0, query.0, delta.unsigned_abs());
        }
    }

    /// Charge (or release, negative `delta`) node-level system memory that
    /// belongs to no query, e.g. cache retention. Never blocks: the caller
    /// is expected to bound itself (caches evict at capacity), this call
    /// only makes the bytes visible to general-pool arbitration.
    pub fn reserve_system(&self, delta: i64) {
        self.system_used.fetch_add(delta, Ordering::Relaxed);
    }

    /// Node-level system memory currently charged via
    /// [`reserve_system`](Self::reserve_system).
    pub fn system_bytes(&self) -> i64 {
        self.system_used.load(Ordering::Relaxed)
    }

    /// Register a query's limits before its tasks run on this node.
    pub fn register_query(&self, limits: Arc<QueryMemoryLimits>) {
        let query = limits.query;
        self.limits.lock().insert(query, limits);
        // The usage entry doubles as the registration token under the state
        // lock: `reserve` refuses to touch pool counters once
        // `unregister_query` has removed it, so a reservation racing
        // teardown cannot resurrect accounting that nobody will clean up.
        self.state.lock().per_query.entry(query).or_default();
    }

    /// Drop a finished query's accounting.
    pub fn unregister_query(&self, query: QueryId) {
        self.revocables.lock().remove(&query);
        let mut state = self.state.lock();
        if let Some(usage) = state.per_query.remove(&query) {
            if self.reserved.owner() == Some(query) {
                state.reserved_used -= usage.user + usage.system;
            } else {
                state.general_used -= usage.user + usage.system;
            }
        }
        drop(state);
        if let Some(limits) = self.limits.lock().remove(&query) {
            // Roll back this node's contribution to the global counter.
            // (Usage was already removed above; global counter adjusts as
            // tasks released, so nothing further here.)
            let _ = limits;
        }
        self.reserved.release(query);
    }

    /// Current general-pool utilization in [0, 1+], including node-level
    /// system memory (cache retention), which shares general headroom.
    pub fn general_utilization(&self) -> f64 {
        let state = self.state.lock();
        let used = state.general_used + self.system_used.load(Ordering::Relaxed);
        used as f64 / self.general_limit.max(1) as f64
    }

    pub fn blocked_reservations(&self) -> i64 {
        self.blocked_reservations.load(Ordering::Relaxed)
    }

    /// Memory used by `query` on this node.
    pub fn query_usage(&self, query: QueryId) -> (i64, i64) {
        let state = self.state.lock();
        state
            .per_query
            .get(&query)
            .map(|u| (u.user, u.system))
            .unwrap_or((0, 0))
    }

    /// Point-in-time usage, limits, and high-water marks.
    pub fn snapshot(&self) -> PoolSnapshot {
        let state = self.state.lock();
        PoolSnapshot {
            general_used: state.general_used,
            reserved_used: state.reserved_used,
            system_used: self.system_used.load(Ordering::Relaxed),
            peak_general: state.peak_general,
            peak_reserved: state.peak_reserved,
            general_limit: self.general_limit,
            reserved_limit: self.reserved_limit,
            blocked_reservations: self.blocked_reservations.load(Ordering::Relaxed),
            revocation_requests: self.revocation_requests.load(Ordering::Relaxed),
            active_queries: state
                .per_query
                .values()
                .filter(|u| u.user + u.system != 0)
                .count(),
        }
    }
}

impl MemoryPool for NodeMemoryPool {
    fn reserve(
        &self,
        query: QueryId,
        user_delta: i64,
        system_delta: i64,
    ) -> Result<ReservationResult> {
        let limits = self.limits.lock().get(&query).cloned();
        let Some(limits) = limits else {
            if user_delta <= 0 && system_delta <= 0 {
                // A release racing query teardown: the accounting was
                // already zeroed by `unregister_query`; nothing to return.
                return Ok(ReservationResult::Granted);
            }
            return Err(PrestoError::internal(format!(
                "query {query} not registered on {}",
                self.node
            )));
        };
        if user_delta + system_delta > 0 {
            // Growth is refused once the query is memory-killed; releases
            // must still drain so teardown leaves the pool at zero.
            if let Some(msg) = limits.killed.lock().clone() {
                return Err(PrestoError::resources(msg));
            }
        }
        let mut state = self.state.lock();
        let Some(usage) = state.per_query.get(&query) else {
            // `unregister_query` won the race between our limits lookup and
            // here. Applying the delta now would mutate counters nobody
            // cleans up afterwards, so drop it: the unregister already
            // returned this query's entire balance.
            return if user_delta <= 0 && system_delta <= 0 {
                Ok(ReservationResult::Granted)
            } else {
                Err(PrestoError::internal(format!(
                    "query {query} no longer registered on {}",
                    self.node
                )))
            };
        };
        let (cur_user, cur_system) = (usage.user, usage.system);
        // Clamp releases to what this query actually has charged here, so a
        // duplicated release (task abort racing normal driver teardown)
        // cannot drive the pool negative.
        let user_delta = if user_delta < 0 {
            user_delta.max(-cur_user)
        } else {
            user_delta
        };
        let system_delta = if system_delta < 0 {
            system_delta.max(-cur_system)
        } else {
            system_delta
        };
        let total_delta = user_delta + system_delta;
        let new_user = cur_user + user_delta;
        let new_total = cur_user + cur_system + total_delta;
        // Hard per-query limits: exceeding kills the query (§IV-F2
        // "queries that exceed a global limit … or per-node limit are
        // killed").
        if new_user > limits.max_user_per_node as i64 {
            let msg = format!(
                "query exceeded per-node user memory limit of {} bytes on {}",
                limits.max_user_per_node, self.node
            );
            *limits.killed.lock() = Some(msg.clone());
            return Err(PrestoError::resources(msg));
        }
        if new_total > limits.max_total_per_node as i64 {
            let msg = format!(
                "query exceeded per-node total memory limit of {} bytes on {}",
                limits.max_total_per_node, self.node
            );
            *limits.killed.lock() = Some(msg.clone());
            return Err(PrestoError::resources(msg));
        }
        let new_global = limits.global_user.load(Ordering::Relaxed) + user_delta;
        if new_global > limits.max_user_global as i64 {
            let msg = format!(
                "query exceeded global user memory limit of {} bytes",
                limits.max_user_global
            );
            *limits.killed.lock() = Some(msg.clone());
            return Err(PrestoError::resources(msg));
        }
        // Which pool does this query charge? Node-level system memory
        // (cache retention) shares the general pool's headroom.
        let cache_system = self.system_used.load(Ordering::Relaxed);
        let in_reserved = self.reserved.owner() == Some(query);
        let (used, limit) = if in_reserved {
            (state.reserved_used, self.reserved_limit)
        } else {
            (state.general_used + cache_system, self.general_limit)
        };
        if total_delta > 0 && used + total_delta > limit {
            if !in_reserved {
                // §IV-F2 revocable memory: before promoting or killing, ask
                // the largest spillable reservation on this node to revoke.
                // The owning driver spills at its next quantum, frees the
                // memory, and this (blocked) reservation retries. Only when
                // nothing revocable remains does arbitration escalate.
                if self.request_revocation() {
                    self.blocked_reservations.fetch_add(1, Ordering::Relaxed);
                    return Ok(ReservationResult::Blocked);
                }
                // General pool exhausted: promote the biggest query on this
                // node to the reserved pool — but only when the reserved
                // pool is free (one owner cluster-wide), and never move a
                // query's usage twice.
                let biggest = if self.reserved.owner().is_none() {
                    state
                        .per_query
                        .iter()
                        .max_by_key(|(_, u)| u.user + u.system)
                        .map(|(q, _)| *q)
                } else {
                    None
                };
                if let Some(big) = biggest {
                    if self.reserved.try_acquire(big) {
                        // Move the promoted query's usage across pools.
                        if let Some(u) = state.per_query.get(&big) {
                            let moved = u.user + u.system;
                            state.general_used -= moved;
                            state.reserved_used += moved;
                        }
                        // Re-check after promotion (the caller may itself be
                        // the promoted query).
                        let in_reserved_now = big == query;
                        let (used2, limit2) = if in_reserved_now {
                            (state.reserved_used, self.reserved_limit)
                        } else {
                            (state.general_used + cache_system, self.general_limit)
                        };
                        if used2 + total_delta <= limit2 {
                            let usage = state.per_query.entry(query).or_default();
                            usage.user += user_delta;
                            usage.system += system_delta;
                            if in_reserved_now {
                                state.reserved_used += total_delta;
                            } else {
                                state.general_used += total_delta;
                            }
                            state.note_peaks();
                            limits.global_user.fetch_add(user_delta, Ordering::Relaxed);
                            drop(state);
                            self.trace_delta(query, total_delta);
                            return Ok(ReservationResult::Granted);
                        }
                    }
                }
                if self.kill_on_exhausted {
                    let msg = format!(
                        "node {} out of memory; killing query using most memory",
                        self.node
                    );
                    *limits.killed.lock() = Some(msg.clone());
                    return Err(PrestoError::resources(msg));
                }
            }
            self.blocked_reservations.fetch_add(1, Ordering::Relaxed);
            return Ok(ReservationResult::Blocked);
        }
        // Granted.
        let usage = state.per_query.entry(query).or_default();
        usage.user += user_delta;
        usage.system += system_delta;
        if in_reserved {
            state.reserved_used += total_delta;
        } else {
            state.general_used += total_delta;
        }
        state.note_peaks();
        limits.global_user.fetch_add(user_delta, Ordering::Relaxed);
        drop(state);
        self.trace_delta(query, total_delta);
        Ok(ReservationResult::Granted)
    }

    fn register_revocable(&self, query: QueryId, handle: Arc<RevocationHandle>) {
        self.revocables.lock().entry(query).or_default().push(handle);
    }

    fn unregister_revocable(&self, query: QueryId, handle: &Arc<RevocationHandle>) {
        let mut revocables = self.revocables.lock();
        if let Some(handles) = revocables.get_mut(&query) {
            handles.retain(|h| !Arc::ptr_eq(h, handle));
            if handles.is_empty() {
                revocables.remove(&query);
            }
        }
    }
}

/// Bridges the metadata cache's retained-byte accounting into the worker
/// pools: every byte the cache retains is charged as *system* memory on
/// every node. (The production deployment caches footers independently on
/// each worker; our single-process cache is conceptually replicated, so
/// the full balance lands on each pool.)
pub struct PoolSystemCharger {
    pools: Vec<Arc<NodeMemoryPool>>,
}

impl PoolSystemCharger {
    pub fn new(pools: Vec<Arc<NodeMemoryPool>>) -> PoolSystemCharger {
        PoolSystemCharger { pools }
    }
}

impl presto_cache::MemoryCharger for PoolSystemCharger {
    fn charge(&self, delta: i64) {
        for pool in &self.pools {
            pool.reserve_system(delta);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::NodeId;

    fn setup(
        general: u64,
        reserved: u64,
        kill: bool,
    ) -> (Arc<NodeMemoryPool>, Arc<ReservedPoolLock>) {
        let lock = ReservedPoolLock::new();
        let pool = NodeMemoryPool::new(NodeId(0), general, reserved, kill, Arc::clone(&lock));
        (pool, lock)
    }

    fn limits(q: u64) -> Arc<QueryMemoryLimits> {
        QueryMemoryLimits::new(QueryId(q), 1 << 40, 1 << 40, 1 << 40)
    }

    #[test]
    fn per_node_limit_kills() {
        let (pool, _) = setup(1 << 30, 1 << 20, false);
        let l = QueryMemoryLimits::new(QueryId(1), 1 << 40, 100, 1 << 40);
        pool.register_query(l);
        assert!(matches!(
            pool.reserve(QueryId(1), 50, 0),
            Ok(ReservationResult::Granted)
        ));
        let err = pool.reserve(QueryId(1), 60, 0).unwrap_err();
        assert_eq!(err.code, presto_common::ErrorCode::InsufficientResources);
        // Once killed, every further reservation fails.
        assert!(pool.reserve(QueryId(1), 1, 0).is_err());
    }

    #[test]
    fn global_limit_kills() {
        let (pool, _) = setup(1 << 30, 1 << 20, false);
        let l = QueryMemoryLimits::new(QueryId(2), 100, 1 << 40, 1 << 40);
        pool.register_query(l);
        assert!(pool.reserve(QueryId(2), 200, 0).is_err());
    }

    #[test]
    fn reserved_pool_promotion_unblocks_biggest() {
        let (pool, lock) = setup(100, 1000, false);
        pool.register_query(limits(1));
        pool.register_query(limits(2));
        // q1 takes most of the general pool.
        assert!(matches!(
            pool.reserve(QueryId(1), 80, 0),
            Ok(ReservationResult::Granted)
        ));
        // q2 wants more than remains → q1 (biggest) promotes to reserved,
        // freeing the general pool for q2.
        assert!(matches!(
            pool.reserve(QueryId(2), 50, 0),
            Ok(ReservationResult::Granted)
        ));
        assert_eq!(lock.owner(), Some(QueryId(1)));
        // q1 now charges the reserved pool and can keep growing.
        assert!(matches!(
            pool.reserve(QueryId(1), 500, 0),
            Ok(ReservationResult::Granted)
        ));
        // A third query that still does not fit blocks (single reserved
        // owner cluster-wide).
        pool.register_query(limits(3));
        assert!(matches!(
            pool.reserve(QueryId(3), 80, 0),
            Ok(ReservationResult::Blocked)
        ));
        assert!(pool.blocked_reservations() > 0);
        // When q1 finishes, the reserved pool frees.
        pool.unregister_query(QueryId(1));
        assert_eq!(lock.owner(), None);
    }

    #[test]
    fn arbiter_requests_largest_revocable_before_promotion() {
        let (pool, lock) = setup(100, 1000, false);
        pool.register_query(limits(1));
        pool.register_query(limits(2));
        // Two revocable reservations; q1's is larger.
        let small = RevocationHandle::new();
        small.set_bytes(10);
        let big = RevocationHandle::new();
        big.set_bytes(70);
        pool.register_revocable(QueryId(2), Arc::clone(&small));
        pool.register_revocable(QueryId(1), Arc::clone(&big));
        assert!(matches!(
            pool.reserve(QueryId(1), 80, 0),
            Ok(ReservationResult::Granted)
        ));
        // Exhaustion: the arbiter flags the *largest* revocable handle and
        // blocks instead of promoting.
        assert!(matches!(
            pool.reserve(QueryId(2), 50, 0),
            Ok(ReservationResult::Blocked)
        ));
        assert!(big.is_requested());
        assert!(!small.is_requested());
        assert_eq!(lock.owner(), None, "no promotion while spill is pending");
        assert_eq!(pool.revocation_requests(), 1);
        // The owner spills: frees memory, publishes the new balance,
        // clears the flag.
        assert!(big.take_request());
        big.set_bytes(0);
        assert!(matches!(
            pool.reserve(QueryId(1), -60, 0),
            Ok(ReservationResult::Granted)
        ));
        // The retry now fits in the general pool — still no promotion.
        assert!(matches!(
            pool.reserve(QueryId(2), 50, 0),
            Ok(ReservationResult::Granted)
        ));
        assert_eq!(lock.owner(), None);
        // Next exhaustion: only the small handle is left; after it too is
        // consumed, arbitration escalates to promotion as before.
        small.set_bytes(0);
        assert!(matches!(
            pool.reserve(QueryId(2), 40, 0),
            Ok(ReservationResult::Granted)
        ));
        assert_eq!(lock.owner(), Some(QueryId(2)), "fell through to promotion");
        assert_eq!(pool.snapshot().revocation_requests, 1);
    }

    #[test]
    fn unregister_revocable_removes_handle() {
        let (pool, _) = setup(100, 1000, false);
        pool.register_query(limits(1));
        let h = RevocationHandle::new();
        h.set_bytes(50);
        pool.register_revocable(QueryId(1), Arc::clone(&h));
        pool.unregister_revocable(QueryId(1), &h);
        assert!(!pool.request_revocation(), "no revocable handles remain");
        assert_eq!(pool.revocation_requests(), 0);
    }

    #[test]
    fn kill_policy_instead_of_stall() {
        let (pool, lock) = setup(100, 50, true);
        pool.register_query(limits(1));
        pool.register_query(limits(2));
        assert!(matches!(
            pool.reserve(QueryId(1), 90, 0),
            Ok(ReservationResult::Granted)
        ));
        // Promotion fails to make room (reserved limit 50 < q1's 90 usage
        // stays; general freed though) — first promotion moves q1 out, so
        // q2 fits. Exhaust again with q2 then q3 must kill.
        assert!(matches!(
            pool.reserve(QueryId(2), 95, 0),
            Ok(ReservationResult::Granted)
        ));
        assert_eq!(lock.owner(), Some(QueryId(1)));
        pool.register_query(limits(3));
        let err = pool.reserve(QueryId(3), 50, 0).unwrap_err();
        assert_eq!(err.code, presto_common::ErrorCode::InsufficientResources);
    }

    #[test]
    fn system_memory_consumes_general_headroom() {
        let (pool, _) = setup(100, 1000, false);
        pool.register_query(limits(1));
        // Cache retention takes 60 of the 100-byte general pool.
        pool.reserve_system(60);
        assert_eq!(pool.system_bytes(), 60);
        assert!((pool.general_utilization() - 0.6).abs() < 1e-9);
        // A query can use the remaining 40 but not more: the next
        // reservation trips arbitration (promotion to reserved succeeds
        // here, so it is granted from the reserved pool).
        assert!(matches!(
            pool.reserve(QueryId(1), 40, 0),
            Ok(ReservationResult::Granted)
        ));
        assert!(matches!(
            pool.reserve(QueryId(1), 10, 0),
            Ok(ReservationResult::Granted)
        ));
        assert_eq!(pool.reserved.owner(), Some(QueryId(1)));
        // Releasing the cache bytes restores headroom.
        pool.reserve_system(-60);
        assert_eq!(pool.system_bytes(), 0);
    }

    #[test]
    fn frees_restore_capacity() {
        let (pool, _) = setup(100, 50, false);
        pool.register_query(limits(1));
        pool.reserve(QueryId(1), 80, 10).unwrap();
        pool.reserve(QueryId(1), -80, -10).unwrap();
        assert_eq!(pool.query_usage(QueryId(1)), (0, 0));
        assert!((pool.general_utilization()).abs() < 1e-9);
    }
}
