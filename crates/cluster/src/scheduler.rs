//! Stage, task, and split scheduling (§IV-D).

use presto_common::{PrestoError, Result};
use presto_connector::CatalogManager;
use presto_exec::scan::SplitQueue;
use presto_planner::{FragmentPartitioning, OutputPartitioning, PhysicalPlan, PlanFragment};
use std::sync::Arc;
use std::time::Duration;

use crate::config::ClusterConfig;
use crate::worker::QueryState;

/// Where one fragment's tasks run: `tasks[i]` is the worker index of task i.
#[derive(Debug, Clone)]
pub struct Placement {
    pub fragment: u32,
    pub tasks: Vec<usize>,
    /// Task index == bucket index (co-located scheduling, §IV-C3).
    pub bucketed: bool,
}

/// Decide task counts and worker assignments for every fragment (§IV-D2).
/// `available` lists the indices of workers placement may use — healthy
/// `Active` nodes only; draining or lost workers are excluded (§IV-G).
/// Must be non-empty.
pub fn place_fragments(
    plan: &PhysicalPlan,
    config: &ClusterConfig,
    available: &[usize],
) -> Vec<Placement> {
    // Which fragments consume a round-robin (scaled-writer) exchange?
    let round_robin_consumers: Vec<u32> = plan
        .fragments
        .iter()
        .filter(|f| f.output == OutputPartitioning::RoundRobin)
        .map(|f| consumer_of(plan, f.id))
        .collect();
    let workers = available.len();
    plan.fragments
        .iter()
        .map(|f| {
            let (count, bucketed) = match &f.partitioning {
                FragmentPartitioning::Source {
                    bucket_count: Some(n),
                } => (*n, true),
                // "If there are no constraints … a leaf stage task is
                // scheduled on every worker node in the cluster."
                FragmentPartitioning::Source { bucket_count: None } => (workers, false),
                FragmentPartitioning::Hash { count } => {
                    if round_robin_consumers.contains(&f.id) {
                        // Writer fragment: create the scaling headroom.
                        (config.max_writer_tasks, false)
                    } else {
                        (*count, false)
                    }
                }
                FragmentPartitioning::Single | FragmentPartitioning::ScaledWriter => {
                    if round_robin_consumers.contains(&f.id) {
                        (config.max_writer_tasks, false)
                    } else {
                        (1, false)
                    }
                }
            };
            // Round-robin placement, offset by fragment id so single-task
            // stages spread across the cluster.
            let tasks = (0..count.max(1))
                .map(|t| available[(t + f.id as usize) % workers])
                .collect();
            Placement {
                fragment: f.id,
                tasks,
                bucketed,
            }
        })
        .collect()
}

/// The fragment that reads fragment `id`'s output (the root has none and
/// returns itself).
pub fn consumer_of(plan: &PhysicalPlan, id: u32) -> u32 {
    plan.fragments
        .iter()
        .find(|f| f.source_fragments().contains(&id))
        .map(|f| f.id)
        .unwrap_or(id)
}

/// Fragments feeding the *build* side of joins in `fragment` — phased
/// scheduling (§IV-D1) starts these before the fragment itself so "the
/// tasks to schedule streaming of the left side will not be scheduled
/// until the hash table is built".
pub fn build_side_sources(fragment: &PlanFragment) -> Vec<u32> {
    use presto_planner::PlanNode;
    fn remote_sources(node: &PlanNode, out: &mut Vec<u32>) {
        if let PlanNode::RemoteSource { fragment, .. } = node {
            out.push(*fragment);
        }
        for c in node.children() {
            remote_sources(c, out);
        }
    }
    fn walk(node: &PlanNode, out: &mut Vec<u32>) {
        if let PlanNode::Join { right, .. } = node {
            remote_sources(right, out);
        }
        for c in node.children() {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(&fragment.root, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

/// One scan's split-feeding state across the tasks of a leaf stage.
pub struct SplitFeeder<'a> {
    pub catalogs: &'a CatalogManager,
    pub config: &'a ClusterConfig,
}

impl SplitFeeder<'_> {
    /// Enumerate splits lazily and assign them to task queues (§IV-D3):
    /// bucketed splits go to their bucket's task; others to the shortest
    /// queue among candidate tasks (respecting address constraints).
    /// Returns the number of splits assigned.
    ///
    /// When a dynamic filter targets this scan, every split still
    /// unassigned once the filter arrives is re-checked against the
    /// narrowed domain and dropped if it provably holds no matching rows —
    /// the coarsest of the three pruning levels. Enumeration never blocks
    /// on the filter: splits assigned before it arrives are pruned later
    /// at stripe and row granularity.
    #[allow(clippy::too_many_arguments)]
    pub fn feed(
        &self,
        catalog: &str,
        table: &str,
        layout: &str,
        predicate: &presto_connector::TupleDomain,
        queues: &[(usize /* worker */, Arc<SplitQueue>)],
        bucketed: bool,
        query: &QueryState,
        node_of_worker: &dyn Fn(usize) -> presto_common::NodeId,
        dynamic_filter: Option<&presto_exec::ScanDynamicFilter>,
    ) -> Result<u64> {
        let connector = self.catalogs.catalog(catalog)?;
        let mut source = connector.split_source(table, layout, predicate)?;
        let mut assigned = 0u64;
        loop {
            if query.is_cancelled() {
                break;
            }
            let batch = source.next_batch(self.config.split_batch_size)?;
            if batch.is_empty() {
                if source.is_finished() {
                    break;
                }
                std::thread::sleep(Duration::from_micros(100));
                continue;
            }
            for split in batch {
                if let (Some(df), Some(split_domain)) = (dynamic_filter, &split.domain) {
                    if df.ready() {
                        if let Some(table_domain) = df.table_domain() {
                            if presto_exec::dynfilter::split_pruned(&table_domain, split_domain) {
                                df.note_splits_pruned(1);
                                continue;
                            }
                        }
                    }
                }
                if bucketed {
                    let bucket = split.bucket.ok_or_else(|| {
                        PrestoError::internal("bucketed stage received a split without a bucket")
                    })?;
                    let (_, queue) = &queues[bucket % queues.len()];
                    queue.add(split);
                    assigned += 1;
                    continue;
                }
                // Candidate tasks: node-local first, then rack-local, then
                // anyone — the plugin-provided topology hierarchy of §IV-D2.
                let rack_of = |node: presto_common::NodeId| node.0 as usize % self.config.racks;
                let candidates: Vec<usize> = if split.addresses.is_empty() {
                    (0..queues.len()).collect()
                } else {
                    let node_local: Vec<usize> = (0..queues.len())
                        .filter(|&i| split.addresses.contains(&node_of_worker(queues[i].0)))
                        .collect();
                    if !node_local.is_empty() {
                        node_local
                    } else {
                        let preferred_racks: Vec<usize> =
                            split.addresses.iter().map(|&n| rack_of(n)).collect();
                        let rack_local: Vec<usize> = (0..queues.len())
                            .filter(|&i| {
                                preferred_racks.contains(&rack_of(node_of_worker(queues[i].0)))
                            })
                            .collect();
                        if !rack_local.is_empty() {
                            rack_local
                        } else {
                            (0..queues.len()).collect()
                        }
                    }
                };
                // Shortest queue wins; wait while all candidates are full
                // ("Keeping these queues small allows the system to adapt").
                loop {
                    if query.is_cancelled() {
                        return Ok(assigned);
                    }
                    let best = candidates
                        .iter()
                        .copied()
                        .min_by_key(|&i| queues[i].1.queued_len())
                        .expect("at least one candidate");
                    if queues[best].1.queued_len() < self.config.max_queued_splits_per_task {
                        queues[best].1.add(split);
                        assigned += 1;
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
        for (_, q) in queues {
            q.no_more_splits();
        }
        Ok(assigned)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Session, Value};
    use presto_connectors::MemoryConnector;
    use presto_sql::parse_statement;

    fn plan_for(sql: &str) -> (PhysicalPlan, CatalogManager) {
        let mem = MemoryConnector::new();
        let schema = Schema::of(&[("k", DataType::Bigint)]);
        let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Bigint(i)]).collect();
        mem.load_rows("t", schema, &rows);
        let mut catalogs = CatalogManager::new();
        catalogs.register("memory", mem as Arc<dyn presto_connector::Connector>);
        let plan = presto_planner::plan_statement(
            &parse_statement(sql).unwrap(),
            &Session::default(),
            &catalogs,
        )
        .unwrap();
        (plan, catalogs)
    }

    #[test]
    fn leaf_stages_span_all_workers() {
        let (plan, _) = plan_for("SELECT * FROM t");
        let config = ClusterConfig {
            workers: 4,
            ..ClusterConfig::test()
        };
        let placements = place_fragments(&plan, &config, &[0, 1, 2, 3]);
        let leaf = placements
            .iter()
            .find(|p| {
                matches!(
                    plan.fragment(p.fragment).partitioning,
                    FragmentPartitioning::Source { .. }
                )
            })
            .unwrap();
        assert_eq!(leaf.tasks.len(), 4);
    }

    #[test]
    fn hash_stages_get_fixed_task_count() {
        let (plan, _) = plan_for("SELECT k, count(*) FROM t GROUP BY k");
        let config = ClusterConfig {
            workers: 2,
            ..ClusterConfig::test()
        };
        let placements = place_fragments(&plan, &config, &[0, 1]);
        let hash = placements
            .iter()
            .find(|p| {
                matches!(
                    plan.fragment(p.fragment).partitioning,
                    FragmentPartitioning::Hash { .. }
                )
            })
            .expect("hash stage");
        assert_eq!(hash.tasks.len(), Session::default().hash_partition_count);
    }

    #[test]
    fn placement_uses_only_available_workers() {
        // Draining/lost workers are excluded from the available set; no
        // task may land on them (§IV-G).
        let (plan, _) = plan_for("SELECT k, count(*) FROM t GROUP BY k");
        let config = ClusterConfig {
            workers: 4,
            ..ClusterConfig::test()
        };
        let placements = place_fragments(&plan, &config, &[1, 3]);
        for p in &placements {
            assert!(!p.tasks.is_empty());
            for &w in &p.tasks {
                assert!(w == 1 || w == 3, "task placed on unavailable worker {w}");
            }
        }
    }

    #[test]
    fn rack_local_placement_preferred_over_remote() {
        use presto_connector::{FixedSplitSource, Split, SplitSource as _};
        // A split pinned to node 2 (rack 0 with 2 racks) has no task on
        // node 2; tasks exist on nodes 0 (rack 0) and 1 (rack 1). The
        // feeder must choose the rack-local node 0.
        let split = Split {
            catalog: "memory".into(),
            table: "t".into(),
            payload: std::sync::Arc::new(()),
            addresses: vec![presto_common::NodeId(2)],
            estimated_rows: 1,
            bucket: None,
            domain: None,
            info: "pinned".into(),
        };
        let mut source = FixedSplitSource::new(vec![split]);
        let batch = source.next_batch(10).unwrap();
        let config = ClusterConfig {
            racks: 2,
            ..ClusterConfig::test()
        };
        let rack_of = |n: presto_common::NodeId| n.0 as usize % config.racks;
        assert_eq!(
            rack_of(presto_common::NodeId(2)),
            rack_of(presto_common::NodeId(0))
        );
        assert_ne!(
            rack_of(presto_common::NodeId(2)),
            rack_of(presto_common::NodeId(1))
        );
        let _ = batch;
    }

    #[test]
    fn split_feeder_prefers_shortest_queue() {
        let mem = MemoryConnector::new();
        let schema = Schema::of(&[("k", DataType::Bigint)]);
        let pages: Vec<presto_page::Page> = (0..40)
            .map(|i| presto_page::Page::from_rows(&schema, &[vec![Value::Bigint(i)]]))
            .collect();
        mem.load_table("t", schema, pages);
        let mut catalogs = CatalogManager::new();
        catalogs.register("memory", mem as Arc<dyn presto_connector::Connector>);
        let config = ClusterConfig::test();
        let feeder = SplitFeeder {
            catalogs: &catalogs,
            config: &config,
        };
        let q1 = SplitQueue::new();
        let q2 = SplitQueue::new();
        let state = QueryState::new(presto_common::QueryId(0));
        let assigned = feeder
            .feed(
                "memory",
                "t",
                "default",
                &presto_connector::TupleDomain::all(),
                &[(0, Arc::clone(&q1)), (1, Arc::clone(&q2))],
                false,
                &state,
                &|w| presto_common::NodeId(w as u32),
                None,
            )
            .unwrap();
        assert!(assigned >= 10);
        // Balanced assignment: neither queue hoards everything.
        let (a, b) = (q1.queued_len(), q2.queued_len());
        assert!(a > 0 && b > 0, "a={a} b={b}");
        assert!(q1.is_exhausted() || q1.queued_len() > 0);
    }
}
