//! Cluster telemetry (§VII "Effortless instrumentation").
//!
//! "The median Presto worker node exports ~10,000 real-time performance
//! counters" — here a compact set of the counters the benchmarks need:
//! per-worker busy time (CPU utilization), running/queued query gauges,
//! per-query lifecycle timestamps, and error counters by code.

use parking_lot::Mutex;
use presto_cache::{CacheCounters, CacheStats};
use presto_common::{LatencyHistogram, LatencySummary, QueryId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared counters, cheap to clone.
#[derive(Clone)]
pub struct ClusterTelemetry {
    inner: Arc<Inner>,
}

struct Inner {
    started_at: Instant,
    /// Busy nanoseconds per worker.
    worker_busy_nanos: Vec<AtomicU64>,
    /// Every query ever submitted (queued + running + finished + failed).
    submitted_queries: AtomicU64,
    /// Currently running queries.
    running_queries: AtomicU64,
    /// Currently queued queries.
    queued_queries: AtomicU64,
    /// Completed queries.
    finished_queries: AtomicU64,
    failed_queries: AtomicU64,
    /// Per-query records.
    queries: Mutex<HashMap<QueryId, QueryRecord>>,
    /// Errors by code tag.
    errors: Mutex<HashMap<&'static str, u64>>,
    /// Cache-layer counters registered at cluster start: each entry is a
    /// named layer ("porc_footer", "metastore_stats", …) exporting its
    /// live [`CacheStats`] handle.
    caches: Mutex<Vec<(&'static str, Arc<CacheStats>)>>,
    /// Dynamic-filtering totals, rolled in per query after it finishes.
    df_filters_published: AtomicU64,
    df_splits_pruned: AtomicU64,
    df_stripes_pruned: AtomicU64,
    df_rows_filtered: AtomicU64,
    df_wait_nanos: AtomicU64,
    /// Pipeline-fusion totals, rolled in per query after it finishes.
    fused_pipelines: AtomicU64,
    fused_scan_rows: AtomicU64,
    fused_filter_rows: AtomicU64,
    fused_project_rows: AtomicU64,
    fused_agg_rows: AtomicU64,
    fused_rows_produced: AtomicU64,
    /// Spill totals (§IV-F2), rolled in per query after it finishes.
    spill_queries: AtomicU64,
    spill_bytes: AtomicU64,
    spill_events: AtomicU64,
    /// Effective spill config of the most recent spill-enabled query:
    /// (directory, disk budget). `None` until one runs.
    spill_config: Mutex<Option<(String, u64)>>,
    /// Per-phase wall-time histograms across all finished queries (§VI
    /// latency tables): queue wait, planning, and execution.
    queued_hist: LatencyHistogram,
    planning_hist: LatencyHistogram,
    execution_hist: LatencyHistogram,
}

/// Percentile summaries of the per-phase latency histograms, exported in
/// [`crate::metrics::ClusterSnapshot`] and `system.runtime` views.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryLatencyMetrics {
    pub queued: LatencySummary,
    pub planning: LatencySummary,
    pub execution: LatencySummary,
}

/// Cluster-lifetime dynamic-filtering counters (§VII): how much work the
/// build-side domains pushed into probe scans saved, across all queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynamicFilterMetrics {
    /// Filters completed and published by join builds.
    pub filters_published: u64,
    /// Splits discarded before a scan driver opened them.
    pub splits_pruned: u64,
    /// Stripes skipped by readers under a narrowed domain.
    pub stripes_pruned: u64,
    /// Rows dropped by the row-level membership check.
    pub rows_filtered: u64,
    /// Total time scans spent gated on filter arrival.
    pub wait_nanos: u64,
}

/// Cluster-lifetime pipeline-fusion counters: how much data flowed
/// through fused scan→filter→project[→partial-agg] loops, across all
/// queries. Row counts are per fused stage, so the scan→filter→project
/// cascade shows the selectivity the fused loop exploited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionMetrics {
    /// Fused pipeline instances (one per task-pipeline that ran fused).
    pub pipelines: u64,
    /// Rows read from splits by fused scan stages.
    pub scan_rows: u64,
    /// Rows surviving fused filter stages.
    pub filter_rows: u64,
    /// Rows emitted by fused projection stages.
    pub project_rows: u64,
    /// Rows fed into fused partial-aggregation stages.
    pub agg_rows: u64,
    /// Rows produced downstream by fused pipelines.
    pub rows_produced: u64,
}

/// Cluster-lifetime spill counters (§IV-F2): how much revocable state
/// (grace-join builds, aggregation hash tables, sort runs) was written
/// to disk under memory pressure, across all queries, plus the effective
/// spill configuration — the `spill_dir`/`spill_max_bytes` session knobs
/// of the most recent spill-enabled query (empty/zero until one runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillMetrics {
    /// Queries that spilled at least once.
    pub queries_spilled: u64,
    /// Bytes written to spill run files.
    pub spilled_bytes: u64,
    /// Individual spill episodes (revocations and overflow flushes).
    pub spill_events: u64,
    /// Directory run files were written to ("" until a spill-enabled
    /// query ran; the OS temp dir when the session left it unset).
    pub spill_dir: String,
    /// Per-task disk budget in bytes (0 = unlimited).
    pub spill_max_bytes: u64,
}

/// Lifecycle record for one query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    pub queued_at: Instant,
    pub started_at: Option<Instant>,
    pub finished_at: Option<Instant>,
    pub cpu: Duration,
    /// Wall time spent planning, summed across retry attempts (each
    /// attempt replans), recorded explicitly by the coordinator rather
    /// than derived from timestamps.
    pub planning: Duration,
    /// Wall time spent executing tasks, summed across retry attempts.
    pub executing: Duration,
    /// Attempts made: 1 for a query that never retried, 1 + retries
    /// otherwise. Zero until the coordinator records phases.
    pub attempts: u32,
    pub failed: bool,
    /// Error-code tag of the failure, when the query failed.
    pub error_tag: Option<&'static str>,
    /// Human-readable failure cause (the error's message), when the query
    /// failed. This is the post-mortem record for clean teardown (§IV-G):
    /// a cancelled or worker-failed query keeps *why* it died.
    pub error_message: Option<String>,
}

impl QueryRecord {
    pub fn queue_time(&self) -> Option<Duration> {
        // A query that failed before starting spent its whole life queued;
        // its breakdown is still reportable.
        match (self.started_at, self.finished_at) {
            (Some(s), _) => Some(s - self.queued_at),
            (None, Some(f)) => Some(f - self.queued_at),
            (None, None) => None,
        }
    }

    pub fn execution_time(&self) -> Option<Duration> {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => Some(f - s),
            _ => None,
        }
    }
}

impl ClusterTelemetry {
    pub fn new(workers: usize) -> ClusterTelemetry {
        ClusterTelemetry {
            inner: Arc::new(Inner {
                started_at: Instant::now(),
                worker_busy_nanos: (0..workers).map(|_| AtomicU64::new(0)).collect(),
                submitted_queries: AtomicU64::new(0),
                running_queries: AtomicU64::new(0),
                queued_queries: AtomicU64::new(0),
                finished_queries: AtomicU64::new(0),
                failed_queries: AtomicU64::new(0),
                queries: Mutex::new(HashMap::new()),
                errors: Mutex::new(HashMap::new()),
                caches: Mutex::new(Vec::new()),
                df_filters_published: AtomicU64::new(0),
                df_splits_pruned: AtomicU64::new(0),
                df_stripes_pruned: AtomicU64::new(0),
                df_rows_filtered: AtomicU64::new(0),
                df_wait_nanos: AtomicU64::new(0),
                fused_pipelines: AtomicU64::new(0),
                fused_scan_rows: AtomicU64::new(0),
                fused_filter_rows: AtomicU64::new(0),
                fused_project_rows: AtomicU64::new(0),
                fused_agg_rows: AtomicU64::new(0),
                fused_rows_produced: AtomicU64::new(0),
                spill_queries: AtomicU64::new(0),
                spill_bytes: AtomicU64::new(0),
                spill_events: AtomicU64::new(0),
                spill_config: Mutex::new(None),
                queued_hist: LatencyHistogram::new(),
                planning_hist: LatencyHistogram::new(),
                execution_hist: LatencyHistogram::new(),
            }),
        }
    }

    pub fn record_worker_busy(&self, worker: usize, elapsed: Duration) {
        self.inner.worker_busy_nanos[worker]
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total busy time per worker since startup.
    pub fn worker_busy(&self) -> Vec<Duration> {
        self.inner
            .worker_busy_nanos
            .iter()
            .map(|n| Duration::from_nanos(n.load(Ordering::Relaxed)))
            .collect()
    }

    pub fn uptime(&self) -> Duration {
        self.inner.started_at.elapsed()
    }

    /// Nanoseconds since cluster start — the shared time domain lifecycle
    /// events and history entries are stamped in.
    pub fn now_nanos(&self) -> u64 {
        self.inner.started_at.elapsed().as_nanos() as u64
    }

    /// Record a finished query's explicit per-phase wall times (queue wait,
    /// planning, execution — the latter two summed across retry attempts)
    /// onto its record and into the cluster latency histograms. Replaces
    /// the old practice of deriving phases ad hoc from timestamps, which
    /// folded every retry attempt into one opaque duration.
    pub fn record_query_phases(
        &self,
        query: QueryId,
        queued: Duration,
        planning: Duration,
        executing: Duration,
        attempts: u32,
    ) {
        if let Some(r) = self.inner.queries.lock().get_mut(&query) {
            r.planning = planning;
            r.executing = executing;
            r.attempts = attempts;
        }
        self.inner.queued_hist.record(queued.as_nanos() as u64);
        self.inner.planning_hist.record(planning.as_nanos() as u64);
        self.inner
            .execution_hist
            .record(executing.as_nanos() as u64);
    }

    /// Percentile summaries of the per-phase latency histograms.
    pub fn latency_metrics(&self) -> QueryLatencyMetrics {
        QueryLatencyMetrics {
            queued: self.inner.queued_hist.summary(),
            planning: self.inner.planning_hist.summary(),
            execution: self.inner.execution_hist.summary(),
        }
    }

    pub fn query_queued(&self, query: QueryId) {
        self.inner.submitted_queries.fetch_add(1, Ordering::SeqCst);
        self.inner.queued_queries.fetch_add(1, Ordering::SeqCst);
        self.inner.queries.lock().insert(
            query,
            QueryRecord {
                queued_at: Instant::now(),
                started_at: None,
                finished_at: None,
                cpu: Duration::ZERO,
                planning: Duration::ZERO,
                executing: Duration::ZERO,
                attempts: 0,
                failed: false,
                error_tag: None,
                error_message: None,
            },
        );
    }

    pub fn query_started(&self, query: QueryId) {
        self.inner.queued_queries.fetch_sub(1, Ordering::SeqCst);
        self.inner.running_queries.fetch_add(1, Ordering::SeqCst);
        if let Some(r) = self.inner.queries.lock().get_mut(&query) {
            r.started_at = Some(Instant::now());
        }
    }

    pub fn query_finished(&self, query: QueryId, cpu: Duration, failed: bool) {
        // A query that fails while still queued (parse error, admission
        // rejection) never incremented the running gauge; decrementing it
        // anyway would wrap the counter. Settle the gauge the query is
        // actually in. The map lock is held across the gauge update so a
        // concurrent snapshot can't observe the query in both states.
        let mut queries = self.inner.queries.lock();
        let started = queries.get(&query).is_none_or(|r| r.started_at.is_some());
        if started {
            self.inner.running_queries.fetch_sub(1, Ordering::SeqCst);
        } else {
            self.inner.queued_queries.fetch_sub(1, Ordering::SeqCst);
        }
        if failed {
            self.inner.failed_queries.fetch_add(1, Ordering::SeqCst);
        } else {
            self.inner.finished_queries.fetch_add(1, Ordering::SeqCst);
        }
        if let Some(r) = queries.get_mut(&query) {
            r.finished_at = Some(Instant::now());
            r.cpu = cpu;
            r.failed = failed;
        }
    }

    pub fn record_error(&self, tag: &'static str) {
        *self.inner.errors.lock().entry(tag).or_insert(0) += 1;
    }

    /// Record a query's failure cause: bumps the cluster-wide counter for
    /// `tag` and stamps the tag onto the query's record.
    pub fn record_query_error(&self, query: QueryId, tag: &'static str) {
        self.record_error(tag);
        if let Some(r) = self.inner.queries.lock().get_mut(&query) {
            r.error_tag = Some(tag);
        }
    }

    /// Like [`record_query_error`](Self::record_query_error), but also
    /// keeps the human-readable failure cause on the query record.
    pub fn record_query_failure(&self, query: QueryId, tag: &'static str, message: String) {
        self.record_error(tag);
        if let Some(r) = self.inner.queries.lock().get_mut(&query) {
            r.error_tag = Some(tag);
            r.error_message = Some(message);
        }
    }

    pub fn submitted_queries(&self) -> u64 {
        self.inner.submitted_queries.load(Ordering::SeqCst)
    }

    pub fn running_queries(&self) -> u64 {
        self.inner.running_queries.load(Ordering::SeqCst)
    }

    pub fn queued_queries(&self) -> u64 {
        self.inner.queued_queries.load(Ordering::SeqCst)
    }

    pub fn finished_queries(&self) -> u64 {
        self.inner.finished_queries.load(Ordering::SeqCst)
    }

    pub fn failed_queries(&self) -> u64 {
        self.inner.failed_queries.load(Ordering::SeqCst)
    }

    pub fn query_record(&self, query: QueryId) -> Option<QueryRecord> {
        self.inner.queries.lock().get(&query).cloned()
    }

    pub fn all_query_records(&self) -> Vec<(QueryId, QueryRecord)> {
        let mut v: Vec<_> = self
            .inner
            .queries
            .lock()
            .iter()
            .map(|(q, r)| (*q, r.clone()))
            .collect();
        v.sort_by_key(|(q, _)| *q);
        v
    }

    pub fn errors(&self) -> HashMap<&'static str, u64> {
        self.inner.errors.lock().clone()
    }

    /// Accumulate one query's dynamic-filtering totals into the
    /// cluster-lifetime counters.
    pub fn record_dynamic_filters(&self, totals: DynamicFilterMetrics) {
        let i = &self.inner;
        i.df_filters_published
            .fetch_add(totals.filters_published, Ordering::Relaxed);
        i.df_splits_pruned
            .fetch_add(totals.splits_pruned, Ordering::Relaxed);
        i.df_stripes_pruned
            .fetch_add(totals.stripes_pruned, Ordering::Relaxed);
        i.df_rows_filtered
            .fetch_add(totals.rows_filtered, Ordering::Relaxed);
        i.df_wait_nanos
            .fetch_add(totals.wait_nanos, Ordering::Relaxed);
    }

    pub fn dynamic_filter_metrics(&self) -> DynamicFilterMetrics {
        let i = &self.inner;
        DynamicFilterMetrics {
            filters_published: i.df_filters_published.load(Ordering::Relaxed),
            splits_pruned: i.df_splits_pruned.load(Ordering::Relaxed),
            stripes_pruned: i.df_stripes_pruned.load(Ordering::Relaxed),
            rows_filtered: i.df_rows_filtered.load(Ordering::Relaxed),
            wait_nanos: i.df_wait_nanos.load(Ordering::Relaxed),
        }
    }

    /// Accumulate one query's pipeline-fusion totals into the
    /// cluster-lifetime counters.
    pub fn record_fusion(&self, totals: FusionMetrics) {
        let i = &self.inner;
        i.fused_pipelines
            .fetch_add(totals.pipelines, Ordering::Relaxed);
        i.fused_scan_rows
            .fetch_add(totals.scan_rows, Ordering::Relaxed);
        i.fused_filter_rows
            .fetch_add(totals.filter_rows, Ordering::Relaxed);
        i.fused_project_rows
            .fetch_add(totals.project_rows, Ordering::Relaxed);
        i.fused_agg_rows
            .fetch_add(totals.agg_rows, Ordering::Relaxed);
        i.fused_rows_produced
            .fetch_add(totals.rows_produced, Ordering::Relaxed);
    }

    pub fn fusion_metrics(&self) -> FusionMetrics {
        let i = &self.inner;
        FusionMetrics {
            pipelines: i.fused_pipelines.load(Ordering::Relaxed),
            scan_rows: i.fused_scan_rows.load(Ordering::Relaxed),
            filter_rows: i.fused_filter_rows.load(Ordering::Relaxed),
            project_rows: i.fused_project_rows.load(Ordering::Relaxed),
            agg_rows: i.fused_agg_rows.load(Ordering::Relaxed),
            rows_produced: i.fused_rows_produced.load(Ordering::Relaxed),
        }
    }

    /// Note the effective spill configuration of a spill-enabled query
    /// (called at admission, so the snapshot reflects it while the query
    /// is still running).
    pub fn record_spill_config(&self, dir: String, max_bytes: u64) {
        *self.inner.spill_config.lock() = Some((dir, max_bytes));
    }

    /// Accumulate one query's spill totals into the cluster-lifetime
    /// counters.
    pub fn record_spill(&self, spilled_bytes: u64, spill_events: u64) {
        let i = &self.inner;
        i.spill_queries.fetch_add(1, Ordering::Relaxed);
        i.spill_bytes.fetch_add(spilled_bytes, Ordering::Relaxed);
        i.spill_events.fetch_add(spill_events, Ordering::Relaxed);
    }

    pub fn spill_metrics(&self) -> SpillMetrics {
        let i = &self.inner;
        let (spill_dir, spill_max_bytes) = i.spill_config.lock().clone().unwrap_or_default();
        SpillMetrics {
            queries_spilled: i.spill_queries.load(Ordering::Relaxed),
            spilled_bytes: i.spill_bytes.load(Ordering::Relaxed),
            spill_events: i.spill_events.load(Ordering::Relaxed),
            spill_dir,
            spill_max_bytes,
        }
    }

    /// Export a cache layer's live counters under `name`.
    pub fn register_cache(&self, name: &'static str, stats: Arc<CacheStats>) {
        self.inner.caches.lock().push((name, stats));
    }

    /// Merged counters across every registered cache layer.
    pub fn cache_counters(&self) -> CacheCounters {
        let caches = self.inner.caches.lock();
        let mut total = CacheCounters::default();
        for (_, stats) in caches.iter() {
            total = total.merge(&stats.counters());
        }
        total
    }

    /// Counter snapshot per registered cache layer.
    pub fn cache_counters_by_layer(&self) -> Vec<(&'static str, CacheCounters)> {
        self.inner
            .caches
            .lock()
            .iter()
            .map(|(name, stats)| (*name, stats.counters()))
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn query_lifecycle() {
        let t = ClusterTelemetry::new(2);
        let q = QueryId(1);
        t.query_queued(q);
        assert_eq!(t.queued_queries(), 1);
        t.query_started(q);
        assert_eq!((t.queued_queries(), t.running_queries()), (0, 1));
        t.query_finished(q, Duration::from_millis(5), false);
        assert_eq!((t.running_queries(), t.finished_queries()), (0, 1));
        let r = t.query_record(q).unwrap();
        assert!(r.execution_time().is_some());
        assert!(!r.failed);
    }

    #[test]
    fn busy_time_accumulates_per_worker() {
        let t = ClusterTelemetry::new(2);
        t.record_worker_busy(0, Duration::from_millis(10));
        t.record_worker_busy(0, Duration::from_millis(5));
        t.record_worker_busy(1, Duration::from_millis(1));
        let busy = t.worker_busy();
        assert_eq!(busy[0], Duration::from_millis(15));
        assert_eq!(busy[1], Duration::from_millis(1));
    }

    #[test]
    fn fusion_totals_accumulate() {
        let t = ClusterTelemetry::new(1);
        let per_query = FusionMetrics {
            pipelines: 2,
            scan_rows: 1000,
            filter_rows: 100,
            project_rows: 100,
            agg_rows: 100,
            rows_produced: 7,
        };
        t.record_fusion(per_query);
        t.record_fusion(per_query);
        let got = t.fusion_metrics();
        assert_eq!(got.pipelines, 4);
        assert_eq!(got.scan_rows, 2000);
        assert_eq!(got.rows_produced, 14);
    }

    #[test]
    fn spill_totals_accumulate_and_config_echoes() {
        let t = ClusterTelemetry::new(1);
        assert_eq!(t.spill_metrics(), SpillMetrics::default());
        t.record_spill_config("/tmp/presto-spill".to_string(), 1 << 30);
        t.record_spill(4096, 2);
        t.record_spill(1024, 1);
        let got = t.spill_metrics();
        assert_eq!(got.queries_spilled, 2);
        assert_eq!(got.spilled_bytes, 5120);
        assert_eq!(got.spill_events, 3);
        assert_eq!(got.spill_dir, "/tmp/presto-spill");
        assert_eq!(got.spill_max_bytes, 1 << 30);
    }

    #[test]
    fn phases_recorded_per_query_and_into_histograms() {
        let t = ClusterTelemetry::new(1);
        for i in 1..=10u64 {
            let q = QueryId(i);
            t.query_queued(q);
            t.query_started(q);
            t.query_finished(q, Duration::from_millis(1), false);
            t.record_query_phases(
                q,
                Duration::from_micros(i * 10),
                Duration::from_micros(i * 100),
                Duration::from_millis(i),
                if i == 3 { 2 } else { 1 },
            );
        }
        let r = t.query_record(QueryId(3)).unwrap();
        assert_eq!(r.planning, Duration::from_micros(300));
        assert_eq!(r.executing, Duration::from_millis(3));
        assert_eq!(r.attempts, 2, "retried query counts both attempts");
        let lat = t.latency_metrics();
        assert_eq!(lat.queued.count, 10);
        assert_eq!(lat.execution.max_nanos, 10_000_000);
        assert!(lat.execution.p50_nanos >= 4_000_000);
        assert!(lat.planning.p99_nanos <= lat.planning.max_nanos);
    }

    #[test]
    fn errors_tallied_by_tag() {
        let t = ClusterTelemetry::new(1);
        t.record_error("EXTERNAL_TRANSIENT");
        t.record_error("EXTERNAL_TRANSIENT");
        assert_eq!(t.errors()["EXTERNAL_TRANSIENT"], 2);
    }

    /// Regression: a query that fails while still queued (parse error,
    /// admission rejection) must settle the *queued* gauge. Decrementing
    /// the running gauge — which it never incremented — wrapped it to
    /// u64::MAX.
    #[test]
    fn failure_while_queued_settles_queued_gauge() {
        let t = ClusterTelemetry::new(1);
        let q = QueryId(7);
        t.query_queued(q);
        t.query_finished(q, Duration::ZERO, true);
        assert_eq!(t.queued_queries(), 0);
        assert_eq!(t.running_queries(), 0, "running gauge must not underflow");
        assert_eq!(t.failed_queries(), 1);
        let r = t.query_record(q).unwrap();
        assert!(r.failed);
        // The time spent queued is still reportable; it never executed.
        assert!(r.queue_time().is_some());
        assert!(r.execution_time().is_none());
    }

    #[test]
    fn query_error_tag_stamped_on_record() {
        let t = ClusterTelemetry::new(1);
        let q = QueryId(3);
        t.query_queued(q);
        t.query_finished(q, Duration::ZERO, true);
        t.record_query_error(q, "SYNTAX_ERROR");
        assert_eq!(t.query_record(q).unwrap().error_tag, Some("SYNTAX_ERROR"));
        assert_eq!(t.errors()["SYNTAX_ERROR"], 1);
    }

    /// The gauge invariant under concurrent lifecycle churn:
    /// queued + running + finished + failed == submitted, both while
    /// threads are racing and after they join.
    #[test]
    fn concurrent_lifecycle_preserves_gauge_invariant() {
        let t = ClusterTelemetry::new(1);
        let threads = 8u64;
        let per_thread = 200u64;
        std::thread::scope(|s| {
            for thread in 0..threads {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let q = QueryId(thread * per_thread + i);
                        t.query_queued(q);
                        match i % 3 {
                            // Finishes normally.
                            0 => {
                                t.query_started(q);
                                t.query_finished(q, Duration::from_micros(i), false);
                            }
                            // Fails mid-run.
                            1 => {
                                t.query_started(q);
                                t.query_finished(q, Duration::from_micros(i), true);
                                t.record_query_error(q, "EXCEEDED_MEMORY_LIMIT");
                            }
                            // Fails while still queued.
                            _ => {
                                t.query_finished(q, Duration::ZERO, true);
                                t.record_query_error(q, "SYNTAX_ERROR");
                            }
                        }
                    }
                });
            }
            // Sample the invariant while the writers are racing. Gauges are
            // separate atomics, so read a consistent-enough view by checking
            // the sum never exceeds submissions and never underflows into
            // u64::MAX territory.
            for _ in 0..50 {
                let (queued, running) = (t.queued_queries(), t.running_queries());
                assert!(queued < u64::MAX / 2, "queued gauge underflowed");
                assert!(running < u64::MAX / 2, "running gauge underflowed");
                std::thread::yield_now();
            }
        });
        let total = threads * per_thread;
        assert_eq!(t.submitted_queries(), total);
        assert_eq!(t.queued_queries(), 0);
        assert_eq!(t.running_queries(), 0);
        assert_eq!(
            t.queued_queries()
                + t.running_queries()
                + t.finished_queries()
                + t.failed_queries(),
            total
        );
        // 1-in-3 finish clean, 2-in-3 fail (mid-run or queued).
        let clean = threads * per_thread.div_ceil(3);
        assert_eq!(t.finished_queries(), clean);
        assert_eq!(t.failed_queries(), total - clean);
    }
}
