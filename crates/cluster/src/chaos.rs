//! Deterministic fault injection for the cluster (§IV-G).
//!
//! The paper's fault-tolerance machinery — heartbeat liveness detection,
//! prompt clean query failure, graceful drain — is only trustworthy if it
//! is exercised under faults. [`ChaosSchedule`] generates a seeded,
//! reproducible timeline of worker-level faults (crashes, scheduler hangs,
//! resumes) that tests and `chaos_bench` replay against a live
//! [`Cluster`](crate::Cluster). The same seed always produces the same
//! schedule; `PRESTO_CHAOS_SEED` overrides the seed from the environment
//! (see [`presto_common::chaos::seed_from_env`]).
//!
//! Split- and page-level faults (transient/permanent split failures,
//! per-split delays) are injected by the chaos connector
//! (`presto_connectors::ChaosConnector`), and shuffle-frame decode faults
//! by the exchange client's chaos hook — both driven from the same seed
//! family so one number reproduces an entire run.

use presto_common::chaos::ChaosRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cluster::Cluster;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Crash the worker: tasks fail with `WorkerFailed`, the node stops.
    Kill(usize),
    /// Hang the worker's scheduler: it stops taking quanta and stops
    /// heartbeating; the liveness detector should declare it lost.
    Hang(usize),
    /// Un-hang a previously hung worker (a "GC-pause" style blip).
    Resume(usize),
}

/// A deterministic, seeded timeline of [`ChaosEvent`]s.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    pub seed: u64,
    /// Events sorted by offset from schedule start.
    pub events: Vec<(Duration, ChaosEvent)>,
}

/// Knobs for [`ChaosSchedule::generate`].
#[derive(Debug, Clone, Copy)]
pub struct ChaosProfile {
    /// Total span over which events are scattered.
    pub span: Duration,
    /// Number of hang/resume blips (each shorter than `blip_max`).
    pub blips: usize,
    /// Upper bound on a blip's hang duration. Keep this *below* the
    /// cluster's `liveness_timeout` so blips recover without detection.
    pub blip_max: Duration,
    /// Inject one hang that is never resumed (the detector must catch it).
    pub permanent_hang: bool,
    /// Inject one crash.
    pub crash: bool,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            span: Duration::from_millis(500),
            blips: 2,
            blip_max: Duration::from_millis(50),
            permanent_hang: true,
            crash: true,
        }
    }
}

impl ChaosSchedule {
    /// Generate a schedule for a cluster of `workers` nodes. Victims are
    /// drawn only from the upper half of worker indices so at least half
    /// the cluster survives every run — queries retried after a fault have
    /// somewhere to land. Same `(seed, workers, profile)` → same schedule.
    pub fn generate(seed: u64, workers: usize, profile: &ChaosProfile) -> ChaosSchedule {
        let mut rng = ChaosRng::new(seed);
        let mut events: Vec<(Duration, ChaosEvent)> = Vec::new();
        let span_ns = profile.span.as_nanos() as u64;
        let survivors = workers.div_ceil(2);
        let victims: Vec<usize> = (survivors..workers).collect();
        if victims.is_empty() {
            return ChaosSchedule { seed, events };
        }
        let pick = |rng: &mut ChaosRng| victims[rng.next_below(victims.len() as u64) as usize];
        let at = |rng: &mut ChaosRng| Duration::from_nanos(rng.next_below(span_ns.max(1)));
        for _ in 0..profile.blips {
            let w = pick(&mut rng);
            let start = at(&mut rng);
            let hang = Duration::from_nanos(
                rng.next_below(profile.blip_max.as_nanos().max(1) as u64),
            );
            events.push((start, ChaosEvent::Hang(w)));
            events.push((start + hang, ChaosEvent::Resume(w)));
        }
        if profile.permanent_hang {
            let w = pick(&mut rng);
            events.push((at(&mut rng), ChaosEvent::Hang(w)));
        }
        if profile.crash {
            let w = pick(&mut rng);
            events.push((at(&mut rng), ChaosEvent::Kill(w)));
        }
        events.sort_by_key(|(t, _)| *t);
        ChaosSchedule { seed, events }
    }

    /// Replay the schedule against a live cluster, in real time. Returns
    /// when the last event has fired or `stop` is raised. A worker that a
    /// `Kill` already took down absorbs later `Hang`/`Resume` events
    /// harmlessly (pausing a dead worker is a no-op).
    pub fn run(&self, cluster: &Cluster, stop: &Arc<AtomicBool>) {
        let started = Instant::now();
        for (offset, event) in &self.events {
            loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let elapsed = started.elapsed();
                if elapsed >= *offset {
                    break;
                }
                std::thread::sleep((*offset - elapsed).min(Duration::from_millis(2)));
            }
            match *event {
                ChaosEvent::Kill(w) => cluster.kill_worker(w),
                ChaosEvent::Hang(w) => cluster.hang_worker(w),
                ChaosEvent::Resume(w) => cluster.resume_worker(w),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let profile = ChaosProfile::default();
        let a = ChaosSchedule::generate(7, 8, &profile);
        let b = ChaosSchedule::generate(7, 8, &profile);
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let profile = ChaosProfile::default();
        let a = ChaosSchedule::generate(1, 8, &profile);
        let b = ChaosSchedule::generate(2, 8, &profile);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn victims_come_from_upper_half_only() {
        let profile = ChaosProfile::default();
        for seed in 0..20 {
            let s = ChaosSchedule::generate(seed, 8, &profile);
            for (_, e) in &s.events {
                let w = match *e {
                    ChaosEvent::Kill(w) | ChaosEvent::Hang(w) | ChaosEvent::Resume(w) => w,
                };
                assert!(w >= 4, "worker {w} in the surviving half was targeted");
            }
        }
    }

    #[test]
    fn events_are_time_ordered_within_span() {
        let profile = ChaosProfile {
            span: Duration::from_millis(100),
            blips: 3,
            blip_max: Duration::from_millis(10),
            permanent_hang: true,
            crash: true,
        };
        let s = ChaosSchedule::generate(42, 4, &profile);
        let mut prev = Duration::ZERO;
        for (t, _) in &s.events {
            assert!(*t >= prev);
            prev = *t;
            // Blip resumes may land up to blip_max past the span.
            assert!(*t <= profile.span + profile.blip_max);
        }
    }

    #[test]
    fn single_worker_cluster_generates_no_events() {
        // With one worker the surviving half is everything; chaos must not
        // take the only node down.
        let s = ChaosSchedule::generate(3, 1, &ChaosProfile::default());
        assert!(s.events.is_empty());
    }
}
