//! The simulated distributed cluster: coordinator + workers (§III).
//!
//! "A Presto cluster consists of a single coordinator node and one or more
//! worker nodes. The coordinator is responsible for admitting, parsing,
//! planning and optimizing queries as well as query orchestration. Worker
//! nodes are responsible for query processing."
//!
//! Per DESIGN.md, workers here are thread groups inside one process rather
//! than separate machines — every scheduling, memory-arbitration, and
//! backpressure code path is the real one; only the transport is shared
//! memory. The pieces:
//!
//! * [`config::ClusterConfig`] — cluster shape and limits;
//! * [`mlfq::MultilevelQueue`] — the five-level feedback queue of §IV-F1;
//! * [`worker::Worker`] — cooperative multitasking executor threads;
//! * [`memory::NodeMemoryPool`] — user/system accounting with
//!   general/reserved pools and the single-query reserved-pool promotion
//!   of §IV-F2;
//! * [`scheduler`] — stage/task/split scheduling (§IV-D);
//! * [`coordinator::Coordinator`] — admission queueing, planning, task
//!   orchestration, adaptive writer scaling, telemetry;
//! * [`metrics`] — point-in-time [`metrics::ClusterSnapshot`] of the
//!   runtime counters of §VII, serializable to JSON;
//! * [`chaos`] — deterministic fault-injection schedules (§IV-G testing);
//! * [`cluster::Cluster`] — the embedding facade.

pub mod analyze;
pub mod chaos;
pub mod cluster;
pub mod config;
pub mod coordinator;
pub mod history;
pub mod memory;
pub mod metrics;
pub mod mlfq;
pub mod scheduler;
pub mod system_provider;
pub mod telemetry;
pub mod worker;

pub use chaos::{ChaosEvent, ChaosProfile, ChaosSchedule};
pub use cluster::{Cluster, QueryResult};
pub use config::ClusterConfig;
pub use coordinator::QueryError;
pub use history::{QueryHistory, QueryHistoryEntry};
pub use metrics::ClusterSnapshot;
pub use system_provider::ClusterSystemState;
pub use telemetry::{
    ClusterTelemetry, DynamicFilterMetrics, FusionMetrics, QueryLatencyMetrics, SpillMetrics,
};
pub use worker::WorkerState;
