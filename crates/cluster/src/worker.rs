//! Worker nodes: cooperative multitasking executor threads (§IV-F1).
//!
//! "Presto schedules many concurrent tasks on every worker node to achieve
//! multi-tenancy and uses a cooperative multi-tasking model. Any given
//! split is only allowed to run on a thread for a maximum quanta of one
//! second, after which it must relinquish the thread and return to the
//! queue. When output buffers are full … input buffers are empty … or the
//! system is out of memory, the local scheduler simply switches to
//! processing another task."

use parking_lot::Mutex;
use presto_common::{NodeId, PrestoError, QueryId, TaskId, TraceBuffer, TraceKind};
use presto_exec::{Driver, DriverState, Task};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::memory::NodeMemoryPool;
use crate::mlfq::MultilevelQueue;
use crate::telemetry::ClusterTelemetry;

/// Lifecycle of a worker node, exported by `ClusterSnapshot` (§IV-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Healthy: accepts new task placement.
    Active = 0,
    /// Graceful drain ("shutting down" in the paper): no new placement,
    /// running tasks finish.
    Draining = 1,
    /// Crashed or declared dead by the liveness detector; tasks failed.
    Lost = 2,
    /// Threads stopped cleanly (drain completed or cluster shutdown).
    Shutdown = 3,
}

impl WorkerState {
    pub fn as_str(&self) -> &'static str {
        match self {
            WorkerState::Active => "active",
            WorkerState::Draining => "draining",
            WorkerState::Lost => "lost",
            WorkerState::Shutdown => "shutdown",
        }
    }

    pub fn parse(s: &str) -> Option<WorkerState> {
        Some(match s {
            "active" => WorkerState::Active,
            "draining" => WorkerState::Draining,
            "lost" => WorkerState::Lost,
            "shutdown" => WorkerState::Shutdown,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> WorkerState {
        match v {
            1 => WorkerState::Draining,
            2 => WorkerState::Lost,
            3 => WorkerState::Shutdown,
            _ => WorkerState::Active,
        }
    }
}

/// Shared, cluster-wide state of one query (error slot + cancellation).
pub struct QueryState {
    pub query: QueryId,
    error: Mutex<Option<PrestoError>>,
    cancelled: AtomicBool,
    cpu_nanos: AtomicU64,
    tasks: Mutex<Vec<Arc<TaskHandle>>>,
}

impl QueryState {
    pub fn new(query: QueryId) -> Arc<QueryState> {
        Arc::new(QueryState {
            query,
            error: Mutex::new(None),
            cancelled: AtomicBool::new(false),
            cpu_nanos: AtomicU64::new(0),
            tasks: Mutex::new(Vec::new()),
        })
    }

    pub fn register_task(&self, task: Arc<TaskHandle>) {
        self.tasks.lock().push(task);
    }

    /// Record a failure and cancel every task of the query. First error
    /// wins.
    pub fn fail(&self, error: PrestoError) {
        {
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(error);
            }
        }
        self.cancel();
    }

    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        for task in self.tasks.lock().iter() {
            task.cancel();
        }
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    pub fn error(&self) -> Option<PrestoError> {
        self.error.lock().clone()
    }

    pub fn add_cpu(&self, d: Duration) {
        self.cpu_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn cpu(&self) -> Duration {
        Duration::from_nanos(self.cpu_nanos.load(Ordering::Relaxed))
    }

    /// All registered tasks have completed (successfully or not).
    pub fn all_tasks_done(&self) -> bool {
        self.tasks.lock().iter().all(|t| t.is_done())
    }
}

/// One task as the worker sees it.
pub struct TaskHandle {
    pub id: TaskId,
    pub query_state: Arc<QueryState>,
    /// The compiled task (output buffer, scan queues, exchange inputs) —
    /// the coordinator wires exchanges and feeds splits through this.
    pub task: Arc<Task>,
    cpu_nanos: AtomicU64,
    remaining_drivers: AtomicUsize,
    cancelled: AtomicBool,
    done: AtomicBool,
    quanta: Duration,
    spill_enabled: bool,
}

impl TaskHandle {
    pub fn cpu(&self) -> Duration {
        Duration::from_nanos(self.cpu_nanos.load(Ordering::Relaxed))
    }

    /// Clean teardown (§IV-G): stop the task's drivers, release the output
    /// buffer's retained wire bytes (consumers observe a clean
    /// end-of-stream), and stop this task's own exchange fetches/retries
    /// immediately. Called for every sibling task when a query fails, is
    /// cancelled, or completes early (LIMIT).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        self.task.output.close();
        for e in &self.task.exchanges {
            e.client.cancel();
        }
    }

    /// Forced teardown for tasks on a crashed or lost worker: like
    /// [`cancel`](Self::cancel), but the output buffer is *aborted* so
    /// remote consumers surface `WorkerFailed` instead of a clean
    /// end-of-stream, and the task is marked done immediately — its queued
    /// drivers will never run, so nothing else would ever retire it.
    pub fn abort(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        self.task.output.abort();
        for e in &self.task.exchanges {
            e.client.cancel();
        }
        if !self.done.swap(true, Ordering::SeqCst) {
            self.task.memory.release_all();
            // Guaranteed spill cleanup: any run file this task wrote (agg,
            // sort, grace join — including runs still referenced by a
            // published hash table) is deleted here, not when the last Arc
            // happens to drop.
            self.task.spill.remove_all();
        }
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Retire one driver, folding its statistics into the task rollup.
    /// Every retirement path (finished, failed, cancelled) comes through
    /// here so the §VII counters survive the driver itself.
    fn driver_done(&self, driver: Option<&Driver>) {
        if let Some(driver) = driver {
            self.task.stats.record(driver.stats_report());
        }
        if self.remaining_drivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.done.store(true, Ordering::SeqCst);
            self.task.memory.release_all();
            // All drivers retired: no operator can read a spill run again.
            self.task.spill.remove_all();
        }
    }
}

/// One queued unit of work: a driver plus its task. Public in name only —
/// it appears in [`Worker::scheduler_queue`]'s type, but its fields and
/// construction stay private to this module.
pub struct DriverRun {
    driver: Driver,
    task: Arc<TaskHandle>,
}

/// A worker node: N executor threads over a multilevel feedback queue.
pub struct Worker {
    pub node: NodeId,
    pub pool: Arc<NodeMemoryPool>,
    queue: Arc<MultilevelQueue<DriverRun>>,
    blocked: Arc<Mutex<VecDeque<(Instant, DriverRun)>>>,
    shutdown: Arc<AtomicBool>,
    dead: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    telemetry: ClusterTelemetry,
    worker_index: usize,
    /// Tasks currently known to this worker (for kill()).
    tasks: Mutex<Vec<Arc<TaskHandle>>>,
    running_drivers: Arc<AtomicUsize>,
    trace: Option<Arc<TraceBuffer>>,
    /// Lifecycle state ([`WorkerState`] as u8), exported to snapshots and
    /// consulted by placement.
    state: AtomicU8,
    /// Monotone liveness counter, bumped by executor threads between quanta
    /// (and while idle). The coordinator's failure detector declares the
    /// worker lost when it stops advancing for `liveness_timeout`.
    heartbeat: AtomicU64,
    /// Chaos hook: a paused worker's scheduler stops taking quanta (and
    /// stops heartbeating) — the injected "hung worker" fault.
    paused: AtomicBool,
    /// Coordinators mid-placement hold a lease so a graceful drain cannot
    /// stop the threads between placement and task submission.
    leases: AtomicUsize,
}

impl Worker {
    pub fn start(
        node: NodeId,
        worker_index: usize,
        threads: usize,
        pool: Arc<NodeMemoryPool>,
        telemetry: ClusterTelemetry,
        trace: Option<Arc<TraceBuffer>>,
    ) -> Arc<Worker> {
        let worker = Arc::new(Worker {
            node,
            pool,
            queue: Arc::new(MultilevelQueue::new()),
            blocked: Arc::new(Mutex::new(VecDeque::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
            dead: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
            telemetry,
            worker_index,
            tasks: Mutex::new(Vec::new()),
            running_drivers: Arc::new(AtomicUsize::new(0)),
            trace,
            state: AtomicU8::new(WorkerState::Active as u8),
            heartbeat: AtomicU64::new(0),
            paused: AtomicBool::new(false),
            leases: AtomicUsize::new(0),
        });
        let mut handles = Vec::new();
        for t in 0..threads {
            let w = Arc::clone(&worker);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("worker-{}-{t}", node.0))
                    .spawn(move || w.run_executor(t as u32))
                    .expect("spawn worker thread"),
            );
        }
        *worker.threads.lock() = handles;
        worker
    }

    /// Accept a compiled task: its drivers enter the scheduling queue.
    pub fn submit_task(
        &self,
        task: Task,
        query_state: Arc<QueryState>,
        quanta: Duration,
        spill_enabled: bool,
    ) -> Arc<TaskHandle> {
        let drivers = std::mem::take(&mut *task.drivers.lock());
        let handle = Arc::new(TaskHandle {
            id: task.id,
            query_state: Arc::clone(&query_state),
            task: Arc::new(task),
            cpu_nanos: AtomicU64::new(0),
            remaining_drivers: AtomicUsize::new(drivers.len().max(1)),
            cancelled: AtomicBool::new(false),
            done: AtomicBool::new(drivers.is_empty()),
            quanta,
            spill_enabled,
        });
        query_state.register_task(Arc::clone(&handle));
        // A dead or stopped worker will never run these drivers; fail the
        // query promptly instead of letting the task hang forever.
        if self.is_dead() || self.state() == WorkerState::Shutdown {
            query_state.fail(PrestoError::worker_failed(format!(
                "worker {} is not accepting tasks ({})",
                self.node,
                self.state().as_str()
            )));
            handle.abort();
            return handle;
        }
        {
            // Prune completed tasks so a long-lived worker does not retain
            // every task (and its buffers) it ever ran.
            let mut tasks = self.tasks.lock();
            tasks.retain(|t| !t.is_done());
            tasks.push(Arc::clone(&handle));
        }
        for driver in drivers {
            self.queue.push(
                DriverRun {
                    driver,
                    task: Arc::clone(&handle),
                },
                Duration::ZERO,
            );
        }
        // Close the race with a concurrent kill(): if the worker died while
        // we were enqueuing, the kill may have drained the queue before (or
        // while) our drivers landed — abort them here so the task retires.
        if self.is_dead() {
            query_state.fail(PrestoError::worker_failed(format!(
                "worker {} crashed",
                self.node
            )));
            drop(self.queue.drain());
            self.blocked.lock().clear();
            handle.abort();
        }
        handle
    }

    /// Pending work (runnable + parked drivers).
    pub fn backlog(&self) -> usize {
        self.queue.len() + self.blocked.lock().len()
    }

    /// Drivers currently executing a quantum on this worker's threads.
    pub fn running_drivers(&self) -> usize {
        self.running_drivers.load(Ordering::Relaxed)
    }

    /// Drivers parked on a blocked condition (backoff pending).
    pub fn blocked_drivers(&self) -> usize {
        self.blocked.lock().len()
    }

    /// The worker's MLFQ, for metrics snapshots.
    pub fn scheduler_queue(&self) -> &MultilevelQueue<DriverRun> {
        &self.queue
    }

    /// Tasks submitted to this worker that have not completed yet (the
    /// source of the mid-flight shuffle gauges in metrics snapshots).
    pub fn live_tasks(&self) -> Vec<Arc<TaskHandle>> {
        self.tasks
            .lock()
            .iter()
            .filter(|t| !t.is_done())
            .cloned()
            .collect()
    }

    /// Simulated crash (§IV-G): every task on this worker fails with the
    /// retryable `WorkerFailed` code; the node stops processing.
    pub fn kill(&self) {
        self.kill_with("crashed");
    }

    /// Crash / declare-lost implementation shared by [`kill`](Self::kill)
    /// and the liveness detector. In-flight tasks fail their queries
    /// promptly (peers must not block on exchange fetch from a dead
    /// source), queued drivers are aborted so no task lingers half-retired,
    /// and the worker's task memory returns to the pool.
    pub fn kill_with(&self, why: &str) {
        if self.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        self.set_state(WorkerState::Lost);
        let tasks: Vec<Arc<TaskHandle>> = self.tasks.lock().clone();
        for task in tasks {
            if !task.is_done() {
                task.query_state.fail(PrestoError::worker_failed(format!(
                    "worker {} {why}",
                    self.node
                )));
                task.abort();
            }
        }
        drop(self.queue.drain());
        self.blocked.lock().clear();
    }

    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Current lifecycle state.
    pub fn state(&self) -> WorkerState {
        WorkerState::from_u8(self.state.load(Ordering::SeqCst))
    }

    fn set_state(&self, state: WorkerState) {
        self.state.store(state as u8, Ordering::SeqCst);
    }

    /// Healthy and accepting new placement: `Active`, not dead, not paused
    /// into oblivion (a hung worker stays nominally available until the
    /// detector declares it lost — exactly the window the paper's
    /// heartbeat monitoring closes).
    pub fn is_available(&self) -> bool {
        self.state() == WorkerState::Active && !self.is_dead()
    }

    /// Enter graceful drain ("shutting down", §IV-G): placement skips this
    /// worker from now on; running tasks continue to completion.
    pub fn begin_drain(&self) {
        let _ = self.state.compare_exchange(
            WorkerState::Active as u8,
            WorkerState::Draining as u8,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Liveness counter; advances while executor threads are taking (or
    /// waiting for) quanta. Frozen when hung or dead.
    pub fn heartbeat(&self) -> u64 {
        self.heartbeat.load(Ordering::Relaxed)
    }

    /// Chaos hook: pause/unpause the scheduler loop. A paused worker stops
    /// taking quanta and stops heartbeating — indistinguishable from a hung
    /// process to the failure detector.
    pub fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::SeqCst);
    }

    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    /// Take a placement lease. While any coordinator holds one, a graceful
    /// drain must keep the worker's threads running: the lease closes the
    /// race between "placement computed" and "tasks submitted".
    pub fn lease(&self) {
        self.leases.fetch_add(1, Ordering::SeqCst);
    }

    pub fn release_lease(&self) {
        self.leases.fetch_sub(1, Ordering::SeqCst);
    }

    pub fn leases(&self) -> usize {
        self.leases.load(Ordering::SeqCst)
    }

    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if self.state() != WorkerState::Lost {
            self.set_state(WorkerState::Shutdown);
        }
        let handles = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            let _ = h.join();
        }
    }

    fn run_executor(&self, thread_index: u32) {
        while !self.shutdown.load(Ordering::SeqCst) {
            if self.dead.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            // A hung scheduler (chaos injection) stops taking quanta AND
            // stops heartbeating — the detector must notice.
            if self.paused.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            self.heartbeat.fetch_add(1, Ordering::Relaxed);
            // Re-admit blocked drivers whose backoff elapsed.
            {
                let mut blocked = self.blocked.lock();
                let now = Instant::now();
                let mut rest = VecDeque::new();
                while let Some((at, run)) = blocked.pop_front() {
                    if at <= now {
                        self.queue.push(run, Duration::ZERO);
                    } else {
                        rest.push_back((at, run));
                    }
                }
                *blocked = rest;
            }
            let Some(mut run) = self.queue.pop() else {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            };
            if run.task.is_cancelled() || run.task.query_state.is_cancelled() {
                run.task.driver_done(Some(&run.driver));
                continue;
            }
            self.running_drivers.fetch_add(1, Ordering::Relaxed);
            let cpu_before = run.task.cpu();
            let started = Instant::now();
            // Operator panics (engine bugs, storage I/O panics in lazy
            // loaders) must fail the query, never kill the executor thread.
            let quanta = run.task.quanta;
            let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run.driver.process(quanta)
            })) {
                Ok(r) => r,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker task panicked".to_string());
                    Err(PrestoError::internal(format!("task panicked: {msg}")))
                }
            };
            let elapsed = started.elapsed();
            self.running_drivers.fetch_sub(1, Ordering::Relaxed);
            // Charge actual thread time to the task (§IV-F1).
            run.task
                .cpu_nanos
                .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
            run.task.query_state.add_cpu(elapsed);
            self.queue.charge(cpu_before, elapsed);
            self.telemetry
                .record_worker_busy(self.worker_index, elapsed);
            if let Some(trace) = &self.trace {
                trace.record_span(
                    TraceKind::DriverQuantum,
                    elapsed.as_nanos() as u64,
                    self.node.0,
                    thread_index,
                    run.task.id.stage.query.0,
                    run.task.id.stage.stage as u64,
                );
            }
            match result {
                Ok(DriverState::Ready) => {
                    self.queue.push(run, cpu_before + elapsed);
                }
                Ok(DriverState::Blocked(reason)) => {
                    use presto_exec::BlockedReason;
                    if reason == BlockedReason::Memory && run.task.spill_enabled {
                        // Revoke (spill) and retry immediately (§IV-F2).
                        match run.driver.revoke_memory() {
                            Ok(freed) if freed > 0 => {
                                self.queue.push(run, cpu_before + elapsed);
                                continue;
                            }
                            Ok(_) => {}
                            Err(e) => {
                                run.task.query_state.fail(e);
                                run.task.driver_done(Some(&run.driver));
                                continue;
                            }
                        }
                    }
                    let backoff = Duration::from_micros(200);
                    self.blocked
                        .lock()
                        .push_back((Instant::now() + backoff, run));
                }
                Ok(DriverState::Finished) => {
                    run.task.driver_done(Some(&run.driver));
                }
                Err(e) => {
                    run.task.query_state.fail(e);
                    run.task.driver_done(Some(&run.driver));
                }
            }
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}
