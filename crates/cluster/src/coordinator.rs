//! The coordinator: admission, planning, and query orchestration (§III).

use parking_lot::{Condvar, Mutex};
use presto_common::id::QueryIdGenerator;
use presto_common::{
    DataType, PrestoError, QueryId, Result, Schema, Session, TaskId, TraceBuffer, Value,
};
use presto_connector::CatalogManager;
use presto_exec::task::{create_task, TaskContext};
use presto_exec::{QueryPhases, QueryStats, StageStats};
use presto_page::{decode_framed_page, Page};
use presto_planner::{OutputPartitioning, PhysicalPlan};
use presto_sql::ast::Statement;
use presto_sql::parse_statement;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::ClusterConfig;
use crate::history::{self, LifecycleEvent, QueryHistory, QueryHistoryEntry};
use crate::memory::{QueryMemoryLimits, ReservedPoolLock};
use crate::scheduler::{build_side_sources, place_fragments, Placement, SplitFeeder};
use crate::telemetry::ClusterTelemetry;
use crate::worker::{QueryState, TaskHandle, Worker};

/// A failed query: the error plus its id.
#[derive(Debug, Clone)]
pub struct QueryError {
    pub query: QueryId,
    pub error: PrestoError,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query {} failed: {}", self.query, self.error)
    }
}

impl std::error::Error for QueryError {}

/// Successful query result.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub query: QueryId,
    pub schema: Schema,
    pub pages: Vec<Page>,
    pub wall_time: Duration,
    pub queued_time: Duration,
    pub cpu_time: Duration,
}

impl QueryOutput {
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.pages
            .iter()
            .flat_map(|p| p.to_rows(&self.schema))
            .collect()
    }

    pub fn row_count(&self) -> usize {
        self.pages.iter().map(Page::row_count).sum()
    }
}

/// FIFO admission gate ("queue policies", §III). Blocks until a run slot
/// frees; rejects outright above the queue bound.
struct Admission {
    state: Mutex<(usize, usize)>, // (running, waiting)
    cv: Condvar,
    max_running: usize,
    max_waiting: usize,
}

impl Admission {
    fn new(max_running: usize, max_waiting: usize) -> Admission {
        Admission {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            max_running,
            max_waiting,
        }
    }

    fn acquire(&self) -> Result<()> {
        let mut state = self.state.lock();
        if state.1 >= self.max_waiting {
            return Err(PrestoError::resources(format!(
                "query queue is full ({} queued)",
                state.1
            )));
        }
        state.1 += 1;
        while state.0 >= self.max_running {
            self.cv.wait(&mut state);
        }
        state.1 -= 1;
        state.0 += 1;
        Ok(())
    }

    fn release(&self) {
        let mut state = self.state.lock();
        state.0 -= 1;
        self.cv.notify_one();
    }
}

/// The coordinator node.
pub struct Coordinator {
    pub config: ClusterConfig,
    pub catalogs: CatalogManager,
    pub workers: Vec<Arc<Worker>>,
    pub telemetry: ClusterTelemetry,
    pub reserved: Arc<ReservedPoolLock>,
    /// Bounded retention of finished queries (§VII), read by
    /// `system.runtime.queries`/`tasks`/`operators`.
    pub history: Arc<QueryHistory>,
    trace: Option<Arc<TraceBuffer>>,
    ids: QueryIdGenerator,
    admission: Admission,
    /// Queries currently executing (admitted, tasks possibly live), for
    /// administrative cancellation and introspection.
    active: Mutex<HashMap<QueryId, Arc<QueryState>>>,
}

impl Coordinator {
    pub fn new(
        config: ClusterConfig,
        catalogs: CatalogManager,
        workers: Vec<Arc<Worker>>,
        telemetry: ClusterTelemetry,
        reserved: Arc<ReservedPoolLock>,
        history: Arc<QueryHistory>,
        trace: Option<Arc<TraceBuffer>>,
    ) -> Coordinator {
        let admission = Admission::new(config.max_concurrent_queries, config.max_queued_queries);
        Coordinator {
            config,
            catalogs,
            workers,
            telemetry,
            reserved,
            history,
            trace,
            ids: QueryIdGenerator::new(),
            admission,
            active: Mutex::new(HashMap::new()),
        }
    }

    /// Queries currently registered as executing.
    pub fn active_queries(&self) -> Vec<QueryId> {
        let mut v: Vec<QueryId> = self.active.lock().keys().copied().collect();
        v.sort();
        v
    }

    /// Administratively cancel a running query (§IV-G clean teardown):
    /// every task across every worker stops, exchange buffers drain, and
    /// the query's memory returns to the pools. Returns `false` if the
    /// query is not currently running.
    pub fn cancel_query(&self, query: QueryId) -> bool {
        let state = self.active.lock().get(&query).cloned();
        match state {
            Some(state) => {
                state.fail(PrestoError::killed("query cancelled by administrator"));
                true
            }
            None => false,
        }
    }

    /// Execute a SQL statement to completion on the calling thread.
    pub fn execute(
        &self,
        sql: &str,
        session: &Session,
    ) -> std::result::Result<QueryOutput, QueryError> {
        let query = self.ids.next_id();
        let queued_at = Instant::now();
        self.telemetry.query_queued(query);
        let mut events = vec![LifecycleEvent {
            state: "queued",
            at_nanos: self.telemetry.now_nanos(),
        }];
        let fail = |e: PrestoError| QueryError { query, error: e };
        // Parse before admission so syntax errors fail fast. The query
        // fails while still queued — it never started running, and
        // telemetry accounts it against the queued gauge.
        let statement = match parse_statement(sql) {
            Ok(s) => s,
            Err(e) => {
                self.telemetry.query_finished(query, Duration::ZERO, true);
                self.telemetry.record_query_error(query, e.code.tag());
                self.record_history(
                    query,
                    Some(&e),
                    queued_at.elapsed(),
                    Phases::default(),
                    Duration::ZERO,
                    Duration::ZERO,
                    0,
                    None,
                    0,
                    events,
                );
                return Err(fail(e));
            }
        };
        if let Err(e) = self.admission.acquire() {
            self.telemetry.query_finished(query, Duration::ZERO, true);
            self.telemetry.record_query_error(query, e.code.tag());
            self.record_history(
                query,
                Some(&e),
                queued_at.elapsed(),
                Phases::default(),
                Duration::ZERO,
                Duration::ZERO,
                0,
                None,
                0,
                events,
            );
            return Err(fail(e));
        }
        self.telemetry.query_started(query);
        events.push(LifecycleEvent {
            state: "started",
            at_nanos: self.telemetry.now_nanos(),
        });
        let queued_time = queued_at.elapsed();
        let started_at = Instant::now();
        // Coordinator-level query retry (§IV-G). The paper leaves whole-query
        // retry to external clients; sessions opt in via
        // `query_retry_attempts` for retryable failures (worker loss,
        // exhausted transient externals). Each attempt replans and replaces
        // tasks — a lost worker is excluded the second time around.
        let mut attempt: u32 = 0;
        let mut total_cpu = Duration::ZERO;
        // Explicit phase measurements (§VII): planning and executing sum
        // over attempts; retry backoff counts as execution-side wall so
        // retried queries do not inflate the queueing numbers.
        let mut phases = Phases::default();
        let mut last_stats: Option<QueryStats> = None;
        let result = loop {
            let attempt_started = Instant::now();
            let outcome = self.run_admitted(query, &statement, session, queued_time, attempt);
            total_cpu += outcome.cpu;
            phases.planning += outcome.planning;
            phases.executing += attempt_started.elapsed().saturating_sub(outcome.planning);
            if outcome.stats.is_some() {
                last_stats = outcome.stats;
            }
            match outcome.result {
                Err(e) if e.is_retryable() && attempt < session.query_retry_attempts => {
                    attempt += 1;
                    self.telemetry.record_error("QUERY_RETRY");
                    events.push(LifecycleEvent {
                        state: "retry",
                        at_nanos: self.telemetry.now_nanos(),
                    });
                    let backoff =
                        retry_backoff(session.query_retry_backoff, attempt, query.0);
                    phases.executing += backoff;
                    std::thread::sleep(backoff);
                }
                other => break other,
            }
        };
        let cpu = total_cpu;
        self.admission.release();
        let attempts = attempt + 1;
        self.telemetry.record_query_phases(
            query,
            queued_time,
            phases.planning,
            phases.executing,
            attempts,
        );
        match result {
            Ok((schema, pages)) => {
                self.telemetry.query_finished(query, cpu, false);
                let rows_returned = pages.iter().map(Page::row_count).sum::<usize>() as u64;
                self.record_history(
                    query,
                    None,
                    queued_time,
                    phases,
                    cpu,
                    started_at.elapsed(),
                    attempts,
                    last_stats.as_ref(),
                    rows_returned,
                    events,
                );
                Ok(QueryOutput {
                    query,
                    schema,
                    pages,
                    wall_time: started_at.elapsed(),
                    queued_time,
                    cpu_time: cpu,
                })
            }
            Err(e) => {
                // Failures report their real thread time too (§VII): a
                // query killed after burning CPU should show the spend.
                self.telemetry.query_finished(query, cpu, true);
                self.telemetry
                    .record_query_failure(query, e.code.tag(), e.message.clone());
                self.record_history(
                    query,
                    Some(&e),
                    queued_time,
                    phases,
                    cpu,
                    started_at.elapsed(),
                    attempts,
                    last_stats.as_ref(),
                    0,
                    events,
                );
                Err(fail(e))
            }
        }
    }

    /// Build and push one [`QueryHistoryEntry`]; the terminal lifecycle
    /// event is stamped here so entry state and event trail always agree.
    #[allow(clippy::too_many_arguments)]
    fn record_history(
        &self,
        query: QueryId,
        error: Option<&PrestoError>,
        queued: Duration,
        phases: Phases,
        cpu: Duration,
        wall: Duration,
        attempts: u32,
        stats: Option<&QueryStats>,
        rows_returned: u64,
        mut events: Vec<LifecycleEvent>,
    ) {
        let (tasks, peak_memory_bytes) = stats.map(history::summarize_stats).unwrap_or_default();
        let state = if error.is_some() { "failed" } else { "finished" };
        let now = self.telemetry.now_nanos();
        events.push(LifecycleEvent {
            state,
            at_nanos: now,
        });
        self.history.record(QueryHistoryEntry {
            query,
            state,
            error_tag: error.map(|e| e.code.tag()),
            error_message: error.map(|e| e.message.clone()),
            queued,
            planning: phases.planning,
            executing: phases.executing,
            cpu,
            wall,
            attempts,
            peak_memory_bytes,
            rows_returned,
            tasks,
            events,
            finished_at_nanos: now,
        });
    }

    fn run_admitted(
        &self,
        query: QueryId,
        statement: &Statement,
        session: &Session,
        queued: Duration,
        attempt: u32,
    ) -> AttemptOutcome {
        fn plan_page(text: String) -> (Schema, Vec<Page>) {
            let schema = Schema::of(&[("plan", DataType::Varchar)]);
            let page = Page::from_rows(&schema, &[vec![Value::varchar(text)]]);
            (schema, vec![page])
        }
        match statement {
            // EXPLAIN returns the distributed plan as text, without running.
            Statement::Explain(inner) => {
                let planning_started = Instant::now();
                let result = presto_planner::plan_statement(inner, session, &self.catalogs)
                    .map(|plan| plan_page(plan.explain()));
                AttemptOutcome {
                    result,
                    cpu: Duration::ZERO,
                    planning: planning_started.elapsed(),
                    stats: None,
                }
            }
            // EXPLAIN ANALYZE executes the inner statement, discards its
            // rows, and renders the fragment tree annotated with the
            // statistics collected while it ran.
            Statement::ExplainAnalyze(inner) => {
                let (res, cpu, planning) = self.execute_plan(query, inner, session, true);
                match res {
                    Ok((plan, _pages, mut stats)) => {
                        stats.phases = QueryPhases {
                            queued,
                            planning,
                            execution: stats.wall_time,
                            attempts: attempt + 1,
                        };
                        let text = crate::analyze::render_explain_analyze(
                            &plan,
                            &stats,
                            &self.telemetry.latency_metrics(),
                        );
                        AttemptOutcome {
                            result: Ok(plan_page(text)),
                            cpu,
                            planning,
                            stats: Some(stats),
                        }
                    }
                    Err(e) => AttemptOutcome {
                        result: Err(e),
                        cpu,
                        planning,
                        stats: None,
                    },
                }
            }
            _ => {
                let (res, cpu, planning) = self.execute_plan(query, statement, session, false);
                match res {
                    Ok((plan, pages, mut stats)) => {
                        stats.phases = QueryPhases {
                            queued,
                            planning,
                            execution: stats.wall_time,
                            attempts: attempt + 1,
                        };
                        AttemptOutcome {
                            result: Ok((plan.output_schema(), pages)),
                            cpu,
                            planning,
                            stats: Some(stats),
                        }
                    }
                    Err(e) => AttemptOutcome {
                        result: Err(e),
                        cpu,
                        planning,
                        stats: None,
                    },
                }
            }
        }
    }

    /// Plan and run a statement. The returned `Duration`s are the query's
    /// total thread time and the planning wall time, available for
    /// successes and failures alike.
    #[allow(clippy::type_complexity)]
    fn execute_plan(
        &self,
        query: QueryId,
        statement: &Statement,
        session: &Session,
        drain_for_stats: bool,
    ) -> (
        Result<(PhysicalPlan, Vec<Page>, QueryStats)>,
        Duration,
        Duration,
    ) {
        let planning_started = Instant::now();
        let plan = match presto_planner::plan_statement(statement, session, &self.catalogs) {
            Ok(plan) => plan,
            Err(e) => return (Err(e), Duration::ZERO, planning_started.elapsed()),
        };
        let planning = planning_started.elapsed();
        let state = QueryState::new(query);
        self.active.lock().insert(query, Arc::clone(&state));
        // Register memory limits on every node.
        let limits = QueryMemoryLimits::new(
            query,
            session.query_max_memory,
            session.query_max_memory_per_node,
            session.query_max_total_memory_per_node,
        );
        for w in &self.workers {
            w.pool.register_query(Arc::clone(&limits));
        }
        let run = self.run_tasks(query, &plan, session, &state, drain_for_stats);
        // Cleanup regardless of outcome: cancel first so stragglers (e.g.
        // leaf drivers of a LIMIT query that finished early) stop before
        // their memory registration disappears.
        state.cancel();
        self.active.lock().remove(&query);
        for w in &self.workers {
            w.pool.unregister_query(query);
        }
        self.reserved.release(query);
        let cpu = state.cpu();
        (
            run.map(|(pages, stats)| (plan, pages, stats)),
            cpu,
            planning,
        )
    }

    fn run_tasks(
        &self,
        query: QueryId,
        plan: &PhysicalPlan,
        session: &Session,
        state: &Arc<QueryState>,
        drain_for_stats: bool,
    ) -> Result<(Vec<Page>, QueryStats)> {
        let started = Instant::now();
        // Lease every worker for the placement-to-submission window, THEN
        // read availability. Ordering matters: a graceful drain first flips
        // the worker to Draining, then waits for leases to reach zero — so
        // any lease taken after the flip observes Draining and excludes the
        // worker, and any lease taken before delays the drain until the
        // tasks have actually been submitted. Either way, no task can land
        // on a worker whose threads have stopped.
        let lease = PlacementLease::new(&self.workers);
        let available = lease.available();
        if available.is_empty() {
            return Err(PrestoError::resources(
                "no workers available for placement (all draining, lost, or shut down)",
            ));
        }
        let placements = place_fragments(plan, &self.config, &available);
        // Echo the effective spill knobs into telemetry so `ClusterSnapshot`
        // reports where spill runs land and under what disk budget while
        // the query is still running (§IV-F2).
        if session.spill_enabled {
            let dir = session
                .spill_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir);
            self.telemetry
                .record_spill_config(dir.display().to_string(), session.spill_max_bytes);
        }
        // Dynamic filtering (§IV-B2): one registry per query routes
        // build-side key domains from join builds to probe-side scans.
        // Partitioned builds complete a filter after every join-stage task
        // reports its shard; replicated (broadcast) builds see the full
        // build side in every task, so the first report wins.
        let dyn_filters = (session.dynamic_filtering && !plan.dynamic_filters.is_empty())
            .then(|| {
                let registry = presto_exec::DynamicFilterRegistry::new();
                for spec in &plan.dynamic_filters {
                    let expected = if spec.broadcast {
                        1
                    } else {
                        placements[spec.join_fragment as usize].tasks.len()
                    };
                    registry.register(spec.join, expected);
                }
                presto_exec::TaskDynamicFilters::new(registry, plan.dynamic_filters.clone())
            });
        // Create every task (compiled, not yet running).
        let mut tasks: Vec<Vec<presto_exec::Task>> = Vec::with_capacity(plan.fragments.len());
        for fragment in &plan.fragments {
            let placement = &placements[fragment.id as usize];
            let consumer_count = if fragment.id == plan.root {
                1
            } else {
                let consumer = crate::scheduler::consumer_of(plan, fragment.id);
                placements[consumer as usize].tasks.len()
            };
            let mut fragment_tasks = Vec::new();
            for (task_index, _) in placement.tasks.iter().enumerate() {
                let worker_index = placement.tasks[task_index];
                let ctx = TaskContext {
                    task_id: TaskId {
                        stage: query.stage(fragment.id),
                        task: task_index as u32,
                    },
                    session: session.clone(),
                    catalogs: self.catalogs.clone(),
                    memory_pool: Arc::clone(&self.workers[worker_index].pool)
                        as Arc<dyn presto_exec::MemoryPool>,
                    consumer_count,
                    leaf_parallelism: self.config.leaf_parallelism,
                    output_buffer_bytes: self.config.output_buffer_bytes,
                    exchange_buffer_bytes: self.config.exchange_buffer_bytes,
                    exchange_poll_latency: self.config.exchange_poll_latency,
                    trace: self.trace.clone(),
                    dynamic_filters: dyn_filters.clone(),
                };
                fragment_tasks.push(create_task(fragment, &ctx)?);
            }
            tasks.push(fragment_tasks);
        }
        // Wire exchanges: consumer clients subscribe to producer buffers.
        for (fid, fragment_tasks) in tasks.iter().enumerate() {
            for (consumer_index, task) in fragment_tasks.iter().enumerate() {
                for exchange in &task.exchanges {
                    let producers = &tasks[exchange.source_fragment as usize];
                    for producer in producers {
                        exchange
                            .client
                            .add_source(Arc::clone(&producer.output), consumer_index);
                    }
                    exchange
                        .no_more_sources
                        .store(true, std::sync::atomic::Ordering::SeqCst);
                }
            }
            let _ = fid;
        }
        // Writer scaling: round-robin producers start with one active
        // partition; the monitor below raises it under backpressure.
        let mut scaling_buffers = Vec::new();
        for (fid, fragment) in plan.fragments.iter().enumerate() {
            if fragment.output == OutputPartitioning::RoundRobin {
                for task in &tasks[fid] {
                    task.output.set_active_partitions(1);
                    scaling_buffers.push(Arc::clone(&task.output));
                }
            }
        }
        // Submission order: all-at-once, or phased (build sides first).
        let order = match session.scheduling_policy {
            presto_common::session::SchedulingPolicy::AllAtOnce => {
                (0..plan.fragments.len() as u32).collect::<Vec<_>>()
            }
            presto_common::session::SchedulingPolicy::Phased => phased_order(plan),
        };
        // Handles per fragment, for phased waiting.
        let mut handles: Vec<Vec<Arc<TaskHandle>>> =
            (0..plan.fragments.len()).map(|_| Vec::new()).collect();
        // Pre-compute phased dependencies.
        let deps: Vec<Vec<u32>> = plan.fragments.iter().map(build_side_sources).collect();
        let phased = session.scheduling_policy == presto_common::session::SchedulingPolicy::Phased;
        // We must take tasks out in submission order.
        let mut task_slots: Vec<Option<Vec<presto_exec::Task>>> =
            tasks.into_iter().map(Some).collect();
        for fid in order {
            if phased {
                // Wait for build-side source fragments to finish first.
                for &dep in &deps[fid as usize] {
                    loop {
                        if state.is_cancelled() {
                            break;
                        }
                        let done = handles[dep as usize].iter().all(|h| h.is_done())
                            && !handles[dep as usize].is_empty();
                        if done {
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }
            let fragment_tasks = task_slots[fid as usize].take().expect("unsubmitted");
            let placement: &Placement = &placements[fid as usize];
            for (i, task) in fragment_tasks.into_iter().enumerate() {
                let worker = &self.workers[placement.tasks[i]];
                let handle = worker.submit_task(
                    task,
                    Arc::clone(state),
                    session.quanta,
                    session.spill_enabled,
                );
                handles[fid as usize].push(handle);
            }
            // Feed splits for this fragment's scans.
            self.feed_fragment_splits(
                plan,
                fid,
                &placements,
                &handles[fid as usize],
                state,
                session,
                dyn_filters.as_ref(),
            )?;
        }
        // All tasks are submitted; drains may proceed (running tasks still
        // hold the worker via live_tasks()).
        drop(lease);
        // Drive: poll root output, monitor writer scaling, watch errors.
        let root_handles = &handles[plan.root as usize];
        let root_output = Arc::clone(&root_handles[0].task.output);
        let mut pages = Vec::new();
        let mut token = 0u64;
        loop {
            if let Some(e) = state.error() {
                return Err(e);
            }
            let response = root_output.poll(0, token, 1 << 20);
            token = response.next_token;
            for bytes in &response.pages {
                pages.push(decode_framed_page(bytes)?);
            }
            if response.finished {
                break;
            }
            // Adaptive writer scaling (§IV-E3).
            for buffer in &scaling_buffers {
                if buffer.utilization() > self.config.writer_scale_up_threshold {
                    let active = buffer.active_partitions();
                    if active < buffer.consumer_count() {
                        buffer.set_active_partitions(active + 1);
                    }
                }
            }
            if response.pages.is_empty() {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        if let Some(e) = state.error() {
            return Err(e);
        }
        // Roll this query's dynamic-filtering savings into the
        // cluster-lifetime counters exported by `ClusterSnapshot`.
        if let Some(df) = &dyn_filters {
            use std::sync::atomic::Ordering::Relaxed;
            let t = df.registry.totals();
            self.telemetry
                .record_dynamic_filters(crate::telemetry::DynamicFilterMetrics {
                    filters_published: t.filters_published.load(Relaxed),
                    splits_pruned: t.splits_pruned.load(Relaxed),
                    stripes_pruned: t.stripes_pruned.load(Relaxed),
                    rows_filtered: t.rows_filtered.load(Relaxed),
                    wait_nanos: t.wait_nanos.load(Relaxed),
                });
        }
        if drain_for_stats {
            // Give in-flight drivers a moment to retire so their final
            // reports land in the rollup. Bounded: LIMIT-style plans leave
            // leaf drivers running until cancellation, and those report
            // whatever they had when cancelled.
            let deadline = Instant::now() + Duration::from_millis(500);
            while !handles.iter().flatten().all(|h| h.is_done()) && Instant::now() < deadline {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        // Final statistics are always assembled (§VII: "Presto collects
        // and stores operator level statistics … for every query") — they
        // feed the query-history store behind `system.runtime.*` and, for
        // EXPLAIN ANALYZE, the rendered plan. Best-effort for plain
        // queries (drivers retire asynchronously); stats-bearing queries
        // waited for the drain above.
        let stats = QueryStats {
            query,
            stages: handles
                .iter()
                .enumerate()
                .map(|(fid, hs)| StageStats {
                    stage: fid as u32,
                    tasks: hs.iter().map(|h| h.task.stats_snapshot()).collect(),
                })
                .collect(),
            total_cpu: state.cpu(),
            wall_time: started.elapsed(),
            phases: QueryPhases::default(),
        };
        // Roll this query's pipeline-fusion totals into the cluster-lifetime
        // counters exported by `ClusterSnapshot`. Fused operators export
        // their per-stage row counts as uniform OperatorStats counters, so
        // the rollup just sums them out of the same snapshot.
        let mut fusion = crate::telemetry::FusionMetrics::default();
        for task in stats.stages.iter().flat_map(|s| &s.tasks) {
            for pipeline in &task.pipelines {
                for op in &pipeline.operators {
                    if op.name != "FusedPipeline" {
                        continue;
                    }
                    let c = |n: &str| op.stats.counter(n).unwrap_or(0);
                    fusion.pipelines += 1;
                    fusion.scan_rows += c("fused_scan_rows");
                    fusion.filter_rows += c("fused_filter_rows");
                    fusion.project_rows += c("fused_project_rows");
                    fusion.agg_rows += c("fused_agg_rows");
                    fusion.rows_produced += op.stats.output_rows;
                }
            }
        }
        if fusion.pipelines > 0 {
            self.telemetry.record_fusion(fusion);
        }
        // Roll this query's spill totals into the cluster-lifetime
        // counters: every spilling operator (grace-join build/probe, agg,
        // sort) exports uniform `spilled_bytes`/`spill_events` counters.
        let (mut spilled_bytes, mut spill_events) = (0u64, 0u64);
        for op in stats
            .stages
            .iter()
            .flat_map(|s| &s.tasks)
            .flat_map(|t| &t.pipelines)
            .flat_map(|p| &p.operators)
        {
            spilled_bytes += op.stats.counter("spilled_bytes").unwrap_or(0);
            spill_events += op.stats.counter("spill_events").unwrap_or(0);
        }
        if spill_events > 0 || spilled_bytes > 0 {
            self.telemetry.record_spill(spilled_bytes, spill_events);
        }
        Ok((pages, stats))
    }

    /// Start asynchronous split enumeration for every scan of a fragment.
    /// Feeding runs on its own threads so (a) co-located fragments with two
    /// scans cannot deadlock on bounded split queues, and (b) queries can
    /// start returning results before enumeration completes (§IV-D3).
    #[allow(clippy::too_many_arguments)]
    fn feed_fragment_splits(
        &self,
        plan: &PhysicalPlan,
        fid: u32,
        placements: &[Placement],
        handles: &[Arc<TaskHandle>],
        state: &Arc<QueryState>,
        session: &Session,
        dyn_filters: Option<&Arc<presto_exec::TaskDynamicFilters>>,
    ) -> Result<()> {
        let fragment = plan.fragment(fid);
        if fragment.scans().is_empty() {
            return Ok(());
        }
        let placement = placements[fid as usize].clone();
        let scan_count = handles[0].task.scans.len();
        let node_of: Vec<presto_common::NodeId> = self.workers.iter().map(|w| w.node).collect();
        for scan_idx in 0..scan_count {
            let proto = &handles[0].task.scans[scan_idx];
            let catalog = proto.catalog.clone();
            let table = proto.table.clone();
            let layout = proto.layout.clone();
            let predicate = proto.predicate.clone();
            let queues: Vec<(usize, Arc<presto_exec::scan::SplitQueue>)> = handles
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    (
                        placement.tasks[i],
                        Arc::clone(&h.task.scans[scan_idx].queue),
                    )
                })
                .collect();
            let catalogs = self.catalogs.clone();
            let config = self.config.clone();
            let state = Arc::clone(state);
            let bucketed = placement.bucketed;
            let node_of = node_of.clone();
            // Feeder-side consumer handle when a dynamic filter targets
            // this scan: prunes still-unassigned splits once the filter
            // arrives, within the same bounded wait the operators use.
            let scan_filter = dyn_filters.and_then(|df| {
                let specs = df.specs_for_scan(proto.node_id);
                (!specs.is_empty()).then(|| {
                    presto_exec::ScanDynamicFilter::new(
                        Arc::clone(&df.registry),
                        specs,
                        session.dynamic_filter_wait,
                    )
                })
            });
            std::thread::Builder::new()
                .name(format!("split-feed-{fid}-{scan_idx}"))
                .spawn(move || {
                    let feeder = SplitFeeder {
                        catalogs: &catalogs,
                        config: &config,
                    };
                    if let Err(e) = feeder.feed(
                        &catalog,
                        &table,
                        &layout,
                        &predicate,
                        &queues,
                        bucketed,
                        &state,
                        &|w| node_of[w],
                        scan_filter.as_deref(),
                    ) {
                        state.fail(e);
                        // Unblock scan drivers waiting for splits.
                        for (_, q) in &queues {
                            q.no_more_splits();
                        }
                    }
                })
                .map_err(|e| PrestoError::internal(format!("spawn split feeder: {e}")))?;
        }
        Ok(())
    }
}

/// Accumulated planning/executing wall time across a query's attempts
/// (queued time is measured separately, once, before the retry loop).
#[derive(Debug, Clone, Copy, Default)]
struct Phases {
    planning: Duration,
    executing: Duration,
}

/// Everything one attempt of `run_admitted` produces: the client-facing
/// result, thread time, planning wall time, and (when the attempt got far
/// enough to run tasks) the final statistics tree for the history store.
struct AttemptOutcome {
    result: Result<(Schema, Vec<Page>)>,
    cpu: Duration,
    planning: Duration,
    stats: Option<QueryStats>,
}

/// RAII guard over the placement-to-submission window: holds one lease on
/// every worker so a graceful drain cannot stop threads between "placement
/// computed" and "tasks submitted" (see `run_tasks` for the ordering
/// argument).
struct PlacementLease<'a> {
    workers: &'a [Arc<Worker>],
}

impl<'a> PlacementLease<'a> {
    fn new(workers: &'a [Arc<Worker>]) -> PlacementLease<'a> {
        for w in workers {
            w.lease();
        }
        PlacementLease { workers }
    }

    /// Indices of workers placement may use, read *after* the leases are
    /// held.
    fn available(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_available())
            .map(|(i, _)| i)
            .collect()
    }
}

impl Drop for PlacementLease<'_> {
    fn drop(&mut self) {
        for w in self.workers {
            w.release_lease();
        }
    }
}

/// Exponential backoff with deterministic jitter for coordinator-level
/// query retry: attempt `n` (1-based) sleeps `base * 2^(n-1)` plus up to
/// 50% jitter derived from the query id, so queries retried after the same
/// worker loss do not stampede in lockstep.
fn retry_backoff(base: Duration, attempt: u32, salt: u64) -> Duration {
    let base_ns = base.as_nanos() as u64;
    let step = base_ns.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
    let jitter = presto_common::chaos::mix(salt ^ u64::from(attempt)) % (step / 2 + 1);
    Duration::from_nanos(step.saturating_add(jitter))
}

/// Topological order of fragments, children first.
fn phased_order(plan: &PhysicalPlan) -> Vec<u32> {
    let mut order = Vec::new();
    let mut visited = vec![false; plan.fragments.len()];
    fn visit(plan: &PhysicalPlan, id: u32, visited: &mut [bool], out: &mut Vec<u32>) {
        if visited[id as usize] {
            return;
        }
        visited[id as usize] = true;
        for child in plan.fragment(id).source_fragments() {
            visit(plan, child, visited, out);
        }
        out.push(id);
    }
    visit(plan, plan.root, &mut visited, &mut order);
    // Any unreachable fragments (none expected) appended for safety.
    for f in 0..plan.fragments.len() as u32 {
        if !visited[f as usize] {
            order.push(f);
        }
    }
    order
}
