//! Runtime metrics export (§VII "Effortless instrumentation").
//!
//! "The median Presto worker node exports ~10,000 real-time performance
//! counters" — [`ClusterSnapshot`] gathers the cluster's live runtime
//! state into one serializable value, queryable mid-flight: per-worker
//! MLFQ occupancy and demotions, memory-pool usage and peaks, shuffle
//! gauges, cache counters, and the query lifecycle gauges. Serialization
//! round-trips through [`presto_common::json`] so snapshots can be
//! shipped, diffed, and re-parsed without third-party crates.

use presto_common::json::Json;
use presto_common::{LatencySummary, Result, TraceBuffer};
use std::sync::Arc;

use crate::memory::PoolSnapshot;
use crate::mlfq::{LevelSnapshot, SchedulerSnapshot};
use crate::telemetry::{
    ClusterTelemetry, DynamicFilterMetrics, FusionMetrics, QueryLatencyMetrics, SpillMetrics,
};
use crate::worker::Worker;

/// One worker's runtime state.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerMetrics {
    pub node: u32,
    /// Lifecycle state: "active", "draining", "lost", or "shutdown"
    /// (§IV-G).
    pub state: String,
    /// Executor busy time since startup, in nanoseconds.
    pub busy_nanos: u64,
    /// Drivers executing a quantum right now.
    pub running_drivers: u64,
    /// Drivers parked on a blocked condition.
    pub blocked_drivers: u64,
    /// Drivers waiting in the scheduling queue.
    pub queued_drivers: u64,
    pub scheduler: SchedulerSnapshot,
    pub memory: PoolSnapshot,
}

/// Shuffle data-plane gauges, aggregated over tasks still running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleMetrics {
    /// Bytes parked in live tasks' output buffers right now.
    pub output_buffered_bytes: u64,
    /// Bytes parked in live exchange-client input buffers right now.
    pub exchange_buffered_bytes: u64,
    /// Exchange requests currently in flight.
    pub in_flight_requests: u64,
    /// Transient decode failures retried by live exchange clients.
    pub retries: u64,
    /// Serialized (possibly compressed) bytes pulled from upstream tasks.
    pub wire_bytes_received: u64,
    /// Uncompressed logical bytes of the same pages.
    pub logical_bytes_received: u64,
}

impl ShuffleMetrics {
    /// Logical/wire expansion of exchanged data (1.0 when nothing moved
    /// or nothing compressed).
    pub fn compression_ratio(&self) -> f64 {
        if self.wire_bytes_received == 0 {
            1.0
        } else {
            self.logical_bytes_received as f64 / self.wire_bytes_received as f64
        }
    }
}

/// Query lifecycle gauges. Invariant (asserted by the telemetry stress
/// test): `queued + running + finished + failed == submitted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryGauges {
    pub submitted: u64,
    pub queued: u64,
    pub running: u64,
    pub finished: u64,
    pub failed: u64,
}

/// One registered cache layer's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLayerMetrics {
    pub layer: String,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub inserts: u64,
    pub invalidations: u64,
    pub bytes: u64,
}

/// A point-in-time view of the whole cluster's runtime counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    pub uptime_nanos: u64,
    pub workers: Vec<WorkerMetrics>,
    pub shuffle: ShuffleMetrics,
    pub queries: QueryGauges,
    /// Dynamic-filtering savings accumulated across finished queries.
    pub dynamic_filters: DynamicFilterMetrics,
    /// Pipeline-fusion totals accumulated across finished queries.
    pub fusion: FusionMetrics,
    /// Spill totals accumulated across finished queries, plus the
    /// effective `spill_dir`/`spill_max_bytes` knobs (§IV-F2).
    pub spill: SpillMetrics,
    pub caches: Vec<CacheLayerMetrics>,
    /// p50/p95/p99 of queue/planning/execution wall time across finished
    /// queries, from the log-bucketed latency histograms (§VII).
    pub latency: QueryLatencyMetrics,
    /// Events recorded into the trace timeline so far (0 when disabled).
    pub trace_events: u64,
    /// Events lost to ring overwrites so far — nonzero means the timeline
    /// is no longer complete from the start (silent loss made visible).
    pub trace_overwritten: u64,
}

impl ClusterSnapshot {
    /// Gather the current state. Cheap enough to call mid-query: every
    /// source is either an atomic counter or a short-lived lock.
    pub fn collect(
        workers: &[Arc<Worker>],
        telemetry: &ClusterTelemetry,
        trace: Option<&TraceBuffer>,
    ) -> ClusterSnapshot {
        let busy = telemetry.worker_busy();
        let mut shuffle = ShuffleMetrics::default();
        let worker_metrics = workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                for handle in w.live_tasks() {
                    shuffle.output_buffered_bytes += handle.task.output.retained_bytes() as u64;
                    for e in &handle.task.exchanges {
                        shuffle.exchange_buffered_bytes += e.client.buffered_bytes() as u64;
                        shuffle.in_flight_requests += e.client.in_flight() as u64;
                        shuffle.retries += e.client.retries();
                        shuffle.wire_bytes_received += e.client.bytes_received();
                        shuffle.logical_bytes_received += e.client.logical_bytes_received();
                    }
                }
                WorkerMetrics {
                    node: w.node.0,
                    state: w.state().as_str().to_string(),
                    busy_nanos: busy.get(i).map_or(0, |d| d.as_nanos() as u64),
                    running_drivers: w.running_drivers() as u64,
                    blocked_drivers: w.blocked_drivers() as u64,
                    queued_drivers: w.scheduler_queue().len() as u64,
                    scheduler: w.scheduler_queue().snapshot(),
                    memory: w.pool.snapshot(),
                }
            })
            .collect();
        ClusterSnapshot {
            uptime_nanos: telemetry.uptime().as_nanos() as u64,
            workers: worker_metrics,
            shuffle,
            queries: QueryGauges {
                submitted: telemetry.submitted_queries(),
                queued: telemetry.queued_queries(),
                running: telemetry.running_queries(),
                finished: telemetry.finished_queries(),
                failed: telemetry.failed_queries(),
            },
            dynamic_filters: telemetry.dynamic_filter_metrics(),
            fusion: telemetry.fusion_metrics(),
            spill: telemetry.spill_metrics(),
            caches: telemetry
                .cache_counters_by_layer()
                .into_iter()
                .map(|(name, c)| CacheLayerMetrics {
                    layer: name.to_string(),
                    hits: c.hits,
                    misses: c.misses,
                    evictions: c.evictions,
                    inserts: c.inserts,
                    invalidations: c.invalidations,
                    bytes: c.bytes,
                })
                .collect(),
            latency: telemetry.latency_metrics(),
            trace_events: trace.map_or(0, |t| t.recorded()),
            trace_overwritten: trace.map_or(0, |t| t.overwritten_events()),
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("uptime_nanos", int(self.uptime_nanos)),
            (
                "workers",
                Json::Arr(self.workers.iter().map(worker_to_json).collect()),
            ),
            (
                "shuffle",
                Json::obj([
                    ("output_buffered_bytes", int(self.shuffle.output_buffered_bytes)),
                    (
                        "exchange_buffered_bytes",
                        int(self.shuffle.exchange_buffered_bytes),
                    ),
                    ("in_flight_requests", int(self.shuffle.in_flight_requests)),
                    ("retries", int(self.shuffle.retries)),
                    ("wire_bytes_received", int(self.shuffle.wire_bytes_received)),
                    (
                        "logical_bytes_received",
                        int(self.shuffle.logical_bytes_received),
                    ),
                ]),
            ),
            (
                "queries",
                Json::obj([
                    ("submitted", int(self.queries.submitted)),
                    ("queued", int(self.queries.queued)),
                    ("running", int(self.queries.running)),
                    ("finished", int(self.queries.finished)),
                    ("failed", int(self.queries.failed)),
                ]),
            ),
            (
                "dynamic_filters",
                Json::obj([
                    ("filters_published", int(self.dynamic_filters.filters_published)),
                    ("splits_pruned", int(self.dynamic_filters.splits_pruned)),
                    ("stripes_pruned", int(self.dynamic_filters.stripes_pruned)),
                    ("rows_filtered", int(self.dynamic_filters.rows_filtered)),
                    ("wait_nanos", int(self.dynamic_filters.wait_nanos)),
                ]),
            ),
            (
                "fusion",
                Json::obj([
                    ("pipelines", int(self.fusion.pipelines)),
                    ("scan_rows", int(self.fusion.scan_rows)),
                    ("filter_rows", int(self.fusion.filter_rows)),
                    ("project_rows", int(self.fusion.project_rows)),
                    ("agg_rows", int(self.fusion.agg_rows)),
                    ("rows_produced", int(self.fusion.rows_produced)),
                ]),
            ),
            (
                "spill",
                Json::obj([
                    ("queries_spilled", int(self.spill.queries_spilled)),
                    ("spilled_bytes", int(self.spill.spilled_bytes)),
                    ("spill_events", int(self.spill.spill_events)),
                    ("spill_dir", Json::Str(self.spill.spill_dir.clone())),
                    ("spill_max_bytes", int(self.spill.spill_max_bytes)),
                ]),
            ),
            (
                "caches",
                Json::Arr(
                    self.caches
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("layer", Json::Str(c.layer.clone())),
                                ("hits", int(c.hits)),
                                ("misses", int(c.misses)),
                                ("evictions", int(c.evictions)),
                                ("inserts", int(c.inserts)),
                                ("invalidations", int(c.invalidations)),
                                ("bytes", int(c.bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "latency",
                Json::obj([
                    ("queued", summary_to_json(&self.latency.queued)),
                    ("planning", summary_to_json(&self.latency.planning)),
                    ("execution", summary_to_json(&self.latency.execution)),
                ]),
            ),
            ("trace_events", int(self.trace_events)),
            ("trace_overwritten", int(self.trace_overwritten)),
        ])
    }

    pub fn from_json(v: &Json) -> Result<ClusterSnapshot> {
        let shuffle = v.field("shuffle")?;
        let queries = v.field("queries")?;
        let df = v.field("dynamic_filters")?;
        let fusion = v.field("fusion")?;
        Ok(ClusterSnapshot {
            uptime_nanos: v.field_u64("uptime_nanos")?,
            workers: v
                .field_arr("workers")?
                .iter()
                .map(worker_from_json)
                .collect::<Result<Vec<_>>>()?,
            shuffle: ShuffleMetrics {
                output_buffered_bytes: shuffle.field_u64("output_buffered_bytes")?,
                exchange_buffered_bytes: shuffle.field_u64("exchange_buffered_bytes")?,
                in_flight_requests: shuffle.field_u64("in_flight_requests")?,
                retries: shuffle.field_u64("retries")?,
                wire_bytes_received: shuffle.field_u64("wire_bytes_received")?,
                logical_bytes_received: shuffle.field_u64("logical_bytes_received")?,
            },
            queries: QueryGauges {
                submitted: queries.field_u64("submitted")?,
                queued: queries.field_u64("queued")?,
                running: queries.field_u64("running")?,
                finished: queries.field_u64("finished")?,
                failed: queries.field_u64("failed")?,
            },
            dynamic_filters: DynamicFilterMetrics {
                filters_published: df.field_u64("filters_published")?,
                splits_pruned: df.field_u64("splits_pruned")?,
                stripes_pruned: df.field_u64("stripes_pruned")?,
                rows_filtered: df.field_u64("rows_filtered")?,
                wait_nanos: df.field_u64("wait_nanos")?,
            },
            fusion: FusionMetrics {
                pipelines: fusion.field_u64("pipelines")?,
                scan_rows: fusion.field_u64("scan_rows")?,
                filter_rows: fusion.field_u64("filter_rows")?,
                project_rows: fusion.field_u64("project_rows")?,
                agg_rows: fusion.field_u64("agg_rows")?,
                rows_produced: fusion.field_u64("rows_produced")?,
            },
            spill: {
                let spill = v.field("spill")?;
                SpillMetrics {
                    queries_spilled: spill.field_u64("queries_spilled")?,
                    spilled_bytes: spill.field_u64("spilled_bytes")?,
                    spill_events: spill.field_u64("spill_events")?,
                    spill_dir: spill.field_str("spill_dir")?.to_string(),
                    spill_max_bytes: spill.field_u64("spill_max_bytes")?,
                }
            },
            caches: v
                .field_arr("caches")?
                .iter()
                .map(|c| {
                    Ok(CacheLayerMetrics {
                        layer: c.field_str("layer")?.to_string(),
                        hits: c.field_u64("hits")?,
                        misses: c.field_u64("misses")?,
                        evictions: c.field_u64("evictions")?,
                        inserts: c.field_u64("inserts")?,
                        invalidations: c.field_u64("invalidations")?,
                        bytes: c.field_u64("bytes")?,
                    })
                })
                .collect::<Result<Vec<_>>>()?,
            latency: {
                let lat = v.field("latency")?;
                QueryLatencyMetrics {
                    queued: summary_from_json(lat.field("queued")?)?,
                    planning: summary_from_json(lat.field("planning")?)?,
                    execution: summary_from_json(lat.field("execution")?)?,
                }
            },
            trace_events: v.field_u64("trace_events")?,
            trace_overwritten: v.field_u64("trace_overwritten")?,
        })
    }
}

fn summary_to_json(s: &LatencySummary) -> Json {
    Json::obj([
        ("count", int(s.count)),
        ("p50_nanos", int(s.p50_nanos)),
        ("p95_nanos", int(s.p95_nanos)),
        ("p99_nanos", int(s.p99_nanos)),
        ("max_nanos", int(s.max_nanos)),
    ])
}

fn summary_from_json(v: &Json) -> Result<LatencySummary> {
    Ok(LatencySummary {
        count: v.field_u64("count")?,
        p50_nanos: v.field_u64("p50_nanos")?,
        p95_nanos: v.field_u64("p95_nanos")?,
        p99_nanos: v.field_u64("p99_nanos")?,
        max_nanos: v.field_u64("max_nanos")?,
    })
}

/// u64 → JSON integer. Counters beyond `i64::MAX` saturate (a physical
/// impossibility for byte/event counts; saturation beats panicking).
fn int(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn worker_to_json(w: &WorkerMetrics) -> Json {
    Json::obj([
        ("node", int(w.node as u64)),
        ("state", Json::Str(w.state.clone())),
        ("busy_nanos", int(w.busy_nanos)),
        ("running_drivers", int(w.running_drivers)),
        ("blocked_drivers", int(w.blocked_drivers)),
        ("queued_drivers", int(w.queued_drivers)),
        (
            "scheduler",
            Json::obj([
                (
                    "levels",
                    Json::Arr(
                        w.scheduler
                            .levels
                            .iter()
                            .map(|l| {
                                Json::obj([
                                    ("occupancy", int(l.occupancy as u64)),
                                    ("used_nanos", int(l.used_nanos)),
                                    ("entries", int(l.entries)),
                                    ("quanta_granted", int(l.quanta_granted)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("demotions", int(w.scheduler.demotions)),
                ("promotions", int(w.scheduler.promotions)),
            ]),
        ),
        (
            "memory",
            Json::obj([
                ("general_used", Json::Int(w.memory.general_used)),
                ("reserved_used", Json::Int(w.memory.reserved_used)),
                ("system_used", Json::Int(w.memory.system_used)),
                ("peak_general", Json::Int(w.memory.peak_general)),
                ("peak_reserved", Json::Int(w.memory.peak_reserved)),
                ("general_limit", Json::Int(w.memory.general_limit)),
                ("reserved_limit", Json::Int(w.memory.reserved_limit)),
                (
                    "blocked_reservations",
                    Json::Int(w.memory.blocked_reservations),
                ),
                (
                    "revocation_requests",
                    Json::Int(w.memory.revocation_requests),
                ),
                ("active_queries", int(w.memory.active_queries as u64)),
            ]),
        ),
    ])
}

fn worker_from_json(v: &Json) -> Result<WorkerMetrics> {
    let scheduler = v.field("scheduler")?;
    let memory = v.field("memory")?;
    Ok(WorkerMetrics {
        node: v.field_u64("node")? as u32,
        state: v.field_str("state")?.to_string(),
        busy_nanos: v.field_u64("busy_nanos")?,
        running_drivers: v.field_u64("running_drivers")?,
        blocked_drivers: v.field_u64("blocked_drivers")?,
        queued_drivers: v.field_u64("queued_drivers")?,
        scheduler: SchedulerSnapshot {
            levels: scheduler
                .field_arr("levels")?
                .iter()
                .map(|l| {
                    Ok(LevelSnapshot {
                        occupancy: l.field_u64("occupancy")? as usize,
                        used_nanos: l.field_u64("used_nanos")?,
                        entries: l.field_u64("entries")?,
                        quanta_granted: l.field_u64("quanta_granted")?,
                    })
                })
                .collect::<Result<Vec<_>>>()?,
            demotions: scheduler.field_u64("demotions")?,
            promotions: scheduler.field_u64("promotions")?,
        },
        memory: PoolSnapshot {
            general_used: memory.field_i64("general_used")?,
            reserved_used: memory.field_i64("reserved_used")?,
            system_used: memory.field_i64("system_used")?,
            peak_general: memory.field_i64("peak_general")?,
            peak_reserved: memory.field_i64("peak_reserved")?,
            general_limit: memory.field_i64("general_limit")?,
            reserved_limit: memory.field_i64("reserved_limit")?,
            blocked_reservations: memory.field_i64("blocked_reservations")?,
            revocation_requests: memory.field_i64("revocation_requests")?,
            active_queries: memory.field_u64("active_queries")? as usize,
        },
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample() -> ClusterSnapshot {
        ClusterSnapshot {
            uptime_nanos: 12_345_678,
            workers: vec![WorkerMetrics {
                node: 0,
                state: "active".to_string(),
                busy_nanos: 999,
                running_drivers: 2,
                blocked_drivers: 1,
                queued_drivers: 3,
                scheduler: SchedulerSnapshot {
                    levels: vec![LevelSnapshot {
                        occupancy: 3,
                        used_nanos: 17,
                        entries: 9,
                        quanta_granted: 6,
                    }],
                    demotions: 2,
                    promotions: 0,
                },
                memory: PoolSnapshot {
                    general_used: 1024,
                    reserved_used: 0,
                    system_used: 77,
                    peak_general: 2048,
                    peak_reserved: 0,
                    general_limit: 1 << 29,
                    reserved_limit: 1 << 27,
                    blocked_reservations: 1,
                    revocation_requests: 1,
                    active_queries: 1,
                },
            }],
            shuffle: ShuffleMetrics {
                output_buffered_bytes: 4096,
                exchange_buffered_bytes: 512,
                in_flight_requests: 2,
                retries: 1,
                wire_bytes_received: 100,
                logical_bytes_received: 250,
            },
            queries: QueryGauges {
                submitted: 10,
                queued: 1,
                running: 2,
                finished: 6,
                failed: 1,
            },
            dynamic_filters: DynamicFilterMetrics {
                filters_published: 2,
                splits_pruned: 7,
                stripes_pruned: 11,
                rows_filtered: 5000,
                wait_nanos: 1_250_000,
            },
            fusion: FusionMetrics {
                pipelines: 3,
                scan_rows: 60_000,
                filter_rows: 900,
                project_rows: 900,
                agg_rows: 900,
                rows_produced: 12,
            },
            spill: SpillMetrics {
                queries_spilled: 2,
                spilled_bytes: 1 << 20,
                spill_events: 5,
                spill_dir: "/tmp/presto-spill".to_string(),
                spill_max_bytes: 1 << 30,
            },
            caches: vec![CacheLayerMetrics {
                layer: "porc_footer".to_string(),
                hits: 5,
                misses: 2,
                evictions: 0,
                inserts: 2,
                invalidations: 0,
                bytes: 333,
            }],
            latency: QueryLatencyMetrics {
                queued: LatencySummary {
                    count: 7,
                    p50_nanos: 1_000,
                    p95_nanos: 9_000,
                    p99_nanos: 9_500,
                    max_nanos: 10_000,
                },
                planning: LatencySummary {
                    count: 7,
                    p50_nanos: 52_000,
                    p95_nanos: 90_000,
                    p99_nanos: 96_000,
                    max_nanos: 100_000,
                },
                execution: LatencySummary {
                    count: 7,
                    p50_nanos: 4_100_000,
                    p95_nanos: 9_300_000,
                    p99_nanos: 9_900_000,
                    max_nanos: 10_000_000,
                },
            },
            trace_events: 42,
            trace_overwritten: 3,
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let snap = sample();
        let text = snap.to_json().to_string();
        let back = ClusterSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn compression_ratio() {
        assert_eq!(ShuffleMetrics::default().compression_ratio(), 1.0);
        assert_eq!(sample().shuffle.compression_ratio(), 2.5);
    }

    #[test]
    fn gauge_invariant_holds_in_sample() {
        let q = sample().queries;
        assert_eq!(q.queued + q.running + q.finished + q.failed, q.submitted);
    }
}
