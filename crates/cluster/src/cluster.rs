//! The embedding facade: start a cluster, run SQL.

use presto_cache::MetadataCache;
use presto_common::{NodeId, Result, Session, TraceBuffer};
use presto_connector::CatalogManager;
use std::sync::Arc;

use crate::config::ClusterConfig;
use crate::coordinator::{Coordinator, QueryError, QueryOutput};
use crate::memory::{NodeMemoryPool, PoolSystemCharger, ReservedPoolLock};
use crate::telemetry::ClusterTelemetry;
use crate::worker::Worker;

/// Re-exported result type.
pub type QueryResult = QueryOutput;

/// A running simulated cluster: one coordinator, N workers.
pub struct Cluster {
    coordinator: Arc<Coordinator>,
    workers: Vec<Arc<Worker>>,
    cache: Arc<MetadataCache>,
    trace: Option<Arc<TraceBuffer>>,
}

impl Cluster {
    /// Start a cluster with the given catalogs mounted. The metadata cache
    /// is built from `config.cache`; connectors that should share it must
    /// be constructed with the same cache — use
    /// [`start_with_cache`](Self::start_with_cache) for that.
    pub fn start(config: ClusterConfig, catalogs: CatalogManager) -> Result<Cluster> {
        let cache = MetadataCache::new(config.cache.clone());
        Self::start_with_cache(config, catalogs, cache)
    }

    /// Start a cluster around an existing [`MetadataCache`] (typically the
    /// one the connectors were built with). The cache's retained bytes are
    /// charged as system memory against every worker's general pool, and
    /// its per-layer counters are registered with cluster telemetry.
    pub fn start_with_cache(
        config: ClusterConfig,
        catalogs: CatalogManager,
        cache: Arc<MetadataCache>,
    ) -> Result<Cluster> {
        config.validate()?;
        let telemetry = ClusterTelemetry::new(config.workers);
        let reserved = ReservedPoolLock::new();
        let trace = (config.trace_capacity > 0).then(|| TraceBuffer::new(config.trace_capacity));
        let workers: Vec<Arc<Worker>> = (0..config.workers)
            .map(|i| {
                let pool = NodeMemoryPool::new(
                    NodeId(i as u32),
                    config.node_memory_bytes,
                    config.reserved_pool_bytes,
                    config.kill_on_memory_exhausted,
                    Arc::clone(&reserved),
                );
                if let Some(trace) = &trace {
                    pool.set_trace(Arc::clone(trace));
                }
                Worker::start(
                    NodeId(i as u32),
                    i,
                    config.threads_per_worker,
                    pool,
                    telemetry.clone(),
                    trace.clone(),
                )
            })
            .collect();
        // Wire cache memory into the worker pools and its counters into
        // telemetry. `set_charger` transfers the balance already retained.
        cache.set_charger(Arc::new(PoolSystemCharger::new(
            workers.iter().map(|w| Arc::clone(&w.pool)).collect(),
        )));
        for (name, stats) in cache.stats_handles() {
            telemetry.register_cache(name, stats);
        }
        let coordinator = Arc::new(Coordinator::new(
            config,
            catalogs,
            workers.clone(),
            telemetry,
            reserved,
            trace.clone(),
        ));
        Ok(Cluster {
            coordinator,
            workers,
            cache,
            trace,
        })
    }

    /// The shared trace timeline, if tracing is enabled
    /// (`config.trace_capacity > 0`). Export with
    /// [`TraceBuffer::to_chrome_trace`].
    pub fn trace(&self) -> Option<&Arc<TraceBuffer>> {
        self.trace.as_ref()
    }

    /// A point-in-time snapshot of runtime metrics across the cluster:
    /// scheduler occupancy, memory pools, shuffle, and query gauges (§VII).
    pub fn metrics_snapshot(&self) -> crate::metrics::ClusterSnapshot {
        crate::metrics::ClusterSnapshot::collect(
            &self.workers,
            self.telemetry(),
            self.trace.as_deref(),
        )
    }

    /// The metadata cache shared by this cluster (and any connectors built
    /// around the same instance).
    pub fn metadata_cache(&self) -> &Arc<MetadataCache> {
        &self.cache
    }

    /// Per-worker node-level system memory (cache retention), in bytes.
    pub fn worker_system_memory(&self) -> Vec<i64> {
        self.workers.iter().map(|w| w.pool.system_bytes()).collect()
    }

    /// Execute SQL with the default session, blocking until completion.
    pub fn execute(&self, sql: &str) -> std::result::Result<QueryOutput, QueryError> {
        self.execute_with_session(sql, &Session::default())
    }

    /// Execute SQL under a specific session.
    pub fn execute_with_session(
        &self,
        sql: &str,
        session: &Session,
    ) -> std::result::Result<QueryOutput, QueryError> {
        self.coordinator.execute(sql, session)
    }

    /// Submit a query on a background thread (concurrent workloads).
    pub fn submit(
        &self,
        sql: impl Into<String>,
        session: Session,
    ) -> std::thread::JoinHandle<std::result::Result<QueryOutput, QueryError>> {
        let coordinator = Arc::clone(&self.coordinator);
        let sql = sql.into();
        std::thread::spawn(move || coordinator.execute(&sql, &session))
    }

    pub fn telemetry(&self) -> &ClusterTelemetry {
        &self.coordinator.telemetry
    }

    pub fn catalogs(&self) -> &CatalogManager {
        &self.coordinator.catalogs
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.coordinator.config
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Simulate a worker crash (§IV-G): queries with tasks there fail.
    pub fn kill_worker(&self, index: usize) {
        self.workers[index].kill();
    }

    /// Stop all worker threads. Queries in flight are cancelled.
    pub fn shutdown(&self) {
        for w in &self.workers {
            w.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
