//! The embedding facade: start a cluster, run SQL.

use presto_common::{NodeId, Result, Session};
use presto_connector::CatalogManager;
use std::sync::Arc;

use crate::config::ClusterConfig;
use crate::coordinator::{Coordinator, QueryError, QueryOutput};
use crate::memory::{NodeMemoryPool, ReservedPoolLock};
use crate::telemetry::ClusterTelemetry;
use crate::worker::Worker;

/// Re-exported result type.
pub type QueryResult = QueryOutput;

/// A running simulated cluster: one coordinator, N workers.
pub struct Cluster {
    coordinator: Arc<Coordinator>,
    workers: Vec<Arc<Worker>>,
}

impl Cluster {
    /// Start a cluster with the given catalogs mounted.
    pub fn start(config: ClusterConfig, catalogs: CatalogManager) -> Result<Cluster> {
        config.validate()?;
        let telemetry = ClusterTelemetry::new(config.workers);
        let reserved = ReservedPoolLock::new();
        let workers: Vec<Arc<Worker>> = (0..config.workers)
            .map(|i| {
                let pool = NodeMemoryPool::new(
                    NodeId(i as u32),
                    config.node_memory_bytes,
                    config.reserved_pool_bytes,
                    config.kill_on_memory_exhausted,
                    Arc::clone(&reserved),
                );
                Worker::start(
                    NodeId(i as u32),
                    i,
                    config.threads_per_worker,
                    pool,
                    telemetry.clone(),
                )
            })
            .collect();
        let coordinator = Arc::new(Coordinator::new(
            config,
            catalogs,
            workers.clone(),
            telemetry,
            reserved,
        ));
        Ok(Cluster {
            coordinator,
            workers,
        })
    }

    /// Execute SQL with the default session, blocking until completion.
    pub fn execute(&self, sql: &str) -> std::result::Result<QueryOutput, QueryError> {
        self.execute_with_session(sql, &Session::default())
    }

    /// Execute SQL under a specific session.
    pub fn execute_with_session(
        &self,
        sql: &str,
        session: &Session,
    ) -> std::result::Result<QueryOutput, QueryError> {
        self.coordinator.execute(sql, session)
    }

    /// Submit a query on a background thread (concurrent workloads).
    pub fn submit(
        &self,
        sql: impl Into<String>,
        session: Session,
    ) -> std::thread::JoinHandle<std::result::Result<QueryOutput, QueryError>> {
        let coordinator = Arc::clone(&self.coordinator);
        let sql = sql.into();
        std::thread::spawn(move || coordinator.execute(&sql, &session))
    }

    pub fn telemetry(&self) -> &ClusterTelemetry {
        &self.coordinator.telemetry
    }

    pub fn catalogs(&self) -> &CatalogManager {
        &self.coordinator.catalogs
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.coordinator.config
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Simulate a worker crash (§IV-G): queries with tasks there fail.
    pub fn kill_worker(&self, index: usize) {
        self.workers[index].kill();
    }

    /// Stop all worker threads. Queries in flight are cancelled.
    pub fn shutdown(&self) {
        for w in &self.workers {
            w.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
