//! The embedding facade: start a cluster, run SQL.

use presto_cache::MetadataCache;
use presto_common::{NodeId, QueryId, Result, Session, TraceBuffer};
use presto_connector::CatalogManager;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::ClusterConfig;
use crate::coordinator::{Coordinator, QueryError, QueryOutput};
use crate::history::QueryHistory;
use crate::memory::{NodeMemoryPool, PoolSystemCharger, ReservedPoolLock};
use crate::system_provider::ClusterSystemState;
use crate::telemetry::ClusterTelemetry;
use crate::worker::{Worker, WorkerState};
use presto_connectors::SystemConnector;

/// Re-exported result type.
pub type QueryResult = QueryOutput;

/// A running simulated cluster: one coordinator, N workers.
pub struct Cluster {
    coordinator: Arc<Coordinator>,
    workers: Vec<Arc<Worker>>,
    cache: Arc<MetadataCache>,
    trace: Option<Arc<TraceBuffer>>,
    monitor_stop: Arc<AtomicBool>,
    monitor: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Coordinator-side failure detector (§IV-G): "The coordinator monitors
/// worker heartbeats and removes nodes that fail to respond." Each worker's
/// executor threads bump a heartbeat counter between quanta; if the counter
/// stops advancing for `liveness_timeout`, the worker is declared lost —
/// its queries fail with the retryable `WorkerFailed` code and placement
/// excludes it from then on.
fn run_liveness_monitor(
    workers: Vec<Arc<Worker>>,
    telemetry: ClusterTelemetry,
    timeout: Duration,
    stop: Arc<AtomicBool>,
) {
    let interval = (timeout / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
    let mut last: Vec<(u64, Instant)> = workers
        .iter()
        .map(|w| (w.heartbeat(), Instant::now()))
        .collect();
    while !stop.load(Ordering::SeqCst) {
        // Sleep in small chunks so shutdown is prompt even with long
        // liveness timeouts.
        let wake = Instant::now() + interval;
        while Instant::now() < wake && !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2).min(interval));
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        for (i, w) in workers.iter().enumerate() {
            if w.is_dead() || !matches!(w.state(), WorkerState::Active | WorkerState::Draining) {
                continue;
            }
            let beat = w.heartbeat();
            if beat != last[i].0 {
                last[i] = (beat, Instant::now());
            } else if last[i].1.elapsed() > timeout {
                w.kill_with(&format!(
                    "lost: no heartbeat for {:?} (liveness timeout {timeout:?})",
                    last[i].1.elapsed()
                ));
                telemetry.record_error("WORKER_LOST");
            }
        }
    }
}

impl Cluster {
    /// Start a cluster with the given catalogs mounted. The metadata cache
    /// is built from `config.cache`; connectors that should share it must
    /// be constructed with the same cache — use
    /// [`start_with_cache`](Self::start_with_cache) for that.
    pub fn start(config: ClusterConfig, catalogs: CatalogManager) -> Result<Cluster> {
        let cache = MetadataCache::new(config.cache.clone());
        Self::start_with_cache(config, catalogs, cache)
    }

    /// Start a cluster around an existing [`MetadataCache`] (typically the
    /// one the connectors were built with). The cache's retained bytes are
    /// charged as system memory against every worker's general pool, and
    /// its per-layer counters are registered with cluster telemetry.
    pub fn start_with_cache(
        config: ClusterConfig,
        mut catalogs: CatalogManager,
        cache: Arc<MetadataCache>,
    ) -> Result<Cluster> {
        config.validate()?;
        let telemetry = ClusterTelemetry::new(config.workers);
        let reserved = ReservedPoolLock::new();
        let trace = (config.trace_capacity > 0).then(|| TraceBuffer::new(config.trace_capacity));
        let workers: Vec<Arc<Worker>> = (0..config.workers)
            .map(|i| {
                let pool = NodeMemoryPool::new(
                    NodeId(i as u32),
                    config.node_memory_bytes,
                    config.reserved_pool_bytes,
                    config.kill_on_memory_exhausted,
                    Arc::clone(&reserved),
                );
                if let Some(trace) = &trace {
                    pool.set_trace(Arc::clone(trace));
                }
                Worker::start(
                    NodeId(i as u32),
                    i,
                    config.threads_per_worker,
                    pool,
                    telemetry.clone(),
                    trace.clone(),
                )
            })
            .collect();
        // Wire cache memory into the worker pools and its counters into
        // telemetry. `set_charger` transfers the balance already retained.
        cache.set_charger(Arc::new(PoolSystemCharger::new(
            workers.iter().map(|w| Arc::clone(&w.pool)).collect(),
        )));
        for (name, stats) in cache.stats_handles() {
            telemetry.register_cache(name, stats);
        }
        let monitor_stop = Arc::new(AtomicBool::new(false));
        let monitor = (config.liveness_timeout > Duration::ZERO).then(|| {
            let workers = workers.clone();
            let telemetry = telemetry.clone();
            let timeout = config.liveness_timeout;
            let stop = Arc::clone(&monitor_stop);
            std::thread::Builder::new()
                .name("liveness-monitor".to_string())
                .spawn(move || run_liveness_monitor(workers, telemetry, timeout, stop))
                .expect("spawn liveness monitor")
        });
        // The self-describing `system` catalog (§VII): live runtime state
        // and the bounded query history as SQL tables. Skipped if the
        // embedder mounted its own "system" catalog.
        let history = QueryHistory::new(config.query_history_capacity);
        if !catalogs.catalog_names().iter().any(|c| c == "system") {
            let provider = ClusterSystemState::new(
                workers.clone(),
                telemetry.clone(),
                Arc::clone(&history),
                trace.clone(),
            );
            catalogs.register("system", SystemConnector::new(provider));
        }
        let coordinator = Arc::new(Coordinator::new(
            config,
            catalogs,
            workers.clone(),
            telemetry,
            reserved,
            history,
            trace.clone(),
        ));
        Ok(Cluster {
            coordinator,
            workers,
            cache,
            trace,
            monitor_stop,
            monitor: parking_lot::Mutex::new(monitor),
        })
    }

    /// The shared trace timeline, if tracing is enabled
    /// (`config.trace_capacity > 0`). Export with
    /// [`TraceBuffer::to_chrome_trace`].
    pub fn trace(&self) -> Option<&Arc<TraceBuffer>> {
        self.trace.as_ref()
    }

    /// A point-in-time snapshot of runtime metrics across the cluster:
    /// scheduler occupancy, memory pools, shuffle, and query gauges (§VII).
    pub fn metrics_snapshot(&self) -> crate::metrics::ClusterSnapshot {
        crate::metrics::ClusterSnapshot::collect(
            &self.workers,
            self.telemetry(),
            self.trace.as_deref(),
        )
    }

    /// The metadata cache shared by this cluster (and any connectors built
    /// around the same instance).
    pub fn metadata_cache(&self) -> &Arc<MetadataCache> {
        &self.cache
    }

    /// Per-worker node-level system memory (cache retention), in bytes.
    pub fn worker_system_memory(&self) -> Vec<i64> {
        self.workers.iter().map(|w| w.pool.system_bytes()).collect()
    }

    /// Execute SQL with the default session, blocking until completion.
    pub fn execute(&self, sql: &str) -> std::result::Result<QueryOutput, QueryError> {
        self.execute_with_session(sql, &Session::default())
    }

    /// Execute SQL under a specific session.
    pub fn execute_with_session(
        &self,
        sql: &str,
        session: &Session,
    ) -> std::result::Result<QueryOutput, QueryError> {
        self.coordinator.execute(sql, session)
    }

    /// Submit a query on a background thread (concurrent workloads).
    pub fn submit(
        &self,
        sql: impl Into<String>,
        session: Session,
    ) -> std::thread::JoinHandle<std::result::Result<QueryOutput, QueryError>> {
        let coordinator = Arc::clone(&self.coordinator);
        let sql = sql.into();
        std::thread::spawn(move || coordinator.execute(&sql, &session))
    }

    pub fn telemetry(&self) -> &ClusterTelemetry {
        &self.coordinator.telemetry
    }

    /// The bounded query-history store backing `system.runtime.queries`
    /// (finished/failed queries, per-task summaries, lifecycle events).
    pub fn query_history(&self) -> &Arc<QueryHistory> {
        &self.coordinator.history
    }

    pub fn catalogs(&self) -> &CatalogManager {
        &self.coordinator.catalogs
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.coordinator.config
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Simulate a worker crash (§IV-G): queries with tasks there fail with
    /// the retryable `WorkerFailed` code, and peers never block on exchange
    /// fetch from the dead node (its output buffers abort).
    pub fn kill_worker(&self, index: usize) {
        self.workers[index].kill();
    }

    /// Chaos hook: hang a worker's scheduler — its executor threads stop
    /// taking quanta and stop heartbeating. The liveness detector will
    /// declare it lost after `liveness_timeout`.
    pub fn hang_worker(&self, index: usize) {
        self.workers[index].set_paused(true);
    }

    /// Undo [`hang_worker`](Self::hang_worker) (if the detector has not
    /// already declared the worker lost).
    pub fn resume_worker(&self, index: usize) {
        self.workers[index].set_paused(false);
    }

    /// Lifecycle state of each worker, by index.
    pub fn worker_states(&self) -> Vec<WorkerState> {
        self.workers.iter().map(|w| w.state()).collect()
    }

    /// Unretired tasks per worker. Every entry must drain to zero once the
    /// queries that created them terminate — a nonzero count after teardown
    /// is a stuck task (the §IV-G invariant `fault_tolerance.rs` and
    /// `chaos_bench` assert).
    pub fn worker_live_tasks(&self) -> Vec<usize> {
        self.workers.iter().map(|w| w.live_tasks().len()).collect()
    }

    /// Gracefully drain a worker (§IV-G "shutting down"): stop placing new
    /// tasks on it, wait for in-flight placements and running tasks to
    /// finish, then stop its threads. Returns an error if the drain does
    /// not complete within `timeout`.
    pub fn drain_worker(&self, index: usize, timeout: Duration) -> Result<()> {
        let w = &self.workers[index];
        w.begin_drain();
        let deadline = Instant::now() + timeout;
        loop {
            let quiesced =
                w.leases() == 0 && w.live_tasks().is_empty() && w.backlog() == 0;
            if quiesced && w.state() == WorkerState::Draining {
                // No coordinator is mid-placement (any lease taken after
                // begin_drain observes Draining and excludes this worker),
                // and nothing is running or queued — safe to stop.
                w.shutdown();
                return Ok(());
            }
            if w.is_dead() {
                return Err(presto_common::PrestoError::worker_failed(format!(
                    "worker {} died during drain",
                    w.node
                )));
            }
            if Instant::now() >= deadline {
                return Err(presto_common::PrestoError::internal(format!(
                    "drain of worker {} timed out after {timeout:?} \
                     (leases={}, live_tasks={}, backlog={})",
                    w.node,
                    w.leases(),
                    w.live_tasks().len(),
                    w.backlog()
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Queries currently registered with the coordinator (admitted, not yet
    /// finished).
    pub fn active_queries(&self) -> Vec<QueryId> {
        self.coordinator.active_queries()
    }

    /// Cancel a running query: all its tasks across all workers stop, its
    /// memory returns to the pools, and the submitter gets a `Killed`
    /// error.
    pub fn cancel_query(&self, query: QueryId) -> bool {
        self.coordinator.cancel_query(query)
    }

    /// Stop all worker threads. Queries in flight are cancelled.
    pub fn shutdown(&self) {
        // Stop the failure detector first so it cannot observe workers we
        // are deliberately stopping and "declare them lost".
        self.monitor_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.monitor.lock().take() {
            let _ = h.join();
        }
        for w in &self.workers {
            w.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
