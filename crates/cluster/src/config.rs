//! Cluster configuration.
//!
//! §VII "Static configuration": configuration is fixed at startup and
//! validated loudly; per-query knobs live in [`presto_common::Session`].

use presto_cache::MetadataCacheConfig;
use std::time::Duration;

/// Shape and limits of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub workers: usize,
    /// Number of racks; workers are assigned round-robin. The split
    /// scheduler prefers node-local, then rack-local placement (§IV-D2:
    /// "Network-constrained deployments at Facebook can use this mechanism
    /// to express to the engine a preference for rack-local reads over
    /// rack-remote reads").
    pub racks: usize,
    /// Executor threads per worker.
    pub threads_per_worker: usize,
    /// Parallel drivers per leaf pipeline per task (§IV-C4).
    pub leaf_parallelism: usize,
    /// General (query) memory pool per node, in bytes (§IV-F2).
    pub node_memory_bytes: u64,
    /// Reserved pool per node, in bytes.
    pub reserved_pool_bytes: u64,
    /// When the general pool is exhausted and the reserved pool occupied,
    /// kill the query using the most memory instead of stalling ("Clusters
    /// can be configured to instead kill the query that unblocks most
    /// nodes").
    pub kill_on_memory_exhausted: bool,
    /// Maximum concurrently-running queries (admission control; the queue
    /// policy of §III).
    pub max_concurrent_queries: usize,
    /// Maximum queued queries before admission rejects outright.
    pub max_queued_queries: usize,
    /// Output buffer capacity per task.
    pub output_buffer_bytes: usize,
    /// Exchange client input buffer capacity per task.
    pub exchange_buffer_bytes: usize,
    /// Simulated network latency per exchange poll (models the HTTP
    /// long-poll round trip; zero for latency-free benchmarks).
    pub exchange_poll_latency: Duration,
    /// Splits fetched from a connector per enumeration batch (§IV-D3).
    pub split_batch_size: usize,
    /// Maximum queued splits per task before assignment pauses (keeping
    /// queues small lets the cluster adapt to stragglers, §IV-D3).
    pub max_queued_splits_per_task: usize,
    /// Upper bound for adaptive writer scaling (§IV-E3).
    pub max_writer_tasks: usize,
    /// Output-buffer utilization above which a writer task is added.
    pub writer_scale_up_threshold: f64,
    /// Metadata-cache sizing: metastore (schemas + statistics), PORC
    /// footers, and split listings (§IV-B, §V-C). Retained bytes are
    /// charged as system memory against every worker's general pool.
    pub cache: MetadataCacheConfig,
    /// Capacity (in events) of the cluster-wide trace timeline ring
    /// (§VII). Old events are overwritten once full; `0` disables
    /// tracing entirely.
    pub trace_capacity: usize,
    /// Queries retained in the bounded query-history store backing
    /// `system.runtime.queries`/`tasks`/`operators` (§VII). Oldest entries
    /// are evicted once full (the eviction count is exported); `0`
    /// disables retention so system tables only show live queries.
    pub query_history_capacity: usize,
    /// Failure-detector grace period (§IV-G): a worker whose heartbeat
    /// counter stops advancing for this long is declared lost — its state
    /// flips to `Lost`, every query with a task on it fails with the
    /// retryable `WorkerFailed` code, and placement excludes it. Must be
    /// much larger than the session quanta (executor threads heartbeat
    /// between quanta). `Duration::ZERO` disables the detector.
    pub liveness_timeout: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 4,
            racks: 2,
            threads_per_worker: 2,
            leaf_parallelism: 2,
            node_memory_bytes: 512 << 20,
            reserved_pool_bytes: 128 << 20,
            kill_on_memory_exhausted: false,
            max_concurrent_queries: 100,
            max_queued_queries: 1000,
            output_buffer_bytes: 32 << 20,
            exchange_buffer_bytes: 32 << 20,
            exchange_poll_latency: Duration::ZERO,
            split_batch_size: 64,
            max_queued_splits_per_task: 32,
            max_writer_tasks: 4,
            writer_scale_up_threshold: 0.5,
            cache: MetadataCacheConfig::default(),
            trace_capacity: 4096,
            query_history_capacity: 256,
            liveness_timeout: Duration::from_secs(2),
        }
    }
}

impl ClusterConfig {
    /// A small latency-free config for tests.
    pub fn test() -> ClusterConfig {
        ClusterConfig {
            workers: 2,
            threads_per_worker: 2,
            ..Default::default()
        }
    }

    /// Validate invariants, failing loudly at startup (§VII).
    pub fn validate(&self) -> presto_common::Result<()> {
        let fail = |msg: &str| Err(presto_common::PrestoError::user(msg.to_string()));
        if self.workers == 0 {
            return fail("cluster needs at least one worker");
        }
        if self.racks == 0 {
            return fail("cluster needs at least one rack");
        }
        if self.threads_per_worker == 0 {
            return fail("workers need at least one thread");
        }
        if self.leaf_parallelism == 0 {
            return fail("leaf parallelism must be at least 1");
        }
        if self.max_concurrent_queries == 0 {
            return fail("max_concurrent_queries must be at least 1");
        }
        if self.max_writer_tasks == 0 {
            return fail("max_writer_tasks must be at least 1");
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ClusterConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_configs_fail_loudly() {
        assert!(ClusterConfig {
            workers: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ClusterConfig {
            threads_per_worker: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ClusterConfig {
            max_concurrent_queries: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
