//! The five-level multi-level feedback queue (§IV-F1).
//!
//! "Rather than predict the resources required to complete a new query
//! ahead of time, Presto simply uses a task's aggregate CPU time to
//! classify it into the five levels of a multi-level feedback queue. As
//! tasks accumulate more CPU time, they move to higher levels. Each level
//! is assigned a configurable fraction of the available CPU time."

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of levels.
pub const LEVELS: usize = 5;

/// CPU-time thresholds separating the levels. A task with aggregate CPU
/// below `THRESHOLDS[i]` sits in level `i`. (The paper's production quanta
/// is 1 s; the simulated cluster scales everything down.)
pub const THRESHOLDS: [Duration; LEVELS - 1] = [
    Duration::from_millis(100),
    Duration::from_millis(500),
    Duration::from_millis(2_500),
    Duration::from_millis(12_500),
];

/// Fraction of CPU each level should receive. New/cheap work gets the
/// largest share — "Presto gives higher priority to queries with lowest
/// resource consumption … users expect inexpensive queries to complete
/// quickly."
pub const LEVEL_SHARES: [f64; LEVELS] = [0.40, 0.25, 0.17, 0.11, 0.07];

/// Classify a task by its aggregate CPU time.
pub fn level_of(cpu: Duration) -> usize {
    for (i, t) in THRESHOLDS.iter().enumerate() {
        if cpu < *t {
            return i;
        }
    }
    LEVELS - 1
}

/// A runnable entry. The scheduler stores opaque items tagged with the
/// level they were classified into at enqueue time.
struct Level<T> {
    queue: VecDeque<T>,
    /// CPU nanoseconds charged to this level so far (for deficit-based
    /// level selection).
    used_nanos: u64,
    /// Entries ever enqueued at this level.
    entries: u64,
    /// Quanta dispatched from this level (pops).
    quanta_granted: u64,
}

/// Point-in-time view of one level, for metrics export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelSnapshot {
    /// Entries currently queued at this level.
    pub occupancy: usize,
    /// CPU nanoseconds charged to this level so far.
    pub used_nanos: u64,
    /// Entries ever enqueued at this level.
    pub entries: u64,
    /// Quanta dispatched from this level.
    pub quanta_granted: u64,
}

/// Point-in-time view of the whole queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerSnapshot {
    pub levels: Vec<LevelSnapshot>,
    /// Times a task crossed a CPU threshold into a lower-priority level.
    pub demotions: u64,
    /// Always zero under aggregate-CPU classification (CPU is monotonic,
    /// so a task never moves back down); kept so dashboards watching for
    /// scheduler-policy changes have a stable field.
    pub promotions: u64,
}

/// Deficit-weighted multi-level queue.
pub struct MultilevelQueue<T> {
    levels: Mutex<Vec<Level<T>>>,
    demotions: AtomicU64,
    promotions: AtomicU64,
}

impl<T> Default for MultilevelQueue<T> {
    fn default() -> Self {
        MultilevelQueue {
            levels: Mutex::new(
                (0..LEVELS)
                    .map(|_| Level {
                        queue: VecDeque::new(),
                        used_nanos: 0,
                        entries: 0,
                        quanta_granted: 0,
                    })
                    .collect(),
            ),
            demotions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        }
    }
}

impl<T> MultilevelQueue<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue an entry whose owning task has accumulated `task_cpu`.
    pub fn push(&self, item: T, task_cpu: Duration) {
        let level = level_of(task_cpu);
        let mut levels = self.levels.lock();
        levels[level].entries += 1;
        levels[level].queue.push_back(item);
    }

    /// Dequeue the next entry: among non-empty levels, pick the one whose
    /// consumed CPU is furthest below its target share.
    pub fn pop(&self) -> Option<T> {
        let mut levels = self.levels.lock();
        let total_used: u64 = levels.iter().map(|l| l.used_nanos).sum::<u64>().max(1);
        let mut best: Option<usize> = None;
        let mut best_deficit = f64::MIN;
        for (i, level) in levels.iter().enumerate() {
            if level.queue.is_empty() {
                continue;
            }
            let share = level.used_nanos as f64 / total_used as f64;
            let deficit = LEVEL_SHARES[i] - share;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = Some(i);
            }
        }
        let i = best?;
        levels[i].quanta_granted += 1;
        levels[i].queue.pop_front()
    }

    /// Charge CPU time consumed by an entry that ran from `level`.
    ///
    /// "If an operator exceeds the quanta, the scheduler 'charges' actual
    /// thread time to the task" — the charge lands on the level the work
    /// ran at, preserving fairness even for splits that overshoot.
    pub fn charge(&self, task_cpu_before: Duration, elapsed: Duration) {
        let level = level_of(task_cpu_before);
        // The quantum pushed the task past a threshold: its next enqueue
        // lands at a lower-priority level. That transition is a demotion.
        if level_of(task_cpu_before + elapsed) > level {
            self.demotions.fetch_add(1, Ordering::Relaxed);
        }
        self.levels.lock()[level].used_nanos += elapsed.as_nanos() as u64;
    }

    /// Snapshot occupancy and counters for metrics export.
    pub fn snapshot(&self) -> SchedulerSnapshot {
        let levels = self.levels.lock();
        SchedulerSnapshot {
            levels: levels
                .iter()
                .map(|l| LevelSnapshot {
                    occupancy: l.queue.len(),
                    used_nanos: l.used_nanos,
                    entries: l.entries,
                    quanta_granted: l.quanta_granted,
                })
                .collect(),
            demotions: self.demotions.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
        }
    }

    pub fn len(&self) -> usize {
        self.levels.lock().iter().map(|l| l.queue.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain every queued entry (shutdown).
    pub fn drain(&self) -> Vec<T> {
        let mut levels = self.levels.lock();
        let mut out = Vec::new();
        for l in levels.iter_mut() {
            out.extend(l.queue.drain(..));
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_cpu() {
        assert_eq!(level_of(Duration::ZERO), 0);
        assert_eq!(level_of(Duration::from_millis(99)), 0);
        assert_eq!(level_of(Duration::from_millis(100)), 1);
        assert_eq!(level_of(Duration::from_millis(600)), 2);
        assert_eq!(level_of(Duration::from_secs(60)), LEVELS - 1);
    }

    #[test]
    fn new_work_preferred_over_old() {
        let q: MultilevelQueue<&'static str> = MultilevelQueue::new();
        // An expensive task has consumed lots of level-4 CPU.
        q.push("old", Duration::from_secs(100));
        q.charge(Duration::from_secs(100), Duration::from_secs(10));
        // A fresh task arrives.
        q.push("new", Duration::ZERO);
        // Level 0 has the bigger deficit → "new" runs first.
        assert_eq!(q.pop(), Some("new"));
        assert_eq!(q.pop(), Some("old"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shares_balance_over_time() {
        // Keep both levels permanently occupied (re-push after each pop)
        // and count which level gets scheduled.
        let q: MultilevelQueue<usize> = MultilevelQueue::new();
        q.push(0, Duration::ZERO);
        q.push(4, Duration::from_secs(100));
        let mut level0 = 0;
        let mut level4 = 0;
        for _ in 0..1000 {
            match q.pop() {
                Some(0) => {
                    level0 += 1;
                    q.charge(Duration::ZERO, Duration::from_millis(10));
                    q.push(0, Duration::ZERO);
                }
                Some(4) => {
                    level4 += 1;
                    q.charge(Duration::from_secs(100), Duration::from_millis(10));
                    q.push(4, Duration::from_secs(100));
                }
                _ => unreachable!(),
            }
        }
        // Both levels run, but level 0 gets the larger share (its target
        // fraction is 0.40 vs 0.07).
        assert!(level0 > level4, "level0={level0} level4={level4}");
        assert!(level4 > 0, "high levels are not starved");
    }

    #[test]
    fn snapshot_tracks_occupancy_and_demotions() {
        let q: MultilevelQueue<u32> = MultilevelQueue::new();
        q.push(1, Duration::ZERO);
        let snap = q.snapshot();
        assert_eq!(snap.levels.len(), LEVELS);
        assert_eq!(snap.levels[0].occupancy, 1);
        assert_eq!(snap.levels[0].entries, 1);
        // A quantum that crosses the first CPU threshold is a demotion.
        q.charge(Duration::from_millis(99), Duration::from_millis(5));
        let snap = q.snapshot();
        assert_eq!(snap.demotions, 1);
        assert_eq!(snap.promotions, 0);
        assert!(snap.levels[0].used_nanos > 0);
        let _ = q.pop();
        assert_eq!(q.snapshot().levels[0].quanta_granted, 1);
        assert_eq!(q.snapshot().levels[0].occupancy, 0);
    }

    #[test]
    fn drain_empties() {
        let q: MultilevelQueue<u32> = MultilevelQueue::new();
        q.push(1, Duration::ZERO);
        q.push(2, Duration::from_secs(1));
        assert_eq!(q.drain().len(), 2);
        assert!(q.is_empty());
    }
}
