//! EXPLAIN ANALYZE rendering (§VII): the distributed fragment tree
//! annotated with the per-operator statistics collected while the query
//! ran — rows, bytes, thread time, blocked time by reason, peak memory,
//! and operator-specific counters.

use crate::telemetry::QueryLatencyMetrics;
use presto_common::LatencySummary;
use presto_exec::stats::{fmt_bytes, fmt_count, fmt_duration, PipelineStats, QueryStats};
use presto_planner::PhysicalPlan;
use std::fmt::Write as _;
use std::time::Duration;

/// Render the annotated plan. Fragments print in the same root-first
/// order as [`PhysicalPlan::explain`], each followed by its stage's
/// pipeline and operator statistics. `latency` carries the cluster-wide
/// phase histograms so the header places this query among its peers.
pub fn render_explain_analyze(
    plan: &PhysicalPlan,
    stats: &QueryStats,
    latency: &QueryLatencyMetrics,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Query {}: cpu {}, wall {}",
        stats.query,
        fmt_duration(stats.total_cpu),
        fmt_duration(stats.wall_time),
    );
    let p = &stats.phases;
    let _ = writeln!(
        out,
        "Phases: queued {}, planning {}, execution {} ({} attempt{})",
        fmt_duration(p.queued),
        fmt_duration(p.planning),
        fmt_duration(p.execution),
        p.attempts,
        if p.attempts == 1 { "" } else { "s" },
    );
    // Cluster context: where this query's phases sit against the log-
    // bucketed latency histograms of every query the cluster has run.
    if latency.execution.count > 0 {
        let _ = writeln!(
            out,
            "Cluster latency: queued {}, planning {}, execution {} (p50/p95/p99 over {} queries)",
            fmt_percentiles(&latency.queued),
            fmt_percentiles(&latency.planning),
            fmt_percentiles(&latency.execution),
            latency.execution.count,
        );
    }
    out.push('\n');
    for f in plan.fragments.iter().rev() {
        let _ = writeln!(
            out,
            "Fragment {} [{:?}] output={:?}\n{}",
            f.id,
            f.partitioning,
            f.output,
            f.root.explain()
        );
        if let Some(stage) = stats.stage(f.id) {
            let exchange_in: u64 = stage.tasks.iter().map(|t| t.exchange_bytes_received).sum();
            let _ = writeln!(
                out,
                "  Stage: {} tasks, cpu {}, output {} wire / {} logical, exchange in {}",
                stage.tasks.len(),
                fmt_duration(stage.cpu_time()),
                fmt_bytes(stage.output_wire_bytes()),
                fmt_bytes(stage.output_logical_bytes()),
                fmt_bytes(exchange_in),
            );
            for pipeline in stage.pipelines_merged() {
                render_pipeline(&mut out, &pipeline);
            }
        }
        out.push('\n');
    }
    // Which chains ran fused (and why the rest fell back); the per-stage
    // row counts themselves print as fused_* counters on the
    // FusedPipeline operator lines above.
    out.push_str(&presto_planner::fusion::explain_fused_chains(
        &plan.fused_chains,
    ));
    out
}

fn render_pipeline(out: &mut String, p: &PipelineStats) {
    let _ = writeln!(
        out,
        "  Pipeline {} [{}]: {}/{} drivers reported, cpu {}",
        p.pipeline,
        p.description,
        p.drivers_reported,
        p.driver_count,
        fmt_duration(p.cpu_time)
    );
    for entry in &p.operators {
        let s = &entry.stats;
        let blocked = s.blocked_total();
        let busy = s.cpu.as_nanos() + blocked.as_nanos();
        let blocked_pct = (blocked.as_nanos() * 100).checked_div(busy).unwrap_or(0) as u64;
        let _ = writeln!(
            out,
            "    {}: in {} rows / {}, out {} rows / {}, cpu {}, blocked {} ({blocked_pct}%{}), peak mem {}",
            entry.name,
            fmt_count(s.input_rows),
            fmt_bytes(s.input_bytes),
            fmt_count(s.output_rows),
            fmt_bytes(s.output_bytes),
            fmt_duration(s.cpu),
            fmt_duration(blocked),
            blocked_breakdown(s.blocked_on_input, s.blocked_on_output, s.blocked_on_memory),
            fmt_bytes(s.peak_user_memory_bytes + s.peak_system_memory_bytes),
        );
        if !s.counters.is_empty() {
            let counters: Vec<String> = s
                .counters
                .iter()
                .map(|(name, value)| format!("{name}={}", fmt_count(*value)))
                .collect();
            let _ = writeln!(out, "      {}", counters.join(", "));
        }
    }
}

/// `"1.00ms/2.50ms/4.00ms"` — p50/p95/p99 of one phase histogram.
fn fmt_percentiles(s: &LatencySummary) -> String {
    format!(
        "{}/{}/{}",
        fmt_duration(Duration::from_nanos(s.p50_nanos)),
        fmt_duration(Duration::from_nanos(s.p95_nanos)),
        fmt_duration(Duration::from_nanos(s.p99_nanos)),
    )
}

/// `" input"` / `" output"` / `" memory"` naming the dominant blocked
/// reason, or empty when nothing blocked.
fn blocked_breakdown(input: Duration, output: Duration, memory: Duration) -> &'static str {
    let max = input.max(output).max(memory);
    if max == Duration::ZERO {
        ""
    } else if max == input {
        " input"
    } else if max == output {
        " output"
    } else {
        " memory"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn blocked_breakdown_names_dominant_reason() {
        let ms = Duration::from_millis;
        assert_eq!(blocked_breakdown(ms(0), ms(0), ms(0)), "");
        assert_eq!(blocked_breakdown(ms(5), ms(1), ms(0)), " input");
        assert_eq!(blocked_breakdown(ms(1), ms(5), ms(0)), " output");
        assert_eq!(blocked_breakdown(ms(1), ms(2), ms(5)), " memory");
    }
}
