//! End-to-end cluster tests: SQL in, rows out, across multiple workers.

#![allow(clippy::unwrap_used)]

use presto_cluster::{Cluster, ClusterConfig};
use presto_common::{DataType, Schema, Session, Value};
use presto_connector::CatalogManager;
use presto_connector::ConnectorMetadata;
use presto_connectors::{ChaosConnector, MemoryConnector, RaptorConnector, ShardedSqlConnector};
use std::sync::Arc;

fn test_catalogs() -> (CatalogManager, Arc<MemoryConnector>) {
    let mem = MemoryConnector::new();
    let orders_schema = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("custkey", DataType::Bigint),
        ("totalprice", DataType::Double),
        ("orderstatus", DataType::Varchar),
    ]);
    let orders: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::Bigint(i),
                Value::Bigint(i % 100),
                Value::Double((i % 500) as f64),
                Value::varchar(if i % 2 == 0 { "O" } else { "F" }),
            ]
        })
        .collect();
    // Load in several pages so scans parallelize.
    let pages: Vec<presto_page::Page> = orders
        .chunks(100)
        .map(|chunk| presto_page::Page::from_rows(&orders_schema, chunk))
        .collect();
    mem.load_table("orders", orders_schema, pages);
    let lineitem_schema = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("tax", DataType::Double),
        ("discount", DataType::Double),
    ]);
    let lineitem: Vec<Vec<Value>> = (0..5000)
        .map(|i| {
            vec![
                Value::Bigint(i % 1000),
                Value::Double(0.05),
                Value::Double((i % 10) as f64),
            ]
        })
        .collect();
    let pages: Vec<presto_page::Page> = lineitem
        .chunks(500)
        .map(|chunk| presto_page::Page::from_rows(&lineitem_schema, chunk))
        .collect();
    mem.load_table("lineitem", lineitem_schema, pages);
    mem.analyze("orders").unwrap();
    mem.analyze("lineitem").unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register(
        "memory",
        Arc::clone(&mem) as Arc<dyn presto_connector::Connector>,
    );
    (catalogs, mem)
}

fn cluster() -> (Cluster, Arc<MemoryConnector>) {
    let (catalogs, mem) = test_catalogs();
    (
        Cluster::start(ClusterConfig::test(), catalogs).unwrap(),
        mem,
    )
}

#[test]
fn select_star_returns_all_rows() {
    let (c, _) = cluster();
    let out = c.execute("SELECT * FROM orders").unwrap();
    assert_eq!(out.row_count(), 1000);
    assert_eq!(out.schema.len(), 4);
}

#[test]
fn filter_and_projection() {
    let (c, _) = cluster();
    let out = c
        .execute("SELECT orderkey, totalprice * 2.0 AS doubled FROM orders WHERE orderkey < 5")
        .unwrap();
    let mut rows = out.rows();
    rows.sort();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[3], vec![Value::Bigint(3), Value::Double(6.0)]);
    assert_eq!(out.schema.field(1).name, "doubled");
}

#[test]
fn global_aggregation() {
    let (c, _) = cluster();
    let out = c
        .execute("SELECT COUNT(*), SUM(totalprice), MIN(orderkey), MAX(orderkey) FROM orders")
        .unwrap();
    let rows = out.rows();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Bigint(1000));
    let expected_sum: f64 = (0..1000).map(|i| (i % 500) as f64).sum();
    assert_eq!(rows[0][1], Value::Double(expected_sum));
    assert_eq!(rows[0][2], Value::Bigint(0));
    assert_eq!(rows[0][3], Value::Bigint(999));
}

#[test]
fn group_by_aggregation() {
    let (c, _) = cluster();
    let out = c
        .execute(
            "SELECT orderstatus, COUNT(*) AS n, AVG(totalprice) FROM orders GROUP BY orderstatus",
        )
        .unwrap();
    let mut rows = out.rows();
    rows.sort();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::varchar("F"));
    assert_eq!(rows[0][1], Value::Bigint(500));
    assert_eq!(rows[1][0], Value::varchar("O"));
}

#[test]
fn the_paper_example_query() {
    // §IV-B3's running example (Fig. 2/3), adapted to the test data.
    let (c, _) = cluster();
    let out = c
        .execute(
            "SELECT orders.orderkey, SUM(tax) \
             FROM orders \
             LEFT JOIN lineitem ON orders.orderkey = lineitem.orderkey \
             WHERE discount = 0 \
             GROUP BY orders.orderkey",
        )
        .unwrap();
    // lineitem rows with discount = 0: i % 10 == 0 → 500 rows over orderkeys
    // (i % 1000) ∈ {0, 10, ..., 990}; WHERE filters the join so only
    // matching orders survive the (filtered) left join… with WHERE on the
    // right side the left join degenerates to inner semantics for non-null
    // rows, leaving 500 distinct orderkeys × SUM(tax).
    assert_eq!(out.row_count(), 100);
    for row in out.rows() {
        assert_eq!(row[1], Value::Double(0.05 * 5.0));
    }
}

#[test]
fn inner_join_with_aggregation() {
    let (c, _) = cluster();
    let out = c
        .execute(
            "SELECT o.orderstatus, COUNT(*) AS n \
             FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey \
             GROUP BY o.orderstatus ORDER BY o.orderstatus",
        )
        .unwrap();
    let rows = out.rows();
    assert_eq!(rows.len(), 2);
    // 5000 lineitem rows, each matching exactly one order.
    let total: i64 = rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(total, 5000);
    // ORDER BY respected.
    assert_eq!(rows[0][0], Value::varchar("F"));
}

#[test]
fn order_by_and_limit() {
    let (c, _) = cluster();
    let out = c
        .execute("SELECT orderkey, totalprice FROM orders ORDER BY orderkey DESC LIMIT 3")
        .unwrap();
    let rows = out.rows();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0][0], Value::Bigint(999));
    assert_eq!(rows[1][0], Value::Bigint(998));
    assert_eq!(rows[2][0], Value::Bigint(997));
}

#[test]
fn distinct_and_in_list() {
    let (c, _) = cluster();
    let out = c
        .execute("SELECT DISTINCT orderstatus FROM orders WHERE custkey IN (1, 2, 3)")
        .unwrap();
    let mut rows = out.rows();
    rows.sort();
    assert_eq!(rows.len(), 2);
}

#[test]
fn window_functions() {
    let (c, _) = cluster();
    let out = c
        .execute(
            "SELECT orderkey, orderstatus, \
             row_number() OVER (PARTITION BY orderstatus ORDER BY orderkey) AS rn \
             FROM orders WHERE orderkey < 10",
        )
        .unwrap();
    let mut rows = out.rows();
    rows.sort_by_key(|r| r[0].as_i64());
    assert_eq!(rows.len(), 10);
    // orderkey 0 is the first "O"; orderkey 1 the first "F".
    assert_eq!(rows[0][2], Value::Bigint(1));
    assert_eq!(rows[1][2], Value::Bigint(1));
    assert_eq!(rows[2][2], Value::Bigint(2));
}

#[test]
fn union_all_combines() {
    let (c, _) = cluster();
    let out = c
        .execute(
            "SELECT orderkey FROM orders WHERE orderkey < 3 \
             UNION ALL SELECT orderkey FROM orders WHERE orderkey >= 997",
        )
        .unwrap();
    assert_eq!(out.row_count(), 6);
}

#[test]
fn insert_into_select() {
    let (c, mem) = cluster();
    mem.create_table(
        "orders_copy",
        &Schema::of(&[
            ("orderkey", DataType::Bigint),
            ("custkey", DataType::Bigint),
            ("totalprice", DataType::Double),
            ("orderstatus", DataType::Varchar),
        ]),
    )
    .unwrap();
    let out = c
        .execute("INSERT INTO orders_copy SELECT * FROM orders")
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Bigint(1000));
    assert_eq!(mem.row_count("orders_copy"), 1000);
    // And the copy is queryable.
    let check = c.execute("SELECT COUNT(*) FROM orders_copy").unwrap();
    assert_eq!(check.rows()[0][0], Value::Bigint(1000));
}

#[test]
fn explain_returns_plan_text() {
    let (c, _) = cluster();
    let out = c
        .execute("EXPLAIN SELECT custkey, COUNT(*) FROM orders GROUP BY custkey")
        .unwrap();
    let text = out.rows()[0][0].as_str().unwrap().to_string();
    assert!(text.contains("Fragment"), "{text}");
    assert!(text.contains("Aggregate"), "{text}");
}

#[test]
fn user_errors_are_reported() {
    let (c, _) = cluster();
    for sql in [
        "SELECT nosuch FROM orders",
        "SELECT * FROM missing_table",
        "this is not sql",
        "SELECT orderkey / 0 FROM orders",
    ] {
        let err = c.execute(sql).unwrap_err();
        assert_eq!(err.error.code, presto_common::ErrorCode::User, "{sql}");
    }
    // The cluster still works afterwards.
    assert_eq!(
        c.execute("SELECT 1").unwrap().rows()[0][0],
        Value::Bigint(1)
    );
}

#[test]
fn concurrent_queries() {
    let (c, _) = cluster();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            c.submit(
                format!("SELECT COUNT(*) FROM orders WHERE custkey = {}", i % 5),
                Session::default(),
            )
        })
        .collect();
    for h in handles {
        let out = h.join().unwrap().unwrap();
        assert_eq!(out.rows()[0][0], Value::Bigint(10));
    }
    assert_eq!(c.telemetry().finished_queries(), 8);
}

#[test]
fn transient_connector_failures_recovered_by_retries() {
    let (catalogs, _) = test_catalogs();
    // Wrap memory in chaos: every 5th page-source creation fails.
    let inner = catalogs.catalog("memory").unwrap();
    let chaos = ChaosConnector::new(inner, 2, 0);
    let mut catalogs = CatalogManager::new();
    catalogs.register(
        "memory",
        Arc::clone(&chaos) as Arc<dyn presto_connector::Connector>,
    );
    let c = Cluster::start(ClusterConfig::test(), catalogs).unwrap();
    let out = c.execute("SELECT COUNT(*) FROM orders").unwrap();
    assert_eq!(out.rows()[0][0], Value::Bigint(1000));
    assert!(chaos.injected_failures() > 0, "chaos should have fired");
}

#[test]
fn worker_crash_fails_running_queries() {
    let (catalogs, _) = test_catalogs();
    let c = Cluster::start(ClusterConfig::test(), catalogs).unwrap();
    // A long-running-ish query stream.
    let handle = c.submit(
        "SELECT o1.orderkey FROM orders o1 CROSS JOIN orders o2 WHERE o1.orderkey + o2.orderkey = 100000",
        Session::default(),
    );
    std::thread::sleep(std::time::Duration::from_millis(20));
    c.kill_worker(0);
    // The query either failed with the retryable worker-loss error, or had
    // already raced to completion (acceptable).
    if let Err(e) = handle.join().unwrap() {
        assert!(
            matches!(e.error.code, presto_common::ErrorCode::WorkerFailed),
            "{e}"
        );
        assert!(e.error.is_retryable(), "worker loss must be retryable");
    }
    // New queries on remaining workers still work? (Dead node keeps its
    // tasks failing; the cluster has no resurrection, matching the paper.)
}

#[test]
fn memory_limit_kills_query() {
    let (catalogs, _) = test_catalogs();
    let c = Cluster::start(ClusterConfig::test(), catalogs).unwrap();
    let session = Session {
        query_max_memory_per_node: 1, // absurd: first reservation dies
        ..Session::default()
    };
    let err = c
        .execute_with_session(
            "SELECT custkey, COUNT(*) FROM orders GROUP BY custkey",
            &session,
        )
        .unwrap_err();
    assert_eq!(
        err.error.code,
        presto_common::ErrorCode::InsufficientResources
    );
}

#[test]
fn spill_enables_memory_constrained_aggregation() {
    let (catalogs, _) = test_catalogs();
    let c = Cluster::start(ClusterConfig::test(), catalogs).unwrap();
    let session = Session {
        spill_enabled: true,
        ..Session::default()
    };
    let out = c
        .execute_with_session(
            "SELECT custkey, COUNT(*) FROM orders GROUP BY custkey",
            &session,
        )
        .unwrap();
    assert_eq!(out.row_count(), 100);
}

/// A cluster whose node pools are small enough that any sizeable hash
/// build or aggregation exhausts them, forcing §IV-F2 revocation + spill.
fn tiny_memory_config() -> ClusterConfig {
    ClusterConfig {
        node_memory_bytes: 8 << 10,
        reserved_pool_bytes: 8 << 10,
        ..ClusterConfig::test()
    }
}

fn unique_spill_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("presto-spill-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn spill_dir_file_count(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir).map(|d| d.count()).unwrap_or(0)
}

/// The acceptance scenario: under a memory budget far below the working
/// set, a spilling query produces results identical to an unconstrained
/// run, the snapshot reports the spill totals and the session knobs, and
/// normal completion leaves zero run files in the spill directory.
#[test]
fn spilling_query_matches_unconstrained_run_and_cleans_up() {
    let dir = unique_spill_dir("agg-join");
    let sql = "SELECT o.orderkey, COUNT(*), SUM(l.tax) FROM orders o \
               JOIN lineitem l ON o.orderkey = l.orderkey \
               GROUP BY o.orderkey";
    let (catalogs, _) = test_catalogs();
    let c = Cluster::start(tiny_memory_config(), catalogs).unwrap();
    let session = Session {
        spill_enabled: true,
        spill_dir: Some(dir.clone()),
        spill_max_bytes: 64 << 20,
        ..Session::default()
    };
    let constrained = c.execute_with_session(sql, &session).unwrap();
    let (reference_catalogs, _) = test_catalogs();
    let reference = Cluster::start(ClusterConfig::test(), reference_catalogs)
        .unwrap()
        .execute(sql)
        .unwrap();
    let mut a = constrained.rows();
    let mut b = reference.rows();
    a.sort();
    b.sort();
    assert_eq!(a, b, "spilled results must match the unconstrained run");

    let snap = c.metrics_snapshot();
    assert!(snap.spill.spilled_bytes > 0, "query should have spilled");
    assert!(snap.spill.spill_events > 0);
    assert!(snap.spill.queries_spilled >= 1);
    // Satellite: the session's spill knobs echo through the snapshot.
    assert_eq!(snap.spill.spill_dir, dir.display().to_string());
    assert_eq!(snap.spill.spill_max_bytes, 64 << 20);
    // Revocation-before-promotion leaves its audit trail on the pools.
    let requests: i64 = snap.workers.iter().map(|w| w.memory.revocation_requests).sum();
    assert!(requests >= 0);
    // Normal completion re-ingested or deleted every run file.
    assert_eq!(spill_dir_file_count(&dir), 0, "no run files may remain");
    std::fs::remove_dir_all(&dir).ok();
}

/// Chaos: every spill write fails transiently — the query must surface a
/// retryable error (§IV-G), not hang or corrupt results.
#[test]
fn spill_write_failure_surfaces_retryable_error() {
    let dir = unique_spill_dir("chaos-write");
    let (catalogs, _) = test_catalogs();
    let c = Cluster::start(tiny_memory_config(), catalogs).unwrap();
    let session = Session {
        spill_enabled: true,
        spill_dir: Some(dir.clone()),
        spill_chaos_write_error_after: Some(0),
        ..Session::default()
    };
    let err = c
        .execute_with_session(
            "SELECT orderkey, COUNT(*), SUM(totalprice) FROM orders GROUP BY orderkey",
            &session,
        )
        .unwrap_err();
    assert!(
        err.error.is_retryable(),
        "spill write failure should be retryable, got {:?}",
        err.error
    );
    assert_eq!(spill_dir_file_count(&dir), 0, "failed query must clean up");
    std::fs::remove_dir_all(&dir).ok();
}

/// Chaos: the spill "disk" fills after a few KB — same retryable surface.
#[test]
fn spill_disk_full_surfaces_retryable_error() {
    let dir = unique_spill_dir("chaos-full");
    let (catalogs, _) = test_catalogs();
    let c = Cluster::start(tiny_memory_config(), catalogs).unwrap();
    let session = Session {
        spill_enabled: true,
        spill_dir: Some(dir.clone()),
        spill_chaos_disk_capacity: Some(64),
        ..Session::default()
    };
    let err = c
        .execute_with_session(
            "SELECT orderkey, COUNT(*), SUM(totalprice) FROM orders GROUP BY orderkey",
            &session,
        )
        .unwrap_err();
    assert!(
        err.error.is_retryable(),
        "disk-full should be retryable, got {:?}",
        err.error
    );
    assert_eq!(spill_dir_file_count(&dir), 0, "failed query must clean up");
    std::fs::remove_dir_all(&dir).ok();
}

/// Aborting a spilling query leaves zero spill files on disk (the PR 5
/// teardown cascade calls `SpillManager::remove_all` on task abort).
#[test]
fn cancelled_spilling_query_leaves_no_spill_files() {
    let dir = unique_spill_dir("cancel");
    let (catalogs, _) = test_catalogs();
    let c = Cluster::start(tiny_memory_config(), catalogs).unwrap();
    let session = Session {
        spill_enabled: true,
        spill_dir: Some(dir.clone()),
        ..Session::default()
    };
    let sql = "SELECT o.orderkey, COUNT(*), SUM(l.tax) FROM orders o \
               JOIN lineitem l ON o.orderkey = l.orderkey \
               GROUP BY o.orderkey";
    let handle = c.submit(sql, session);
    // Wait until the query registers, let it get into the memory-pressured
    // (spilling) phase, then kill it mid-flight. Whether the cancel lands
    // before, during, or after a spill, no run file may survive the
    // teardown cascade.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    let query = loop {
        if let Some(q) = c.active_queries().first().copied() {
            break q;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "query never became active"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    std::thread::sleep(std::time::Duration::from_millis(30));
    c.cancel_query(query);
    let _ = handle.join();
    // Teardown is asynchronous with respect to cancel; give the abort
    // cascade a bounded moment to delete the files.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while spill_dir_file_count(&dir) > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(
        spill_dir_file_count(&dir),
        0,
        "aborting a spilling query must leave zero spill files"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn phased_scheduling_produces_same_results() {
    let (c, _) = cluster();
    let mut session = Session::default();
    session.scheduling_policy = presto_common::session::SchedulingPolicy::Phased;
    let phased = c
        .execute_with_session(
            "SELECT o.orderstatus, COUNT(*) FROM orders o JOIN lineitem l \
             ON o.orderkey = l.orderkey GROUP BY o.orderstatus",
            &session,
        )
        .unwrap();
    let allatonce = c
        .execute(
            "SELECT o.orderstatus, COUNT(*) FROM orders o JOIN lineitem l \
             ON o.orderkey = l.orderkey GROUP BY o.orderstatus",
        )
        .unwrap();
    let mut a = phased.rows();
    let mut b = allatonce.rows();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn raptor_co_located_join_end_to_end() {
    let dir = std::env::temp_dir().join(format!("raptor-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let nodes: Vec<presto_common::NodeId> = (0..2).map(presto_common::NodeId).collect();
    let raptor = RaptorConnector::new(&dir, nodes).unwrap();
    let schema = Schema::of(&[("uid", DataType::Bigint), ("v", DataType::Bigint)]);
    raptor
        .create_bucketed_table("exposure", &schema, vec![0], 4)
        .unwrap();
    raptor
        .create_bucketed_table("conversion", &schema, vec![0], 4)
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..200)
        .map(|i| vec![Value::Bigint(i % 50), Value::Bigint(i)])
        .collect();
    raptor
        .load_table("exposure", &[presto_page::Page::from_rows(&schema, &rows)])
        .unwrap();
    raptor
        .load_table(
            "conversion",
            &[presto_page::Page::from_rows(&schema, &rows)],
        )
        .unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register("raptor", raptor as Arc<dyn presto_connector::Connector>);
    let c = Cluster::start(ClusterConfig::test(), catalogs).unwrap();
    let session = Session::for_catalog("raptor");
    let out = c
        .execute_with_session(
            "SELECT COUNT(*) FROM exposure e JOIN conversion c ON e.uid = c.uid",
            &session,
        )
        .unwrap();
    // Each uid occurs 4 times in each table → 50 uids × 16 pairs.
    assert_eq!(out.rows()[0][0], Value::Bigint(800));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_sql_index_join_end_to_end() {
    let sharded = ShardedSqlConnector::new(4);
    let ads_schema = Schema::of(&[("ad_id", DataType::Bigint), ("clicks", DataType::Bigint)]);
    let rows: Vec<Vec<Value>> = (0..10_000)
        .map(|i| vec![Value::Bigint(i % 100), Value::Bigint(1)])
        .collect();
    sharded.load_table("ads", ads_schema, 0, &rows);
    let (catalogs, mem) = test_catalogs();
    let mut catalogs = catalogs;
    catalogs.register("sharded", sharded as Arc<dyn presto_connector::Connector>);
    mem.load_rows(
        "targets",
        Schema::of(&[("id", DataType::Bigint)]),
        &[vec![Value::Bigint(7)], vec![Value::Bigint(9)]],
    );
    mem.analyze("targets").unwrap();
    let c = Cluster::start(ClusterConfig::test(), catalogs).unwrap();
    let out = c
        .execute("SELECT SUM(a.clicks) FROM targets t JOIN sharded.ads a ON t.id = a.ad_id")
        .unwrap();
    // Each ad_id occurs 100 times with clicks = 1.
    assert_eq!(out.rows()[0][0], Value::Bigint(200));
}

#[test]
fn queue_policy_limits_concurrency() {
    let (catalogs, _) = test_catalogs();
    let config = ClusterConfig {
        max_concurrent_queries: 1,
        ..ClusterConfig::test()
    };
    let c = Cluster::start(config, catalogs).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| c.submit("SELECT COUNT(*) FROM orders", Session::default()))
        .collect();
    for h in handles {
        assert!(h.join().unwrap().is_ok());
    }
    // With concurrency 1, at least some queries queued before running.
    let records = c.telemetry().all_query_records();
    let queued: Vec<_> = records.iter().filter_map(|(_, r)| r.queue_time()).collect();
    assert!(queued
        .iter()
        .any(|q| *q > std::time::Duration::from_micros(50)));
}

#[test]
fn case_cast_and_functions_end_to_end() {
    let (c, _) = cluster();
    let out = c
        .execute(
            "SELECT CASE WHEN orderstatus = 'O' THEN upper('open') ELSE 'final' END AS label, \
             CAST(orderkey AS varchar) AS key_text, \
             abs(totalprice - 100.0) AS dist \
             FROM orders WHERE orderkey = 2",
        )
        .unwrap();
    let rows = out.rows();
    assert_eq!(rows[0][0], Value::varchar("OPEN"));
    assert_eq!(rows[0][1], Value::varchar("2"));
    assert_eq!(rows[0][2], Value::Double(98.0));
}

#[test]
fn having_filters_groups() {
    let (c, _) = cluster();
    let out = c
        .execute("SELECT custkey, COUNT(*) AS n FROM orders GROUP BY custkey HAVING COUNT(*) >= 10")
        .unwrap();
    assert_eq!(out.row_count(), 100, "every custkey has exactly 10 orders");
    let out = c
        .execute("SELECT custkey, COUNT(*) AS n FROM orders GROUP BY custkey HAVING COUNT(*) > 10")
        .unwrap();
    assert_eq!(out.row_count(), 0);
}

/// Dynamic filtering end-to-end (tentpole): a selective dimension build
/// side narrows a Hive fact scan. The filtered run must return exactly the
/// rows of the unfiltered run while pruning work at the split, stripe, or
/// row level, and the filter publication must reach cluster telemetry.
#[test]
fn dynamic_filtering_prunes_and_matches_baseline() {
    use presto_connectors::HiveConnector;
    let dir = std::env::temp_dir().join(format!("presto-df-cluster-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let hive = HiveConnector::new(&dir).unwrap();
    let fact_schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)]);
    // Clustered ascending on k so stripe min/max summaries are narrow.
    let fact: Vec<Vec<Value>> = (0..20_000i64)
        .map(|i| vec![Value::Bigint(i / 4), Value::Bigint(i)])
        .collect();
    let pages: Vec<presto_page::Page> = fact
        .chunks(1000)
        .map(|c| presto_page::Page::from_rows(&fact_schema, c))
        .collect();
    hive.load_table("fact", fact_schema, &pages).unwrap();
    let dim_schema = Schema::of(&[("k", DataType::Bigint)]);
    let dim: Vec<Vec<Value>> = (4900..5000i64).map(|k| vec![Value::Bigint(k)]).collect();
    hive.load_table(
        "dim",
        dim_schema.clone(),
        &[presto_page::Page::from_rows(&dim_schema, &dim)],
    )
    .unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register(
        "hive",
        Arc::clone(&hive) as Arc<dyn presto_connector::Connector>,
    );
    let c = Cluster::start(ClusterConfig::test(), catalogs).unwrap();
    let sql = "SELECT f.v FROM fact f JOIN dim d ON f.k = d.k";
    let mut off = Session::for_catalog("hive");
    off.dynamic_filtering = false;
    let mut on = Session::for_catalog("hive");
    on.dynamic_filter_wait = std::time::Duration::from_secs(5);
    let baseline = c.execute_with_session(sql, &off).unwrap();
    let before = c.telemetry().dynamic_filter_metrics();
    assert_eq!(before.filters_published, 0, "disabled run publishes nothing");
    let filtered = c.execute_with_session(sql, &on).unwrap();
    let mut expect = baseline.rows();
    let mut got = filtered.rows();
    expect.sort();
    got.sort();
    assert_eq!(got.len(), 400, "100 dim keys x 4 fact rows each");
    assert_eq!(got, expect, "dynamic filtering must not change results");
    let m = c.telemetry().dynamic_filter_metrics();
    assert!(m.filters_published >= 1, "join build published a filter");
    assert!(
        m.splits_pruned + m.stripes_pruned + m.rows_filtered > 0,
        "filter pruned at some level: {m:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
