//! SQL dialect feature coverage, end to end: temporal functions, LIKE,
//! BETWEEN, CASE/CAST, ordinals, aliases, nested derived tables, and
//! window aggregates — everything §IV-A promises, executed distributed.

#![allow(clippy::unwrap_used)]

use presto_cluster::{Cluster, ClusterConfig};
use presto_common::time::days_from_civil;
use presto_common::{DataType, Schema, Value};
use presto_connector::CatalogManager;
use presto_connectors::MemoryConnector;
use std::sync::Arc;

fn cluster() -> Cluster {
    let mem = MemoryConnector::new();
    let schema = Schema::of(&[
        ("id", DataType::Bigint),
        ("name", DataType::Varchar),
        ("amount", DataType::Double),
        ("created", DataType::Date),
    ]);
    let rows: Vec<Vec<Value>> = (0..100)
        .map(|i| {
            vec![
                Value::Bigint(i),
                Value::varchar(format!(
                    "{}-{:03}",
                    if i % 3 == 0 { "alpha" } else { "beta" },
                    i
                )),
                Value::Double(i as f64 * 1.5),
                Value::Date(days_from_civil(1995, 1, 1) + i * 10),
            ]
        })
        .collect();
    mem.load_rows("items", schema, &rows);
    mem.analyze("items").unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn presto_connector::Connector>);
    Cluster::start(ClusterConfig::test(), catalogs).unwrap()
}

#[test]
fn date_literals_and_temporal_functions() {
    let c = cluster();
    let out = c
        .execute(
            "SELECT year(created) AS y, COUNT(*) FROM items \
             WHERE created >= DATE '1995-06-01' AND created < DATE '1996-06-01' \
             GROUP BY year(created) ORDER BY y",
        )
        .unwrap();
    let rows = out.rows();
    assert!(!rows.is_empty());
    // The range spans mid-1995 to mid-1996.
    assert_eq!(rows[0][0], Value::Bigint(1995));
    assert_eq!(rows[rows.len() - 1][0], Value::Bigint(1996));
    let total: i64 = rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
    // Dates step 10 days: exactly 365/10 ≈ 36 or 37 rows in one year.
    assert!((35..=38).contains(&total), "{total}");
}

#[test]
fn like_and_string_functions() {
    let c = cluster();
    let out = c
        .execute(
            "SELECT upper(substr(name, 1, 5)) AS prefix, COUNT(*) AS n \
             FROM items WHERE name LIKE 'alpha%' GROUP BY upper(substr(name, 1, 5))",
        )
        .unwrap();
    let rows = out.rows();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::varchar("ALPHA"));
    assert_eq!(rows[0][1], Value::Bigint(34)); // i % 3 == 0 for 0..100
    let none = c
        .execute("SELECT COUNT(*) FROM items WHERE name LIKE '%gamma%'")
        .unwrap();
    assert_eq!(none.rows()[0][0], Value::Bigint(0));
}

#[test]
fn between_and_not_variants() {
    let c = cluster();
    let inside = c
        .execute("SELECT COUNT(*) FROM items WHERE id BETWEEN 10 AND 19")
        .unwrap();
    assert_eq!(inside.rows()[0][0], Value::Bigint(10));
    let outside = c
        .execute("SELECT COUNT(*) FROM items WHERE id NOT BETWEEN 10 AND 19")
        .unwrap();
    assert_eq!(outside.rows()[0][0], Value::Bigint(90));
    let not_in = c
        .execute("SELECT COUNT(*) FROM items WHERE id NOT IN (1, 2, 3)")
        .unwrap();
    assert_eq!(not_in.rows()[0][0], Value::Bigint(97));
}

#[test]
fn case_cast_coalesce() {
    let c = cluster();
    let out = c
        .execute(
            "SELECT CASE WHEN amount > 100.0 THEN 'big' WHEN amount > 50.0 THEN 'mid' \
                    ELSE 'small' END AS bucket, \
                    COUNT(*), SUM(CAST(id AS double)) \
             FROM items GROUP BY 1 ORDER BY 1",
        )
        .unwrap();
    let rows = out.rows();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0][0], Value::varchar("big"));
    assert_eq!(rows[1][0], Value::varchar("mid"));
    assert_eq!(rows[2][0], Value::varchar("small"));
    let coalesce = c
        .execute("SELECT coalesce(NULL, 7) FROM items WHERE id = 0")
        .unwrap();
    assert_eq!(coalesce.rows()[0][0], Value::Bigint(7));
}

#[test]
fn nested_derived_tables_with_window() {
    let c = cluster();
    let out = c
        .execute(
            "SELECT bucket, cnt, rank() OVER (ORDER BY cnt DESC) AS r FROM (\
                SELECT id % 4 AS bucket, COUNT(*) AS cnt FROM items GROUP BY id % 4\
             ) agg ORDER BY r, bucket",
        )
        .unwrap();
    let rows = out.rows();
    assert_eq!(rows.len(), 4);
    // All buckets have 25 items → every rank ties at 1.
    assert!(rows.iter().all(|r| r[2] == Value::Bigint(1)), "{rows:?}");
}

#[test]
fn order_by_ordinals_and_aliases() {
    let c = cluster();
    let by_ordinal = c
        .execute("SELECT name, amount FROM items ORDER BY 2 DESC LIMIT 1")
        .unwrap();
    let by_alias = c
        .execute("SELECT name, amount AS a FROM items ORDER BY a DESC LIMIT 1")
        .unwrap();
    assert_eq!(by_ordinal.rows()[0][0], by_alias.rows()[0][0]);
    assert_eq!(by_ordinal.rows()[0][1], Value::Double(99.0 * 1.5));
}

#[test]
fn aggregate_function_breadth() {
    let c = cluster();
    let out = c
        .execute(
            "SELECT COUNT(*), AVG(amount), stddev_pop(amount), var_pop(amount), \
             MIN(created), MAX(name) FROM items",
        )
        .unwrap();
    let rows = out.rows();
    assert_eq!(rows[0][0], Value::Bigint(100));
    // avg of 0..100 × 1.5 = 74.25
    assert!(matches!(rows[0][1], Value::Double(v) if (v - 74.25).abs() < 1e-9));
    // stddev_pop² = var_pop
    let (sd, var) = match (&rows[0][2], &rows[0][3]) {
        (Value::Double(sd), Value::Double(var)) => (*sd, *var),
        other => panic!("{other:?}"),
    };
    assert!((sd * sd - var).abs() < 1e-6);
    assert_eq!(rows[0][4], Value::Date(days_from_civil(1995, 1, 1)));
}

#[test]
fn division_by_zero_guarded_by_short_circuit() {
    let c = cluster();
    // The guard must protect the division (compiled short-circuit, §V-B).
    let out = c
        .execute("SELECT COUNT(*) FROM items WHERE id <> 0 AND 1000 / id > 50")
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Bigint(19)); // id in 1..=19
                                                     // Unguarded division by zero is a user error.
    let err = c.execute("SELECT 1 / (id - id) FROM items").unwrap_err();
    assert_eq!(err.error.code, presto_common::ErrorCode::User);
}

#[test]
fn right_join_normalizes_to_left() {
    let c = cluster();
    // items with id < 3 right-joined against all ids 0..5 from a derived
    // table — unmatched right rows must survive null-padded.
    let out = c
        .execute(
            "SELECT small.id, big.id FROM \
             (SELECT id FROM items WHERE id < 3) small \
             RIGHT JOIN (SELECT id FROM items WHERE id < 5) big \
             ON small.id = big.id \
             ORDER BY 2",
        )
        .unwrap();
    let rows = out.rows();
    assert_eq!(rows.len(), 5);
    // Matched rows keep both sides; unmatched (3, 4) have NULL left side.
    assert_eq!(rows[2], vec![Value::Bigint(2), Value::Bigint(2)]);
    assert_eq!(rows[3], vec![Value::Null, Value::Bigint(3)]);
    assert_eq!(rows[4], vec![Value::Null, Value::Bigint(4)]);
}
