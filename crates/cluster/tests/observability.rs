//! Observability end-to-end tests (§VII): EXPLAIN ANALYZE, runtime
//! metrics snapshots, and the Chrome trace timeline.

#![allow(clippy::unwrap_used)]

use presto_cluster::metrics::{CacheLayerMetrics, ClusterSnapshot, QueryGauges, ShuffleMetrics, WorkerMetrics};
use presto_cluster::memory::PoolSnapshot;
use presto_cluster::mlfq::{LevelSnapshot, SchedulerSnapshot};
use presto_cluster::{Cluster, ClusterConfig, DynamicFilterMetrics, FusionMetrics, QueryLatencyMetrics, SpillMetrics};
use presto_common::json::Json;
use presto_common::{DataType, LatencySummary, Schema, Session, Value};
use presto_connector::CatalogManager;
use presto_connectors::MemoryConnector;
use proptest::prelude::*;
use std::sync::Arc;

fn cluster() -> Cluster {
    let mem = MemoryConnector::new();
    let orders_schema = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("custkey", DataType::Bigint),
        ("totalprice", DataType::Double),
    ]);
    let orders: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::Bigint(i),
                Value::Bigint(i % 100),
                Value::Double((i % 500) as f64),
            ]
        })
        .collect();
    let pages: Vec<presto_page::Page> = orders
        .chunks(100)
        .map(|chunk| presto_page::Page::from_rows(&orders_schema, chunk))
        .collect();
    mem.load_table("orders", orders_schema, pages);
    let lineitem_schema = Schema::of(&[("orderkey", DataType::Bigint), ("tax", DataType::Double)]);
    let lineitem: Vec<Vec<Value>> = (0..5000)
        .map(|i| vec![Value::Bigint(i % 1000), Value::Double(0.05)])
        .collect();
    let pages: Vec<presto_page::Page> = lineitem
        .chunks(500)
        .map(|chunk| presto_page::Page::from_rows(&lineitem_schema, chunk))
        .collect();
    mem.load_table("lineitem", lineitem_schema, pages);
    mem.analyze("orders").unwrap();
    mem.analyze("lineitem").unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register(
        "memory",
        Arc::clone(&mem) as Arc<dyn presto_connector::Connector>,
    );
    Cluster::start(ClusterConfig::test(), catalogs).unwrap()
}

#[test]
fn explain_analyze_join_agg_has_populated_stats() {
    let c = cluster();
    let out = c
        .execute(
            "EXPLAIN ANALYZE SELECT o.custkey, COUNT(*), SUM(l.tax) \
             FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey \
             GROUP BY o.custkey",
        )
        .unwrap();
    let text = out.rows()[0][0].as_str().unwrap().to_string();
    // The fragment tree is annotated with stage and operator stats.
    assert!(text.contains("Query"), "{text}");
    assert!(text.contains("Fragment"), "{text}");
    assert!(text.contains("Stage:"), "{text}");
    assert!(text.contains("Pipeline"), "{text}");
    for op in ["ScanFilterProject", "HashBuilder", "LookupJoin", "Aggregate"] {
        assert!(text.contains(op), "missing operator {op} in:\n{text}");
    }
    // Row counts reconcile with the data: the scans emit exactly the
    // loaded table cardinalities, and the probe side flows them into the
    // join.
    assert!(text.contains("out 5000 rows"), "{text}");
    assert!(text.contains("out 1000 rows"), "{text}");
    // CPU was measured somewhere (the driver timing hooks ran).
    assert!(!text.contains("cpu 0ns, wall"), "{text}");
    // Blocked/memory columns render.
    assert!(text.contains("blocked"), "{text}");
    assert!(text.contains("peak mem"), "{text}");
}

#[test]
fn explain_analyze_row_counts_reconcile_across_exchange() {
    let c = cluster();
    let out = c
        .execute("EXPLAIN ANALYZE SELECT custkey, COUNT(*) FROM orders GROUP BY custkey")
        .unwrap();
    let text = out.rows()[0][0].as_str().unwrap().to_string();
    // Partial aggregation emits one row per (driver, group) ≥ 100 groups;
    // the final aggregation outputs exactly the 100 groups.
    assert!(text.contains("Aggregate"), "{text}");
    assert!(text.contains("out 100 rows"), "{text}");
    // Operator-specific counters surface (group-by hash table counters).
    assert!(text.contains("="), "{text}");
}

/// Acceptance: EXPLAIN ANALYZE of a fusable scan→filter→agg query renders
/// the fused chain with per-stage row counts, and the cluster snapshot
/// accumulates the fusion totals after the query finishes.
#[test]
fn explain_analyze_fused_chain_shows_per_stage_rows() {
    let c = cluster();
    let out = c
        .execute("EXPLAIN ANALYZE SELECT SUM(totalprice) FROM orders WHERE custkey < 10")
        .unwrap();
    let text = out.rows()[0][0].as_str().unwrap().to_string();
    // The chain compiled into the fused operator, not discrete ones.
    assert!(text.contains("FusedPipeline"), "{text}");
    // Per-stage row counters: 1000 rows scanned, custkey < 10 keeps
    // i % 100 < 10 → exactly 100 rows into the partial aggregation.
    assert!(text.contains("fused_scan_rows=1000"), "{text}");
    assert!(text.contains("fused_filter_rows=100"), "{text}");
    assert!(text.contains("fused_agg_rows=100"), "{text}");
    assert!(text.contains("fused_stages="), "{text}");
    // The plan-level fusion summary renders the chain and its verdict.
    assert!(text.contains("Fused pipelines:"), "{text}");
    assert!(text.contains("[fused]"), "{text}");
    // The per-query totals rolled into the cluster-lifetime counters.
    let fusion = c.metrics_snapshot().fusion;
    assert!(fusion.pipelines >= 1, "{fusion:?}");
    assert_eq!(fusion.scan_rows, 1000, "{fusion:?}");
    assert_eq!(fusion.filter_rows, 100, "{fusion:?}");
}

/// Disabling the session knob falls back to discrete operators with the
/// same answer.
#[test]
fn fusion_knob_off_runs_discrete_operators() {
    let c = cluster();
    let sql = "SELECT SUM(totalprice) FROM orders WHERE custkey < 10";
    let fused = c.execute(sql).unwrap();
    let mut session = Session::default();
    session.pipeline_fusion = false;
    let unfused = c.execute_with_session(sql, &session).unwrap();
    assert_eq!(fused.rows(), unfused.rows());
    let text = c
        .execute_with_session(
            "EXPLAIN ANALYZE SELECT SUM(totalprice) FROM orders WHERE custkey < 10",
            &session,
        )
        .unwrap()
        .rows()[0][0]
        .as_str()
        .unwrap()
        .to_string();
    assert!(!text.contains("FusedPipeline"), "{text}");
    assert!(text.contains("ScanFilterProject"), "{text}");
}

#[test]
fn metrics_snapshot_changes_across_mid_query_samples() {
    let c = cluster();
    let handle = c.submit(
        "SELECT COUNT(*) FROM orders o1 CROSS JOIN orders o2 \
         WHERE o1.orderkey + o2.orderkey > 0",
        Session::default(),
    );
    let snap1 = c.metrics_snapshot();
    std::thread::sleep(std::time::Duration::from_millis(30));
    let snap2 = c.metrics_snapshot();
    assert!(snap2.uptime_nanos > snap1.uptime_nanos);
    assert_ne!(snap1, snap2);
    let busy = |s: &ClusterSnapshot| s.workers.iter().map(|w| w.busy_nanos).sum::<u64>();
    assert!(busy(&snap2) >= busy(&snap1));
    assert!(snap2.queries.submitted >= 1);
    handle.join().unwrap().unwrap();
    // After completion the gauges settle and the invariant holds.
    let end = c.metrics_snapshot();
    assert_eq!(end.queries.queued, 0);
    assert_eq!(end.queries.running, 0);
    assert_eq!(
        end.queries.finished + end.queries.failed,
        end.queries.submitted
    );
    assert!(
        busy(&end) > 0,
        "executors accumulated busy time running the query"
    );
    assert!(
        end.workers.iter().any(|w| w
            .scheduler
            .levels
            .iter()
            .any(|l| l.entries > 0 && l.quanta_granted > 0)),
        "the MLFQ dispatched quanta"
    );
}

#[test]
fn collected_snapshot_round_trips_through_json() {
    let c = cluster();
    c.execute("SELECT COUNT(*) FROM orders").unwrap();
    let snap = c.metrics_snapshot();
    let text = snap.to_json().to_string();
    let back = ClusterSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn chrome_trace_export_is_structurally_valid() {
    let c = cluster();
    c.execute("SELECT custkey, COUNT(*) FROM orders GROUP BY custkey")
        .unwrap();
    let trace = c.trace().expect("tracing on by default in test config");
    assert!(trace.recorded() > 0, "queries emit trace events");
    let json = Json::parse(&trace.to_chrome_trace()).unwrap();
    let events = json.field_arr("traceEvents").unwrap();
    assert!(!events.is_empty());
    let mut saw_span = false;
    for e in events {
        let ph = e.field_str("ph").unwrap();
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        assert!(!e.field_str("name").unwrap().is_empty());
        assert!(e.field_f64("ts").unwrap() >= 0.0);
        e.field_u64("pid").unwrap();
        e.field_u64("tid").unwrap();
        if ph == "X" {
            saw_span = true;
            e.field_f64("dur").unwrap();
        }
    }
    assert!(saw_span, "driver quanta export as complete-span events");
}

#[test]
fn tracing_can_be_disabled() {
    let mem = MemoryConnector::new();
    let schema = Schema::of(&[("x", DataType::Bigint)]);
    mem.load_table(
        "t",
        schema.clone(),
        vec![presto_page::Page::from_rows(
            &schema,
            &[vec![Value::Bigint(1)]],
        )],
    );
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn presto_connector::Connector>);
    let config = ClusterConfig {
        trace_capacity: 0,
        ..ClusterConfig::test()
    };
    let c = Cluster::start(config, catalogs).unwrap();
    c.execute("SELECT * FROM t").unwrap();
    assert!(c.trace().is_none());
    assert_eq!(c.metrics_snapshot().trace_events, 0);
}

#[test]
fn failed_queries_settle_gauges_and_tag_errors() {
    let c = cluster();
    assert!(c.execute("SELECT nosuch FROM orders").is_err());
    assert!(c.execute("not even sql").is_err());
    let snap = c.metrics_snapshot();
    assert_eq!(snap.queries.queued, 0);
    assert_eq!(snap.queries.running, 0);
    assert_eq!(snap.queries.failed, 2);
    assert_eq!(snap.queries.submitted, 2);
    // Every failure carries an error-code tag on its record.
    for (_, record) in c.telemetry().all_query_records() {
        assert!(record.failed);
        assert!(record.error_tag.is_some());
    }
}

/// Satellite: a *collected* (not hand-built) snapshot with populated
/// `dynamic_filters` and `fusion` sections must round-trip through JSON,
/// and the latency histograms must carry every finished query.
#[test]
fn populated_snapshot_round_trips_with_df_fusion_and_latency() {
    let c = cluster();
    // Fusable scan→filter→agg query populates the fusion totals.
    c.execute("SELECT SUM(totalprice) FROM orders WHERE custkey < 10")
        .unwrap();
    // Selective join publishes a dynamic filter from the build side.
    let mut session = Session::default();
    session.dynamic_filter_wait = std::time::Duration::from_secs(5);
    c.execute_with_session(
        "SELECT COUNT(*) FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey \
         WHERE o.custkey < 3",
        &session,
    )
    .unwrap();
    let snap = c.metrics_snapshot();
    assert!(snap.fusion.pipelines >= 1, "{:?}", snap.fusion);
    assert!(snap.fusion.scan_rows >= 1000, "{:?}", snap.fusion);
    assert!(
        snap.dynamic_filters.filters_published >= 1,
        "{:?}",
        snap.dynamic_filters
    );
    // Phase histograms saw both queries.
    assert_eq!(snap.latency.execution.count, 2, "{:?}", snap.latency);
    assert!(snap.latency.execution.p50_nanos > 0);
    assert!(snap.latency.execution.p99_nanos >= snap.latency.execution.p50_nanos);
    let text = snap.to_json().to_string();
    let back = ClusterSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, snap);
}

/// Satellite: scraping `ClusterSnapshot` while 8 threads run queries must
/// never panic, wrap a gauge, or produce a snapshot that fails to
/// serialize — the §VII "counters are always on" property under load.
#[test]
fn concurrent_scrape_under_load_is_consistent() {
    let c = cluster();
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut runners = Vec::new();
        for i in 0..8 {
            let c = &c;
            runners.push(s.spawn(move || {
                for round in 0..6 {
                    let sql = if (i + round) % 2 == 0 {
                        "SELECT custkey, COUNT(*) FROM orders GROUP BY custkey".to_string()
                    } else {
                        format!("SELECT SUM(totalprice) FROM orders WHERE custkey < {}", 10 + i)
                    };
                    c.execute(&sql).unwrap();
                }
            }));
        }
        // Scrape continuously while the runners churn.
        let mut scrapes = 0u64;
        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
            let snap = c.metrics_snapshot();
            let q = &snap.queries;
            assert!(q.queued < u64::MAX / 2, "queued gauge underflowed");
            assert!(q.running < u64::MAX / 2, "running gauge underflowed");
            assert!(q.queued + q.running + q.finished + q.failed <= q.submitted);
            let text = snap.to_json().to_string();
            let back = ClusterSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, snap);
            scrapes += 1;
            if runners.iter().all(|r| r.is_finished()) {
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        }
        for r in runners {
            r.join().unwrap();
        }
        assert!(scrapes > 0);
    });
    // Settled: every query accounted for, histograms saw all 48.
    let end = c.metrics_snapshot();
    assert_eq!(end.queries.finished, 48);
    assert_eq!(end.latency.execution.count, 48);
    assert_eq!(
        end.queries.finished + end.queries.failed,
        end.queries.submitted
    );
}

// --- proptest: serialization round-trip over arbitrary snapshots ---

fn counter() -> impl Strategy<Value = u64> {
    // JSON integers are i64; collected counters never exceed that.
    any::<u64>().prop_map(|v| v >> 1)
}

fn arb_level() -> impl Strategy<Value = LevelSnapshot> {
    (0..100_000usize, counter(), counter(), counter()).prop_map(
        |(occupancy, used_nanos, entries, quanta_granted)| LevelSnapshot {
            occupancy,
            used_nanos,
            entries,
            quanta_granted,
        },
    )
}

fn arb_worker() -> impl Strategy<Value = WorkerMetrics> {
    (
        (any::<u32>(), counter(), counter(), counter(), counter()),
        (
            proptest::collection::vec(arb_level(), 0..6),
            counter(),
            counter(),
        ),
        (
            proptest::collection::vec(any::<i64>(), 9..10),
            0..100_000usize,
            0..4usize,
        ),
    )
        .prop_map(
            |(
                (node, busy_nanos, running_drivers, blocked_drivers, queued_drivers),
                (levels, demotions, promotions),
                (mem, active_queries, state),
            )| WorkerMetrics {
                node,
                state: ["active", "draining", "lost", "shutdown"][state].to_string(),
                busy_nanos,
                running_drivers,
                blocked_drivers,
                queued_drivers,
                scheduler: SchedulerSnapshot {
                    levels,
                    demotions,
                    promotions,
                },
                memory: PoolSnapshot {
                    general_used: mem[0],
                    reserved_used: mem[1],
                    system_used: mem[2],
                    peak_general: mem[3],
                    peak_reserved: mem[4],
                    general_limit: mem[5],
                    reserved_limit: mem[6],
                    blocked_reservations: mem[7],
                    revocation_requests: mem[8],
                    active_queries,
                },
            },
        )
}

fn arb_cache() -> impl Strategy<Value = CacheLayerMetrics> {
    ("[a-z_]{1,12}", proptest::collection::vec(counter(), 6..7)).prop_map(|(layer, vals)| {
        CacheLayerMetrics {
            layer,
            hits: vals[0],
            misses: vals[1],
            evictions: vals[2],
            inserts: vals[3],
            invalidations: vals[4],
            bytes: vals[5],
        }
    })
}

fn arb_summary() -> impl Strategy<Value = LatencySummary> {
    proptest::collection::vec(counter(), 5..6).prop_map(|v| LatencySummary {
        count: v[0],
        p50_nanos: v[1],
        p95_nanos: v[2],
        p99_nanos: v[3],
        max_nanos: v[4],
    })
}

fn arb_snapshot() -> impl Strategy<Value = ClusterSnapshot> {
    (
        counter(),
        proptest::collection::vec(arb_worker(), 0..4),
        proptest::collection::vec(counter(), 6..7),
        (
            proptest::collection::vec(counter(), 5..6),
            proptest::collection::vec(counter(), 5..6),
            proptest::collection::vec(counter(), 6..7),
            (proptest::collection::vec(counter(), 4..5), "[a-z/_-]{0,16}"),
        ),
        proptest::collection::vec(arb_cache(), 0..3),
        ((arb_summary(), arb_summary(), arb_summary()), counter(), counter()),
    )
        .prop_map(
            |(uptime_nanos, workers, shuffle, (queries, df, fu, (sp, spill_dir)), caches, ((lq, lp, le), trace_events, trace_overwritten))| ClusterSnapshot {
                uptime_nanos,
                workers,
                shuffle: ShuffleMetrics {
                    output_buffered_bytes: shuffle[0],
                    exchange_buffered_bytes: shuffle[1],
                    in_flight_requests: shuffle[2],
                    retries: shuffle[3],
                    wire_bytes_received: shuffle[4],
                    logical_bytes_received: shuffle[5],
                },
                queries: QueryGauges {
                    submitted: queries[0],
                    queued: queries[1],
                    running: queries[2],
                    finished: queries[3],
                    failed: queries[4],
                },
                dynamic_filters: DynamicFilterMetrics {
                    filters_published: df[0],
                    splits_pruned: df[1],
                    stripes_pruned: df[2],
                    rows_filtered: df[3],
                    wait_nanos: df[4],
                },
                fusion: FusionMetrics {
                    pipelines: fu[0],
                    scan_rows: fu[1],
                    filter_rows: fu[2],
                    project_rows: fu[3],
                    agg_rows: fu[4],
                    rows_produced: fu[5],
                },
                spill: SpillMetrics {
                    queries_spilled: sp[0],
                    spilled_bytes: sp[1],
                    spill_events: sp[2],
                    spill_dir,
                    spill_max_bytes: sp[3],
                },
                caches,
                latency: QueryLatencyMetrics {
                    queued: lq,
                    planning: lp,
                    execution: le,
                },
                trace_events,
                trace_overwritten,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_json_round_trip(snap in arb_snapshot()) {
        let text = snap.to_json().to_string();
        let back = ClusterSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, snap);
    }
}
