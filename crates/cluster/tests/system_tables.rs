//! End-to-end tests for the self-describing `system` catalog (§VII):
//! after a mixed workload, the `system.runtime.*` tables must be
//! scannable with plain SQL — filters, aggregations, and joins between
//! system tables — and agree with the out-of-band `ClusterSnapshot` and
//! query-history store.

#![allow(clippy::unwrap_used)]

use presto_cluster::{Cluster, ClusterConfig};
use presto_common::{DataType, Schema, Session, Value};
use presto_connector::CatalogManager;
use presto_connectors::MemoryConnector;
use std::collections::HashMap;
use std::sync::Arc;

fn cluster() -> Cluster {
    let mem = MemoryConnector::new();
    let orders_schema = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("custkey", DataType::Bigint),
        ("totalprice", DataType::Double),
    ]);
    let orders: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::Bigint(i),
                Value::Bigint(i % 100),
                Value::Double((i % 500) as f64),
            ]
        })
        .collect();
    let pages: Vec<presto_page::Page> = orders
        .chunks(100)
        .map(|chunk| presto_page::Page::from_rows(&orders_schema, chunk))
        .collect();
    mem.load_table("orders", orders_schema, pages);
    let lineitem_schema = Schema::of(&[("orderkey", DataType::Bigint), ("tax", DataType::Double)]);
    let lineitem: Vec<Vec<Value>> = (0..5000)
        .map(|i| vec![Value::Bigint(i % 1000), Value::Double(0.05)])
        .collect();
    let pages: Vec<presto_page::Page> = lineitem
        .chunks(500)
        .map(|chunk| presto_page::Page::from_rows(&lineitem_schema, chunk))
        .collect();
    mem.load_table("lineitem", lineitem_schema, pages);
    mem.analyze("orders").unwrap();
    mem.analyze("lineitem").unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register(
        "memory",
        Arc::clone(&mem) as Arc<dyn presto_connector::Connector>,
    );
    Cluster::start(ClusterConfig::test(), catalogs).unwrap()
}

fn i64_at(row: &[Value], col: usize) -> i64 {
    row[col].as_i64().unwrap_or_else(|| panic!("non-bigint at column {col}: {row:?}"))
}

/// Every runtime table is mounted and scannable with `SELECT *` through
/// the ordinary three-part name path (`system.runtime.queries` resolves to
/// catalog `system`, table `runtime.queries`).
#[test]
fn every_system_table_scans() {
    let c = cluster();
    c.execute("SELECT custkey, COUNT(*) FROM orders GROUP BY custkey")
        .unwrap();
    for table in [
        "queries",
        "tasks",
        "operators",
        "memory_pools",
        "caches",
        "dynamic_filters",
        "trace_events",
    ] {
        let out = c
            .execute(&format!("SELECT * FROM system.runtime.{table}"))
            .unwrap();
        // Every table but the per-query ones is populated even on an idle
        // cluster; after one query they all have rows except (possibly)
        // operators of still-draining tasks.
        match table {
            "queries" | "memory_pools" | "caches" | "dynamic_filters" | "trace_events" => {
                assert!(!out.rows().is_empty(), "{table} came back empty");
            }
            _ => {}
        }
    }
    // Unknown tables fail with a user error, not a panic.
    assert!(c.execute("SELECT * FROM system.runtime.nope").is_err());
}

/// The acceptance scenario: run a background workload (successes,
/// failures, a join that publishes a dynamic filter), then interrogate the
/// cluster *through SQL* and check the answers against the out-of-band
/// `ClusterSnapshot` and `QueryHistory` APIs.
#[test]
fn system_tables_agree_with_snapshot_after_workload() {
    let c = cluster();

    // -- Workload: 6 concurrent group-bys, one selective join (publishes a
    // dynamic filter), and 2 failures (one planning error, one parse
    // error).
    let mut max_id = 0u64;
    let handles: Vec<_> = (0..6)
        .map(|i| {
            c.submit(
                format!(
                    "SELECT custkey, COUNT(*) FROM orders WHERE custkey < {} GROUP BY custkey",
                    20 + i
                ),
                Session::default(),
            )
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let out = h.join().unwrap().unwrap();
        assert_eq!(out.rows().len(), 20 + i);
        max_id = max_id.max(out.query.0);
    }
    let mut session = Session::default();
    session.dynamic_filter_wait = std::time::Duration::from_secs(5);
    let join = c
        .execute_with_session(
            "SELECT COUNT(*) FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey \
             WHERE o.custkey < 3",
            &session,
        )
        .unwrap();
    max_id = max_id.max(join.query.0);
    let planning_err = c.execute("SELECT no_such_column FROM orders").unwrap_err();
    max_id = max_id.max(planning_err.query.0);
    let parse_err = c.execute("SELEKT broken !!").unwrap_err();
    max_id = max_id.max(parse_err.query.0);

    let snap = c.metrics_snapshot();
    assert_eq!(snap.queries.finished, 7);
    assert_eq!(snap.queries.failed, 2);
    let history = c.query_history();
    assert_eq!(history.len(), 9);
    assert_eq!(history.evicted(), 0);

    // Later introspection queries land in history themselves, so every
    // agreement query pins the workload with `query_id <= max_id`.

    // -- Dynamic filters first (the system-⋈-system query below may
    // publish filters of its own): the single row must equal telemetry.
    let df = c
        .execute("SELECT * FROM system.runtime.dynamic_filters")
        .unwrap();
    let df_rows = df.rows();
    assert_eq!(df_rows.len(), 1);
    assert!(i64_at(&df_rows[0], 0) >= 1, "join published no filter");
    assert_eq!(
        i64_at(&df_rows[0], 0) as u64,
        snap.dynamic_filters.filters_published
    );
    assert_eq!(
        i64_at(&df_rows[0], 3) as u64,
        snap.dynamic_filters.rows_filtered
    );

    // -- Aggregation over queries: states and returned-row totals. The
    // 6 group-bys return 20..=25 rows (135), the join returns 1.
    let out = c
        .execute(&format!(
            "SELECT state, COUNT(*), SUM(rows_returned) FROM system.runtime.queries \
             WHERE query_id <= {max_id} GROUP BY state"
        ))
        .unwrap();
    let by_state: HashMap<String, (i64, i64)> = out
        .rows()
        .iter()
        .map(|r| {
            (
                r[0].as_str().unwrap().to_string(),
                (i64_at(r, 1), i64_at(r, 2)),
            )
        })
        .collect();
    assert_eq!(by_state.len(), 2, "{by_state:?}");
    assert_eq!(by_state["finished"], (7, 135 + 1), "{by_state:?}");
    assert_eq!(by_state["failed"].0, 2, "{by_state:?}");
    assert_eq!(by_state["finished"].0 as u64, snap.queries.finished);
    assert_eq!(by_state["failed"].0 as u64, snap.queries.failed);

    // -- Filters on history-only columns: the parse error never reached
    // execution (attempts = 0), the planning error was admitted once.
    let failed = c
        .execute(&format!(
            "SELECT query_id, error_tag, attempts, retries FROM system.runtime.queries \
             WHERE query_id <= {max_id} AND state = 'failed'"
        ))
        .unwrap();
    let failed_rows = failed.rows();
    assert_eq!(failed_rows.len(), 2);
    for row in &failed_rows {
        let id = i64_at(row, 0) as u64;
        let tag = row[1].as_str().unwrap();
        if id == parse_err.query.0 {
            assert_eq!(i64_at(row, 2), 0, "parse failure has no attempts");
        } else {
            assert_eq!(id, planning_err.query.0);
            assert_eq!(i64_at(row, 2), 1);
        }
        assert!(!tag.is_empty());
        assert_eq!(i64_at(row, 3), 0, "no retries in this workload");
    }

    // -- Phase columns agree with the histograms: total executed nanos of
    // finished queries is positive and every finished query spent more
    // wall than execution-phase time never exceeds wall.
    let phases = c
        .execute(&format!(
            "SELECT COUNT(*) FROM system.runtime.queries \
             WHERE query_id <= {max_id} AND state = 'finished' \
             AND execution_nanos > 0 AND wall_nanos >= execution_nanos"
        ))
        .unwrap();
    assert_eq!(i64_at(&phases.rows()[0], 0), 7);
    // Every admitted query records phases (parse failures never reach
    // admission): 7 successes + the planning failure.
    assert_eq!(snap.latency.execution.count, 8);

    // -- Tasks: SQL count equals the history rollup, task CPU totals are
    // consistent with per-query CPU.
    let expected_tasks: i64 = history
        .snapshot()
        .iter()
        .filter(|e| e.query.0 <= max_id)
        .map(|e| e.tasks.len() as i64)
        .sum();
    assert!(expected_tasks > 0);
    let tasks = c
        .execute(&format!(
            "SELECT COUNT(*) FROM system.runtime.tasks WHERE query_id <= {max_id}"
        ))
        .unwrap();
    assert_eq!(i64_at(&tasks.rows()[0], 0), expected_tasks);

    // -- Memory pools: one row per (worker, pool), limits equal to the
    // snapshot's per-worker general-pool limits.
    let pools = c
        .execute("SELECT pool, COUNT(*), SUM(limit_bytes) FROM system.runtime.memory_pools GROUP BY pool")
        .unwrap();
    let by_pool: HashMap<String, (i64, i64)> = pools
        .rows()
        .iter()
        .map(|r| {
            (
                r[0].as_str().unwrap().to_string(),
                (i64_at(r, 1), i64_at(r, 2)),
            )
        })
        .collect();
    let workers = snap.workers.len() as i64;
    assert_eq!(by_pool.len(), 3, "{by_pool:?}");
    for pool in ["general", "reserved", "system"] {
        assert_eq!(by_pool[pool].0, workers, "{by_pool:?}");
    }
    let general_limit: i64 = snap.workers.iter().map(|w| w.memory.general_limit).sum();
    assert_eq!(by_pool["general"].1, general_limit);

    // -- Caches: one row per registered layer.
    let caches = c
        .execute("SELECT COUNT(*) FROM system.runtime.caches")
        .unwrap();
    assert_eq!(i64_at(&caches.rows()[0], 0), snap.caches.len() as i64);

    // -- Trace events: bounded by the ring, carrying the overwrite count.
    let trace = c
        .execute("SELECT COUNT(*), MAX(overwritten_events) FROM system.runtime.trace_events")
        .unwrap();
    let trace_rows = trace.rows();
    let retained = i64_at(&trace_rows[0], 0);
    assert!(retained > 0);
    assert!(retained <= c.config().trace_capacity as i64);
    assert!(i64_at(&trace_rows[0], 1) >= snap.trace_overwritten as i64);

    // -- The tentpole: a join BETWEEN two system tables. Per finished
    // workload query, roll up the operator stats and compare row counts
    // against the history store.
    let joined = c
        .execute(&format!(
            "SELECT q.query_id, COUNT(*), SUM(o.output_rows) \
             FROM system.runtime.queries q \
             JOIN system.runtime.operators o ON q.query_id = o.query_id \
             WHERE q.state = 'finished' AND q.query_id <= {max_id} \
             GROUP BY q.query_id"
        ))
        .unwrap();
    let joined_rows = joined.rows();
    assert_eq!(joined_rows.len(), 7, "one group per finished workload query");
    let by_query: HashMap<u64, (i64, i64)> = joined_rows
        .iter()
        .map(|r| (i64_at(r, 0) as u64, (i64_at(r, 1), i64_at(r, 2))))
        .collect();
    for e in history.snapshot() {
        if e.query.0 > max_id || e.state != "finished" {
            continue;
        }
        let ops: i64 = e.tasks.iter().map(|t| t.operators.len() as i64).sum();
        let out_rows: i64 = e
            .tasks
            .iter()
            .flat_map(|t| &t.operators)
            .map(|o| o.output_rows as i64)
            .sum();
        let (sql_ops, sql_rows) = by_query[&e.query.0];
        assert_eq!(sql_ops, ops, "operator count mismatch for {:?}", e.query);
        assert_eq!(sql_rows, out_rows, "output_rows mismatch for {:?}", e.query);
        assert!(sql_ops >= 1);
    }
}

/// Live queries are visible: while background threads keep the cluster
/// busy, `system.runtime.queries` shows in-flight rows (state queued or
/// running, history columns NULL). Load keeps running until the poller
/// has seen them, so the test is not timing-dependent.
#[test]
fn live_queries_appear_in_system_tables() {
    let c = cluster();
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let c = &c;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    c.execute(
                        "SELECT o.custkey, COUNT(*), SUM(l.tax) \
                         FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey \
                         GROUP BY o.custkey",
                    )
                    .unwrap();
                }
            });
        }
        // The introspection query itself is one live row; with 4 load
        // threads churning, a scan observing >= 2 in-flight queries proves
        // the live (telemetry-backed) path populates the table.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let mut seen_live = 0usize;
        while std::time::Instant::now() < deadline {
            let out = c
                .execute(
                    "SELECT query_id, error_tag, queued_nanos FROM system.runtime.queries \
                     WHERE state = 'running' OR state = 'queued'",
                )
                .unwrap();
            let rows = out.rows();
            if rows.len() >= 2 {
                for row in &rows {
                    assert!(row[0].as_i64().is_some());
                    // History-only columns are NULL on live rows.
                    assert_eq!(row[1], Value::Null);
                    assert!(i64_at(row, 2) >= 0);
                }
                seen_live = rows.len();
                break;
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(seen_live >= 2, "never observed in-flight queries via SQL");
    });
}
