//! Fault-tolerance invariants (§IV-G): whatever kills a query — user
//! cancellation, worker crash, memory limits, a hung scheduler — teardown
//! must be *clean*: every task retires, every memory-pool byte returns, no
//! peer blocks forever on a dead exchange source.

#![allow(clippy::unwrap_used)]

use presto_cluster::{Cluster, ClusterConfig, WorkerState};
use presto_common::{DataType, ErrorCode, Schema, Session, Value};
use presto_connector::CatalogManager;
use presto_connectors::MemoryConnector;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Slow enough to still be mid-flight when a fault lands: a 4000×4000
/// cross join (16M pairs). Matching pairs `(k, 3999-k)` number exactly
/// 4000.
const SLOW_JOIN: &str = "SELECT o1.orderkey FROM orders o1 CROSS JOIN orders o2 \
     WHERE o1.orderkey + o2.orderkey = 3999";

fn test_catalogs() -> CatalogManager {
    let mem = MemoryConnector::new();
    let schema = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("custkey", DataType::Bigint),
    ]);
    let rows: Vec<Vec<Value>> = (0..4000)
        .map(|i| vec![Value::Bigint(i), Value::Bigint(i % 100)])
        .collect();
    let pages: Vec<presto_page::Page> = rows
        .chunks(50)
        .map(|chunk| presto_page::Page::from_rows(&schema, chunk))
        .collect();
    mem.load_table("orders", schema, pages);
    mem.analyze("orders").unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn presto_connector::Connector>);
    catalogs
}

fn start(config: ClusterConfig) -> Cluster {
    Cluster::start(config, test_catalogs()).unwrap()
}

/// The clean-teardown invariant: within `grace`, every worker's live-task
/// list empties and the general/reserved pools return to zero. (System
/// memory is excluded: it holds cache retention, not query state.)
fn assert_clean(c: &Cluster, grace: Duration) {
    let deadline = Instant::now() + grace;
    loop {
        let live = c.worker_live_tasks();
        let snap = c.metrics_snapshot();
        let residual: Vec<(i64, i64)> = snap
            .workers
            .iter()
            .map(|w| (w.memory.general_used, w.memory.reserved_used))
            .collect();
        let clean = live.iter().all(|&n| n == 0)
            && residual.iter().all(|&(g, r)| g == 0 && r == 0);
        if clean {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "teardown left residue: live_tasks={live:?} (general,reserved)={residual:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn mid_query_cancel_releases_everything() {
    let c = start(ClusterConfig::test());
    let handle = c.submit(SLOW_JOIN, Session::default());
    // Wait until the query is registered and has had a moment to reserve.
    let deadline = Instant::now() + Duration::from_secs(2);
    let query = loop {
        if let Some(q) = c.active_queries().first().copied() {
            break q;
        }
        assert!(Instant::now() < deadline, "query never became active");
        std::thread::sleep(Duration::from_millis(1));
    };
    std::thread::sleep(Duration::from_millis(10));
    assert!(c.cancel_query(query), "cancel must find the running query");
    match handle.join().unwrap() {
        Err(e) => assert_eq!(e.error.code, ErrorCode::Killed, "{e}"),
        Ok(_) => panic!("cancelled query must not succeed"),
    }
    assert!(!c.cancel_query(query), "finished query is no longer active");
    assert_clean(&c, Duration::from_secs(5));
}

#[test]
fn worker_crash_releases_everything() {
    let c = start(ClusterConfig::test());
    let handle = c.submit(SLOW_JOIN, Session::default());
    std::thread::sleep(Duration::from_millis(15));
    c.kill_worker(1);
    // Crash mid-run fails the query with the retryable worker-loss code;
    // racing to completion first is acceptable.
    if let Err(e) = handle.join().unwrap() {
        assert_eq!(e.error.code, ErrorCode::WorkerFailed, "{e}");
    }
    assert_eq!(c.worker_states()[1], WorkerState::Lost);
    assert_clean(&c, Duration::from_secs(5));
}

#[test]
fn memory_kill_releases_everything() {
    let c = start(ClusterConfig::test());
    let session = Session {
        query_max_memory_per_node: 1,
        ..Session::default()
    };
    let err = c
        .execute_with_session("SELECT custkey, COUNT(*) FROM orders GROUP BY custkey", &session)
        .unwrap_err();
    assert_eq!(err.error.code, ErrorCode::InsufficientResources);
    assert_clean(&c, Duration::from_secs(5));
}

/// Eight threads hammering the cluster while cancels and a worker crash
/// land mid-flight: every query terminates, nothing leaks.
#[test]
fn stress_mixed_faults_leave_no_residue() {
    let config = ClusterConfig {
        workers: 3,
        ..ClusterConfig::test()
    };
    let c = Arc::new(start(config));
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for t in 0..8 {
        let c = Arc::clone(&c);
        threads.push(std::thread::spawn(move || {
            let mut outcomes = (0u32, 0u32); // (ok, failed)
            for i in 0..6 {
                let sql = if (t + i) % 2 == 0 {
                    "SELECT custkey, COUNT(*) FROM orders GROUP BY custkey"
                } else {
                    SLOW_JOIN
                };
                match c.execute(sql) {
                    Ok(_) => outcomes.0 += 1,
                    Err(e) => {
                        // Only fault-induced failures are acceptable.
                        assert!(
                            matches!(
                                e.error.code,
                                ErrorCode::Killed | ErrorCode::WorkerFailed
                            ),
                            "unexpected failure: {e}"
                        );
                        outcomes.1 += 1;
                    }
                }
            }
            outcomes
        }));
    }
    // Chaos thread: cancel whatever is running, then crash a worker.
    let chaos = {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for round in 0..30 {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
                if round == 10 {
                    c.kill_worker(2);
                }
                if round % 3 == 0 {
                    for q in c.active_queries() {
                        c.cancel_query(q);
                    }
                }
            }
        })
    };
    let mut ok = 0;
    let mut failed = 0;
    for t in threads {
        let (o, f) = t.join().unwrap();
        ok += o;
        failed += f;
    }
    stop.store(true, Ordering::SeqCst);
    chaos.join().unwrap();
    assert_eq!(ok + failed, 48, "every query must terminate");
    assert_clean(&c, Duration::from_secs(10));
}

/// Opt-in coordinator retry (§IV-G deviation knob): a query that loses a
/// worker mid-run succeeds transparently on the second attempt, placed on
/// the survivors.
#[test]
fn query_retry_recovers_from_worker_loss() {
    let config = ClusterConfig {
        workers: 3,
        ..ClusterConfig::test()
    };
    let c = start(config);
    let session = Session {
        query_retry_attempts: 2,
        query_retry_backoff: Duration::from_millis(5),
        ..Session::default()
    };
    let handle = c.submit(SLOW_JOIN, session);
    std::thread::sleep(Duration::from_millis(15));
    c.kill_worker(2);
    let out = handle
        .join()
        .unwrap()
        .expect("retry must recover the query on surviving workers");
    assert_eq!(out.row_count(), 4000);
    // Queries after the loss keep working without the retry knob, too.
    assert!(c.execute("SELECT COUNT(*) FROM orders").is_ok());
}

/// The failure detector: a hung scheduler stops heartbeating and is
/// declared lost within the liveness timeout; its queries fail with
/// `WorkerFailed` instead of hanging forever.
#[test]
fn liveness_detector_declares_hung_worker_lost() {
    let config = ClusterConfig {
        workers: 2,
        liveness_timeout: Duration::from_millis(100),
        ..ClusterConfig::test()
    };
    let c = start(config);
    let handle = c.submit(SLOW_JOIN, Session::default());
    std::thread::sleep(Duration::from_millis(15));
    c.hang_worker(1);
    // Detection latency: timeout + detector interval + slack.
    let deadline = Instant::now() + Duration::from_secs(3);
    while c.worker_states()[1] != WorkerState::Lost {
        assert!(
            Instant::now() < deadline,
            "detector never declared the hung worker lost: {:?}",
            c.worker_states()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    if let Err(e) = handle.join().unwrap() {
        assert_eq!(e.error.code, ErrorCode::WorkerFailed, "{e}");
    }
    assert_clean(&c, Duration::from_secs(5));
}

/// A short hang (GC-pause blip) under the liveness timeout must NOT get
/// the worker killed.
#[test]
fn short_hang_below_timeout_is_tolerated() {
    let config = ClusterConfig {
        workers: 2,
        liveness_timeout: Duration::from_millis(500),
        ..ClusterConfig::test()
    };
    let c = start(config);
    c.hang_worker(1);
    std::thread::sleep(Duration::from_millis(60));
    c.resume_worker(1);
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(c.worker_states()[1], WorkerState::Active);
    assert!(c.execute("SELECT COUNT(*) FROM orders").is_ok());
}

/// Graceful drain (§IV-G "shutting down"): mid-workload, a drained worker
/// finishes its tasks and stops — with zero query failures.
#[test]
fn drain_worker_mid_workload_fails_nothing() {
    let config = ClusterConfig {
        workers: 3,
        ..ClusterConfig::test()
    };
    let c = Arc::new(start(config));
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for _ in 0..4 {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut ran = 0u32;
            while !stop.load(Ordering::SeqCst) {
                c.execute("SELECT custkey, COUNT(*) FROM orders GROUP BY custkey")
                    .expect("drain must not fail queries");
                ran += 1;
            }
            ran
        }));
    }
    std::thread::sleep(Duration::from_millis(50));
    c.drain_worker(2, Duration::from_secs(10))
        .expect("drain must complete");
    assert_eq!(c.worker_states()[2], WorkerState::Shutdown);
    // The reduced cluster keeps serving.
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);
    let ran: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(ran > 0, "workload should have made progress");
    assert_clean(&c, Duration::from_secs(5));
}

/// Regression: a cross join whose predicate becomes a residual filter is
/// planned as an inner join with no equi keys; the keyed probe path hashes
/// zero columns and silently matched nothing. It must take the full-pairing
/// path and find all 4000 `(k, 3999-k)` pairs.
#[test]
fn cross_join_residual_filter_finds_all_matches() {
    let config = ClusterConfig {
        workers: 3,
        ..ClusterConfig::test()
    };
    let c = start(config);
    let out = c.execute(SLOW_JOIN).unwrap();
    assert_eq!(out.row_count(), 4000);
}

/// Dynamic filtering under faults: the worker building the join's hash
/// table (the filter publisher) hangs past the probe scan's
/// `dynamic_filter_wait` deadline. The scan must degrade to an unpruned
/// read and the query must still return the exact result once the worker
/// resumes — a late (or absent) filter is a lost optimization, never a
/// correctness or liveness problem.
#[test]
fn dynamic_filter_publisher_hang_degrades_to_unpruned_scan() {
    let config = ClusterConfig {
        workers: 2,
        // Generous liveness budget: the hang must expire the filter wait,
        // not get the worker declared lost.
        liveness_timeout: Duration::from_secs(10),
        ..ClusterConfig::test()
    };
    let c = start(config);
    let session = Session {
        dynamic_filter_wait: Duration::from_millis(1),
        ..Session::default()
    };
    // Probe: full orders scan; build: the 10 smallest orderkeys. Each
    // custkey value 0..100 appears 40 times, so keys 0..10 match 400 rows.
    let sql = "SELECT COUNT(*) FROM orders f JOIN \
               (SELECT orderkey FROM orders WHERE orderkey < 10) d \
               ON f.custkey = d.orderkey";
    let handle = c.submit(sql, session.clone());
    c.hang_worker(1);
    std::thread::sleep(Duration::from_millis(50));
    c.resume_worker(1);
    let out = handle.join().unwrap().expect("query survives the hang");
    assert_eq!(out.rows()[0][0], Value::Bigint(400));
    // Same query, no faults, for reference: identical answer.
    let out = c.execute_with_session(sql, &session).unwrap();
    assert_eq!(out.rows()[0][0], Value::Bigint(400));
    assert_clean(&c, Duration::from_secs(5));
}

/// Worker loss mid-flight through a *fused* pipeline (§V-B whole-pipeline
/// compiled execution): the monomorphized scan→filter→partial-agg loop
/// holds selection vectors, group states, and reserved memory inside one
/// operator, and all of it must still unwind through the normal teardown
/// path when the worker under it dies.
#[test]
fn worker_crash_mid_fused_pipeline_releases_everything() {
    use presto_page::blocks::LongBlock;
    use presto_page::{Block, Page};

    // A table large enough that the fused scan+filter+SUM is still running
    // when the crash lands, built from blocks directly so setup stays fast.
    let mem = MemoryConnector::new();
    let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)]);
    const ROWS: i64 = 2_000_000;
    const PAGE: i64 = 4096;
    let pages: Vec<Page> = (0..ROWS)
        .step_by(PAGE as usize)
        .map(|start| {
            let n = PAGE.min(ROWS - start);
            let k: Vec<i64> = (start..start + n).collect();
            let v: Vec<i64> = (start..start + n).map(|i| i % 1000).collect();
            Page::new(vec![
                Block::from(LongBlock::from_values(k)),
                Block::from(LongBlock::from_values(v)),
            ])
        })
        .collect();
    mem.load_table("big", schema, pages);
    mem.analyze("big").unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn presto_connector::Connector>);
    let c = Cluster::start(ClusterConfig::test(), catalogs).unwrap();

    // `pipeline_fusion` defaults on; prove this plan actually takes the
    // fused path by running it to completion once and watching the fused
    // pipeline counter move.
    let sql = "SELECT SUM(v) FROM big WHERE k < 1900000";
    let before = c.telemetry().fusion_metrics();
    let out = c.execute(sql).unwrap();
    assert_eq!(out.rows()[0][0], Value::Bigint(949_050_000));
    let after = c.telemetry().fusion_metrics();
    assert!(
        after.pipelines > before.pipelines,
        "query must run fused ({} -> {} pipelines)",
        before.pipelines,
        after.pipelines
    );

    // Same query again, but kill a worker while the fused loops are busy.
    let handle = c.submit(sql, Session::default());
    std::thread::sleep(Duration::from_millis(10));
    c.kill_worker(1);
    match handle.join().unwrap() {
        // Racing to completion first is acceptable; a loss mid-run must
        // surface the retryable worker-failure code, never hang or corrupt.
        Ok(out) => assert_eq!(out.rows()[0][0], Value::Bigint(949_050_000)),
        Err(e) => assert_eq!(e.error.code, ErrorCode::WorkerFailed, "{e}"),
    }
    assert_eq!(c.worker_states()[1], WorkerState::Lost);
    assert_clean(&c, Duration::from_secs(5));
}
