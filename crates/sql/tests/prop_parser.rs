//! Property tests for the SQL front end: the parser never panics, and
//! structurally-generated queries round-trip through parsing.

use presto_sql::ast::{SelectItem, Statement};
use presto_sql::parse_statement;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Fuzz-lite: arbitrary strings must produce Ok or a user error —
    /// never a panic, never a non-user error code.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        match parse_statement(&input) {
            Ok(_) => {}
            Err(e) => prop_assert_eq!(e.code, presto_common::ErrorCode::User),
        }
    }

    /// SQL-shaped fuzzing: random token soup from the SQL vocabulary.
    #[test]
    fn parser_survives_sql_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()), Just("FROM".to_string()),
                Just("WHERE".to_string()), Just("GROUP".to_string()),
                Just("BY".to_string()), Just("ORDER".to_string()),
                Just("JOIN".to_string()), Just("ON".to_string()),
                Just("AND".to_string()), Just("OR".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just(",".to_string()), Just("*".to_string()),
                Just("=".to_string()), Just("<".to_string()),
                Just("1".to_string()), Just("'x'".to_string()),
                Just("t".to_string()), Just("a".to_string()),
                Just("CASE".to_string()), Just("WHEN".to_string()),
                Just("END".to_string()), Just("CAST".to_string()),
                Just("AS".to_string()), Just("LIMIT".to_string()),
            ],
            0..25,
        )
    ) {
        let sql = tokens.join(" ");
        match parse_statement(&sql) {
            Ok(_) => {}
            Err(e) => prop_assert_eq!(e.code, presto_common::ErrorCode::User),
        }
    }

    /// Structured round-trip: generated SELECT lists parse back with the
    /// same item count and aliases.
    #[test]
    fn select_list_round_trips(
        columns in proptest::collection::vec("c_[a-z0-9_]{0,8}", 1..6),
        aliased in proptest::collection::vec(any::<bool>(), 1..6),
        limit in proptest::option::of(0u64..1000),
    ) {
        let items: Vec<String> = columns
            .iter()
            .zip(aliased.iter().chain(std::iter::repeat(&false)))
            .map(|(c, a)| if *a { format!("{c} AS {c}_alias") } else { c.clone() })
            .collect();
        let mut sql = format!("SELECT {} FROM some_table", items.join(", "));
        if let Some(n) = limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        let parsed = parse_statement(&sql).expect("generated SQL parses");
        let Statement::Query(q) = parsed else { panic!("expected query") };
        prop_assert_eq!(q.limit, limit);
        prop_assert_eq!(q.terms[0].items.len(), columns.len());
        for (item, (c, a)) in q.terms[0].items.iter().zip(columns.iter().zip(&aliased)) {
            match item {
                SelectItem::Expr { alias, .. } => {
                    if *a {
                        prop_assert_eq!(alias.clone(), Some(format!("{c}_alias")));
                    } else {
                        prop_assert_eq!(alias.clone(), None);
                    }
                }
                other => prop_assert!(false, "unexpected item {:?}", other),
            }
        }
    }

    /// Numeric literal round-trip through the lexer.
    #[test]
    fn integer_literals_round_trip(n in any::<i32>()) {
        let sql = format!("SELECT {n}");
        let parsed = parse_statement(&sql).expect("parses");
        let Statement::Query(q) = parsed else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.terms[0].items[0] else { panic!() };
        let repr = format!("{expr:?}");
        prop_assert!(repr.contains(&n.abs().to_string()), "{repr}");
    }
}
