//! SQL front end: lexer, AST, and recursive-descent parser.
//!
//! Presto uses an ANTLR-generated parser (§IV-B2); we hand-write the
//! equivalent. The dialect covers the ANSI core exercised by the paper's
//! workloads: `SELECT` with joins (`INNER`/`LEFT`/`RIGHT`/`CROSS`),
//! `WHERE`, `GROUP BY`, `HAVING`, `ORDER BY`, `LIMIT`, `DISTINCT`,
//! `UNION ALL`, derived tables (subqueries in `FROM`), scalar expressions
//! with `CASE`/`CAST`/`BETWEEN`/`IN`/`LIKE`/`IS NULL`, aggregate calls
//! (including `COUNT(DISTINCT x)`), window functions
//! (`f(...) OVER (PARTITION BY … ORDER BY …)`), `INSERT INTO … SELECT`,
//! and `EXPLAIN`.
//!
//! The parser produces an *untyped* [`ast`]; name resolution, coercion and
//! type checking happen in the analyzer (`presto-planner`).

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{AstExpr, Query, SelectItem, Statement, TableRef};
pub use parser::parse_statement;
