//! SQL tokenizer.
//!
//! Produces a flat token stream with byte positions for error messages in
//! the `line:col:` style Presto users expect. Keywords are recognized
//! case-insensitively; identifiers can be double-quoted, strings are
//! single-quoted with `''` escaping.

use presto_common::{PrestoError, Result};
use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword, normalized to lowercase.
    Ident(String),
    /// Double-quoted identifier, case preserved.
    QuotedIdent(String),
    /// Single-quoted string literal.
    String(String),
    /// Integer literal.
    Integer(i64),
    /// Floating-point literal.
    Float(f64),
    // punctuation
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::QuotedIdent(s) => write!(f, "\"{s}\""),
            Token::String(s) => write!(f, "'{s}'"),
            Token::Integer(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Eq => f.write_str("="),
            Token::Ne => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token plus its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub line: u32,
    pub col: u32,
}

/// Tokenize `sql` into a vector ending with [`Token::Eof`].
pub fn tokenize(sql: &str) -> Result<Vec<Spanned>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < chars.len() {
        let (start_line, start_col) = (line, col);
        let c = chars[i];
        let token = match c {
            c if c.is_whitespace() => {
                bump!();
                continue;
            }
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                // line comment
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
                continue;
            }
            ',' => {
                bump!();
                Token::Comma
            }
            '.' => {
                bump!();
                Token::Dot
            }
            '(' => {
                bump!();
                Token::LParen
            }
            ')' => {
                bump!();
                Token::RParen
            }
            '*' => {
                bump!();
                Token::Star
            }
            '+' => {
                bump!();
                Token::Plus
            }
            '-' => {
                bump!();
                Token::Minus
            }
            '/' => {
                bump!();
                Token::Slash
            }
            '%' => {
                bump!();
                Token::Percent
            }
            '=' => {
                bump!();
                Token::Eq
            }
            '!' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                bump!();
                bump!();
                Token::Ne
            }
            '<' => {
                bump!();
                if i < chars.len() && chars[i] == '=' {
                    bump!();
                    Token::Le
                } else if i < chars.len() && chars[i] == '>' {
                    bump!();
                    Token::Ne
                } else {
                    Token::Lt
                }
            }
            '>' => {
                bump!();
                if i < chars.len() && chars[i] == '=' {
                    bump!();
                    Token::Ge
                } else {
                    Token::Gt
                }
            }
            '\'' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(PrestoError::user(format!(
                            "line {start_line}:{start_col}: unterminated string literal"
                        )));
                    }
                    if chars[i] == '\'' {
                        if i + 1 < chars.len() && chars[i + 1] == '\'' {
                            s.push('\'');
                            bump!();
                            bump!();
                        } else {
                            bump!();
                            break;
                        }
                    } else {
                        s.push(chars[i]);
                        bump!();
                    }
                }
                Token::String(s)
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(PrestoError::user(format!(
                            "line {start_line}:{start_col}: unterminated quoted identifier"
                        )));
                    }
                    if chars[i] == '"' {
                        bump!();
                        break;
                    }
                    s.push(chars[i]);
                    bump!();
                }
                Token::QuotedIdent(s)
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                let mut is_float = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-') && s.ends_with(['e', 'E'])))
                {
                    if chars[i] == '.' {
                        // `1.x` where x isn't a digit: the dot is punctuation.
                        if i + 1 >= chars.len() || !chars[i + 1].is_ascii_digit() {
                            break;
                        }
                        is_float = true;
                    }
                    if chars[i] == 'e' || chars[i] == 'E' {
                        is_float = true;
                    }
                    s.push(chars[i]);
                    bump!();
                }
                if is_float {
                    Token::Float(s.parse().map_err(|_| {
                        PrestoError::user(format!(
                            "line {start_line}:{start_col}: invalid number '{s}'"
                        ))
                    })?)
                } else {
                    Token::Integer(s.parse().map_err(|_| {
                        PrestoError::user(format!(
                            "line {start_line}:{start_col}: invalid number '{s}'"
                        ))
                    })?)
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    bump!();
                }
                Token::Ident(s.to_ascii_lowercase())
            }
            c => {
                return Err(PrestoError::user(format!(
                    "line {start_line}:{start_col}: unexpected character '{c}'"
                )))
            }
        };
        tokens.push(Spanned {
            token,
            line: start_line,
            col: start_col,
        });
    }
    tokens.push(Spanned {
        token: Token::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token> {
        tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn keywords_lowercased_identifiers() {
        assert_eq!(
            toks("SELECT Foo FROM bar"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("foo".into()),
                Token::Ident("from".into()),
                Token::Ident("bar".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 3e2 10.0"),
            vec![
                Token::Integer(1),
                Token::Float(2.5),
                Token::Float(300.0),
                Token::Float(10.0),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("'it''s'"),
            vec![Token::String("it's".into()), Token::Eof]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a <= b <> c != d >= e"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ne,
                Token::Ident("c".into()),
                Token::Ne,
                Token::Ident("d".into()),
                Token::Ge,
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("select -- comment\n 1"),
            vec![Token::Ident("select".into()), Token::Integer(1), Token::Eof]
        );
    }

    #[test]
    fn qualified_dotted_name() {
        assert_eq!(
            toks("t.x"),
            vec![
                Token::Ident("t".into()),
                Token::Dot,
                Token::Ident("x".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn positions_reported() {
        let spanned = tokenize("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn error_on_garbage() {
        assert!(tokenize("select @").is_err());
    }
}
