//! The untyped abstract syntax tree produced by the parser.

use presto_common::Value;
use std::fmt;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A SELECT query.
    Query(Query),
    /// `INSERT INTO table SELECT ...`
    Insert { table: QualifiedName, query: Query },
    /// `EXPLAIN <query>` — plan text instead of results.
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE <query>` — execute the query, then return the
    /// fragment tree annotated with per-operator runtime statistics.
    ExplainAnalyze(Box<Statement>),
}

/// A (possibly catalog-qualified) object name: `[catalog.]table`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QualifiedName {
    pub parts: Vec<String>,
}

impl QualifiedName {
    pub fn new(parts: Vec<String>) -> Self {
        QualifiedName { parts }
    }

    pub fn single(name: impl Into<String>) -> Self {
        QualifiedName {
            parts: vec![name.into()],
        }
    }
}

impl fmt::Display for QualifiedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.parts.join("."))
    }
}

/// A query expression: one or more SELECT terms combined with UNION ALL,
/// with an optional trailing ORDER BY / LIMIT.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The UNION ALL terms; almost always exactly one.
    pub terms: Vec<Select>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

/// One SELECT term.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub where_: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

/// A FROM-clause relation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A base table, optionally aliased.
    Table {
        name: QualifiedName,
        alias: Option<String>,
    },
    /// A derived table: `(query) alias`.
    Derived { query: Box<Query>, alias: String },
    /// A join of two relations.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        /// `ON` condition; `None` only for CROSS joins.
        on: Option<AstExpr>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Cross,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinKind::Inner => "INNER",
            JoinKind::Left => "LEFT",
            JoinKind::Right => "RIGHT",
            JoinKind::Cross => "CROSS",
        })
    }
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: AstExpr,
    pub ascending: bool,
    /// NULLS FIRST/LAST; default per direction (last for ASC).
    pub nulls_first: bool,
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// An untyped scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Possibly-qualified column reference (`x`, `t.x`).
    Identifier(QualifiedName),
    Literal(Value),
    Binary {
        op: BinaryOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Unary {
        minus: bool,
        expr: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    Between {
        expr: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
        negated: bool,
    },
    InList {
        expr: Box<AstExpr>,
        list: Vec<AstExpr>,
        negated: bool,
    },
    Like {
        expr: Box<AstExpr>,
        pattern: Box<AstExpr>,
        negated: bool,
    },
    Case {
        /// `CASE operand WHEN v THEN r` sugar; `None` for searched CASE.
        operand: Option<Box<AstExpr>>,
        branches: Vec<(AstExpr, AstExpr)>,
        otherwise: Option<Box<AstExpr>>,
    },
    Cast {
        expr: Box<AstExpr>,
        type_name: String,
    },
    /// Function call — scalar, aggregate, or window (when `over` is set).
    Call {
        name: String,
        args: Vec<AstExpr>,
        distinct: bool,
        /// `COUNT(*)`.
        wildcard: bool,
        over: Option<WindowSpec>,
    },
}

/// `OVER (PARTITION BY ... ORDER BY ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    pub partition_by: Vec<AstExpr>,
    pub order_by: Vec<OrderItem>,
}

impl AstExpr {
    pub fn binary(op: BinaryOp, left: AstExpr, right: AstExpr) -> AstExpr {
        AstExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn ident(name: impl Into<String>) -> AstExpr {
        AstExpr::Identifier(QualifiedName::single(name))
    }

    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> AstExpr {
        AstExpr::Identifier(QualifiedName::new(vec![qualifier.into(), name.into()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualified_name_display() {
        assert_eq!(
            QualifiedName::new(vec!["hive".into(), "orders".into()]).to_string(),
            "hive.orders"
        );
        assert_eq!(QualifiedName::single("t").to_string(), "t");
    }

    #[test]
    fn builders() {
        let e = AstExpr::binary(
            BinaryOp::Eq,
            AstExpr::ident("a"),
            AstExpr::qualified("t", "b"),
        );
        match e {
            AstExpr::Binary {
                op: BinaryOp::Eq,
                left,
                right,
            } => {
                assert_eq!(*left, AstExpr::ident("a"));
                assert_eq!(*right, AstExpr::qualified("t", "b"));
            }
            _ => panic!(),
        }
    }
}
