//! Recursive-descent SQL parser.

use presto_common::time::parse_date;
use presto_common::{PrestoError, Result, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, Token};

/// Parse one SQL statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_at(&self, offset: usize) -> &Token {
        let i = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[i].token
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: &str) -> PrestoError {
        let s = &self.tokens[self.pos];
        PrestoError::user(format!(
            "line {}:{}: {msg}, found '{}'",
            s.line, s.col, s.token
        ))
    }

    /// Consume a keyword (lowercased identifier) if present.
    fn accept_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Ident(s) if s == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {}", kw.to_uppercase())))
        }
    }

    fn accept(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.accept(t) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{t}'")))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.error("expected end of statement"))
        }
    }

    /// An identifier (quoted or not), returned in its resolved form.
    fn identifier(&mut self) -> Result<String> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            _ => {
                self.pos -= 1;
                Err(self.error("expected identifier"))
            }
        }
    }

    fn qualified_name(&mut self) -> Result<QualifiedName> {
        let mut parts = vec![self.identifier()?];
        while self.accept(&Token::Dot) {
            parts.push(self.identifier()?);
        }
        Ok(QualifiedName::new(parts))
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.accept_kw("explain") {
            // ANALYZE is contextual, not reserved: `EXPLAIN ANALYZE` only.
            if self.accept_kw("analyze") {
                return Ok(Statement::ExplainAnalyze(Box::new(self.parse_statement()?)));
            }
            return Ok(Statement::Explain(Box::new(self.parse_statement()?)));
        }
        if self.accept_kw("insert") {
            self.expect_kw("into")?;
            let table = self.qualified_name()?;
            let query = self.parse_query()?;
            return Ok(Statement::Insert { table, query });
        }
        Ok(Statement::Query(self.parse_query()?))
    }

    fn parse_query(&mut self) -> Result<Query> {
        let mut terms = vec![self.parse_select()?];
        while self.peek_kw("union") {
            self.advance();
            self.expect_kw("all")?;
            terms.push(self.parse_select()?);
        }
        let order_by = if self.accept_kw("order") {
            self.expect_kw("by")?;
            self.order_items()?
        } else {
            Vec::new()
        };
        let limit = if self.accept_kw("limit") {
            match self.advance() {
                Token::Integer(n) if n >= 0 => Some(n as u64),
                _ => {
                    self.pos -= 1;
                    return Err(self.error("expected LIMIT count"));
                }
            }
        } else {
            None
        };
        Ok(Query {
            terms,
            order_by,
            limit,
        })
    }

    fn order_items(&mut self) -> Result<Vec<OrderItem>> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let ascending = if self.accept_kw("desc") {
                false
            } else {
                self.accept_kw("asc");
                true
            };
            // Default: NULLS LAST for ASC, NULLS FIRST for DESC (ANSI).
            let mut nulls_first = !ascending;
            if self.accept_kw("nulls") {
                if self.accept_kw("first") {
                    nulls_first = true;
                } else {
                    self.expect_kw("last")?;
                    nulls_first = false;
                }
            }
            items.push(OrderItem {
                expr,
                ascending,
                nulls_first,
            });
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.accept_kw("distinct");
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        let from = if self.accept_kw("from") {
            Some(self.table_ref()?)
        } else {
            None
        };
        let where_ = if self.accept_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let group_by = if self.accept_kw("group") {
            self.expect_kw("by")?;
            let mut exprs = vec![self.parse_expr()?];
            while self.accept(&Token::Comma) {
                exprs.push(self.parse_expr()?);
            }
            exprs
        } else {
            Vec::new()
        };
        let having = if self.accept_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.accept(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let (Token::Ident(name), Token::Dot, Token::Star) = (
            self.peek().clone(),
            self.peek_at(1).clone(),
            self.peek_at(2).clone(),
        ) {
            self.advance();
            self.advance();
            self.advance();
            return Ok(SelectItem::QualifiedWildcard(name));
        }
        let expr = self.parse_expr()?;
        let alias = if self.accept_kw("as") {
            Some(self.identifier()?)
        } else {
            // Bare alias: an identifier that is not a clause keyword.
            match self.peek() {
                Token::Ident(s) if !is_reserved(s) => Some(self.identifier()?),
                Token::QuotedIdent(_) => Some(self.identifier()?),
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_primary()?;
        loop {
            let kind = if self.accept_kw("cross") {
                self.expect_kw("join")?;
                JoinKind::Cross
            } else if self.accept_kw("inner") {
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.accept_kw("left") {
                self.accept_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else if self.accept_kw("right") {
                self.accept_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Right
            } else if self.accept_kw("join") {
                JoinKind::Inner
            } else if self.accept(&Token::Comma) {
                // Implicit cross join: FROM a, b
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.table_primary()?;
            let on = if kind != JoinKind::Cross {
                self.expect_kw("on")?;
                Some(self.parse_expr()?)
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn table_primary(&mut self) -> Result<TableRef> {
        if self.accept(&Token::LParen) {
            let query = self.parse_query()?;
            self.expect(&Token::RParen)?;
            self.accept_kw("as");
            let alias = self.identifier()?;
            return Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.qualified_name()?;
        let alias = if self.accept_kw("as") {
            Some(self.identifier()?)
        } else {
            match self.peek() {
                Token::Ident(s) if !is_reserved(s) => Some(self.identifier()?),
                Token::QuotedIdent(_) => Some(self.identifier()?),
                _ => None,
            }
        };
        Ok(TableRef::Table { name, alias })
    }

    // ---- expressions, precedence climbing ----

    fn parse_expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.accept_kw("or") {
            let right = self.and_expr()?;
            left = AstExpr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.accept_kw("and") {
            let right = self.not_expr()?;
            left = AstExpr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.accept_kw("not") {
            return Ok(AstExpr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<AstExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.accept_kw("is") {
            let negated = self.accept_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek_kw("not")
            && matches!(self.peek_at(1), Token::Ident(s) if s == "between" || s == "in" || s == "like")
        {
            self.advance();
            true
        } else {
            false
        };
        if self.accept_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.accept_kw("in") {
            self.expect(&Token::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.accept(&Token::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.accept_kw("like") {
            let pattern = self.additive()?;
            return Ok(AstExpr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.error("expected BETWEEN, IN or LIKE after NOT"));
        }
        let op = match self.peek() {
            Token::Eq => BinaryOp::Eq,
            Token::Ne => BinaryOp::Ne,
            Token::Lt => BinaryOp::Lt,
            Token::Le => BinaryOp::Le,
            Token::Gt => BinaryOp::Gt,
            Token::Ge => BinaryOp::Ge,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(AstExpr::binary(op, left, right))
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Add,
                Token::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = AstExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                Token::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = AstExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.accept(&Token::Minus) {
            return Ok(AstExpr::Unary {
                minus: true,
                expr: Box::new(self.unary()?),
            });
        }
        if self.accept(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.peek().clone() {
            Token::Integer(v) => {
                self.advance();
                Ok(AstExpr::Literal(Value::Bigint(v)))
            }
            Token::Float(v) => {
                self.advance();
                Ok(AstExpr::Literal(Value::Double(v)))
            }
            Token::String(s) => {
                self.advance();
                Ok(AstExpr::Literal(Value::varchar(s)))
            }
            Token::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(word) => match word.as_str() {
                "true" => {
                    self.advance();
                    Ok(AstExpr::Literal(Value::Boolean(true)))
                }
                "false" => {
                    self.advance();
                    Ok(AstExpr::Literal(Value::Boolean(false)))
                }
                "null" => {
                    self.advance();
                    Ok(AstExpr::Literal(Value::Null))
                }
                "date" if matches!(self.peek_at(1), Token::String(_)) => {
                    self.advance();
                    let s = match self.advance() {
                        Token::String(s) => s,
                        _ => unreachable!(),
                    };
                    let days = parse_date(&s)
                        .ok_or_else(|| PrestoError::user(format!("invalid date literal '{s}'")))?;
                    Ok(AstExpr::Literal(Value::Date(days)))
                }
                "case" => self.case_expr(),
                "cast" => self.cast_expr(),
                w if is_reserved(w) => Err(self.error("expected expression")),
                _ => self.identifier_or_call(),
            },
            Token::QuotedIdent(_) => self.identifier_or_call(),
            _ => Err(self.error("expected expression")),
        }
    }

    fn case_expr(&mut self) -> Result<AstExpr> {
        self.expect_kw("case")?;
        let operand = if !self.peek_kw("when") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.accept_kw("when") {
            let cond = self.parse_expr()?;
            self.expect_kw("then")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch"));
        }
        let otherwise = if self.accept_kw("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(AstExpr::Case {
            operand,
            branches,
            otherwise,
        })
    }

    fn cast_expr(&mut self) -> Result<AstExpr> {
        self.expect_kw("cast")?;
        self.expect(&Token::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_kw("as")?;
        let type_name = self.identifier()?;
        self.expect(&Token::RParen)?;
        Ok(AstExpr::Cast {
            expr: Box::new(expr),
            type_name,
        })
    }

    fn identifier_or_call(&mut self) -> Result<AstExpr> {
        let name = self.qualified_name()?;
        if !matches!(self.peek(), Token::LParen) {
            return Ok(AstExpr::Identifier(name));
        }
        if name.parts.len() != 1 {
            return Err(self.error("qualified function names are not supported"));
        }
        let fname = name.parts.into_iter().next().unwrap();
        self.advance(); // (
        let mut distinct = false;
        let mut wildcard = false;
        let mut args = Vec::new();
        if self.accept(&Token::Star) {
            wildcard = true;
        } else if !matches!(self.peek(), Token::RParen) {
            distinct = self.accept_kw("distinct");
            args.push(self.parse_expr()?);
            while self.accept(&Token::Comma) {
                args.push(self.parse_expr()?);
            }
        }
        self.expect(&Token::RParen)?;
        let over = if self.accept_kw("over") {
            self.expect(&Token::LParen)?;
            let partition_by = if self.accept_kw("partition") {
                self.expect_kw("by")?;
                let mut exprs = vec![self.parse_expr()?];
                while self.accept(&Token::Comma) {
                    exprs.push(self.parse_expr()?);
                }
                exprs
            } else {
                Vec::new()
            };
            let order_by = if self.accept_kw("order") {
                self.expect_kw("by")?;
                self.order_items()?
            } else {
                Vec::new()
            };
            self.expect(&Token::RParen)?;
            Some(WindowSpec {
                partition_by,
                order_by,
            })
        } else {
            None
        };
        Ok(AstExpr::Call {
            name: fname,
            args,
            distinct,
            wildcard,
            over,
        })
    }
}

/// Keywords that terminate an implicit alias position. Keeping this list
/// tight (only clause starters) lets users write `SELECT a value FROM t`.
fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "select"
            | "from"
            | "where"
            | "group"
            | "having"
            | "order"
            | "limit"
            | "union"
            | "join"
            | "inner"
            | "left"
            | "right"
            | "full"
            | "cross"
            | "on"
            | "as"
            | "and"
            | "or"
            | "not"
            | "between"
            | "in"
            | "like"
            | "is"
            | "when"
            | "then"
            | "else"
            | "end"
            | "asc"
            | "desc"
            | "nulls"
            | "over"
            | "insert"
            | "into"
            | "explain"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(sql: &str) -> Query {
        match parse_statement(sql).unwrap() {
            Statement::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn paper_example_query_parses() {
        // The §IV-B3 example from the paper.
        let q = query(
            "SELECT orders.orderkey, SUM(tax) \
             FROM orders \
             LEFT JOIN lineitem ON orders.orderkey = lineitem.orderkey \
             WHERE discount = 0 \
             GROUP BY orders.orderkey",
        );
        let select = &q.terms[0];
        assert_eq!(select.items.len(), 2);
        assert_eq!(select.group_by.len(), 1);
        match select.from.as_ref().unwrap() {
            TableRef::Join {
                kind: JoinKind::Left,
                on: Some(_),
                ..
            } => {}
            other => panic!("expected left join, got {other:?}"),
        }
        assert!(select.where_.is_some());
    }

    #[test]
    fn select_items_and_aliases() {
        let q = query("SELECT a, b AS total, c d, t.* , * FROM t");
        let items = &q.terms[0].items;
        assert_eq!(items.len(), 5);
        assert!(matches!(&items[0], SelectItem::Expr { alias: None, .. }));
        assert!(matches!(&items[1], SelectItem::Expr { alias: Some(a), .. } if a == "total"));
        assert!(matches!(&items[2], SelectItem::Expr { alias: Some(a), .. } if a == "d"));
        assert!(matches!(&items[3], SelectItem::QualifiedWildcard(t) if t == "t"));
        assert!(matches!(&items[4], SelectItem::Wildcard));
    }

    #[test]
    fn operator_precedence() {
        let q = query("SELECT 1 + 2 * 3");
        match &q.terms[0].items[0] {
            SelectItem::Expr {
                expr:
                    AstExpr::Binary {
                        op: BinaryOp::Add,
                        right,
                        ..
                    },
                ..
            } => {
                assert!(matches!(
                    **right,
                    AstExpr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
        let q = query("SELECT a OR b AND c");
        match &q.terms[0].items[0] {
            SelectItem::Expr {
                expr:
                    AstExpr::Binary {
                        op: BinaryOp::Or,
                        right,
                        ..
                    },
                ..
            } => {
                assert!(matches!(
                    **right,
                    AstExpr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_in_like_not_variants() {
        let q = query(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT IN (1, 2) \
             AND c LIKE 'x%' AND d NOT LIKE '%y' AND e IS NOT NULL",
        );
        let w = q.terms[0].where_.as_ref().unwrap();
        let s = format!("{w:?}");
        assert!(s.contains("Between"));
        assert!(s.contains("InList"));
        assert!(s.contains("Like"));
        assert!(s.contains("negated: true"));
    }

    #[test]
    fn aggregates_and_windows() {
        let q = query(
            "SELECT count(*), sum(DISTINCT x), \
             rank() OVER (PARTITION BY region ORDER BY sales DESC) FROM t",
        );
        let items = &q.terms[0].items;
        assert!(matches!(
            &items[0],
            SelectItem::Expr {
                expr: AstExpr::Call { wildcard: true, .. },
                ..
            }
        ));
        assert!(matches!(
            &items[1],
            SelectItem::Expr {
                expr: AstExpr::Call { distinct: true, .. },
                ..
            }
        ));
        match &items[2] {
            SelectItem::Expr {
                expr: AstExpr::Call {
                    over: Some(spec), ..
                },
                ..
            } => {
                assert_eq!(spec.partition_by.len(), 1);
                assert_eq!(spec.order_by.len(), 1);
                assert!(!spec.order_by[0].ascending);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn derived_tables_and_subqueries() {
        let q = query("SELECT x FROM (SELECT a AS x FROM t WHERE a > 0) sub WHERE x < 10");
        match q.terms[0].from.as_ref().unwrap() {
            TableRef::Derived { alias, .. } => assert_eq!(alias, "sub"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn union_all_order_limit() {
        let q = query("SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 DESC LIMIT 10");
        assert_eq!(q.terms.len(), 2);
        assert_eq!(q.order_by.len(), 1);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn insert_and_explain() {
        match parse_statement("INSERT INTO target SELECT * FROM src").unwrap() {
            Statement::Insert { table, .. } => assert_eq!(table.to_string(), "target"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("EXPLAIN SELECT 1").unwrap(),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn case_and_cast() {
        let q = query(
            "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END, \
             CASE a WHEN 1 THEN 'one' END, CAST(a AS double) FROM t",
        );
        let items = &q.terms[0].items;
        assert!(matches!(
            &items[0],
            SelectItem::Expr {
                expr: AstExpr::Case { operand: None, .. },
                ..
            }
        ));
        assert!(matches!(
            &items[1],
            SelectItem::Expr {
                expr: AstExpr::Case {
                    operand: Some(_),
                    ..
                },
                ..
            }
        ));
        assert!(matches!(
            &items[2],
            SelectItem::Expr {
                expr: AstExpr::Cast { .. },
                ..
            }
        ));
    }

    #[test]
    fn date_literals() {
        let q = query("SELECT * FROM t WHERE d >= DATE '1995-01-01'");
        let s = format!("{:?}", q.terms[0].where_);
        assert!(s.contains("Date("));
        assert!(parse_statement("SELECT DATE 'nope'").is_err());
    }

    #[test]
    fn implicit_cross_join_with_comma() {
        let q = query("SELECT * FROM a, b WHERE a.x = b.y");
        assert!(matches!(
            q.terms[0].from.as_ref().unwrap(),
            TableRef::Join {
                kind: JoinKind::Cross,
                ..
            }
        ));
    }

    #[test]
    fn error_messages_carry_positions() {
        let err = parse_statement("SELECT FROM t").unwrap_err();
        assert!(err.message.contains("line 1:8"), "{}", err.message);
        assert!(parse_statement("SELECT a FROM").is_err());
        assert!(parse_statement("SELECT a FROM t WHERE").is_err());
        assert!(parse_statement("SELECT a FROM t extra garbage here").is_err());
    }

    #[test]
    fn catalog_qualified_table() {
        let q = query("SELECT * FROM hive.orders");
        match q.terms[0].from.as_ref().unwrap() {
            TableRef::Table { name, .. } => assert_eq!(name.to_string(), "hive.orders"),
            other => panic!("{other:?}"),
        }
    }
}
