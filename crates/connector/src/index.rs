//! Index lookups for index-nested-loop joins.
//!
//! §IV-B3: "If connectors expose a data layout in which join columns are
//! marked as indices, the optimizer is able to determine if using an index
//! nested loop join would be an appropriate strategy. This can make it
//! extremely efficient to operate on normalized data stored in a data
//! warehouse by joining against production data stores."

use presto_common::Result;
use presto_page::Page;

/// A point-lookup interface over an indexed table.
pub trait IndexSource: Send {
    /// Probe the index with a page of key rows.
    ///
    /// Returns the matching table rows (projected to the output columns the
    /// source was created with) and, parallel to those rows, the index of
    /// the input key row each output row matched. Keys with no match simply
    /// produce no output rows (the join operator handles outer semantics).
    fn lookup(&mut self, keys: &Page) -> Result<(Page, Vec<u32>)>;
}
