//! Predicate pushdown vocabulary.
//!
//! A [`TupleDomain`] is the engine↔connector contract for filters: a
//! conjunction of per-column [`Domain`]s, each either a finite set of
//! allowed values (from `=` / `IN`) or a range (from `<`, `BETWEEN`, …).
//! The optimizer extracts domains from WHERE conjuncts (§IV-B3-2) and hands
//! them to connectors, which use them for shard pruning, stripe skipping
//! via min/max statistics, and index selection.

use presto_common::Value;
use std::collections::BTreeMap;
use std::fmt;

/// The allowed values of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// A finite set of allowed (non-null) values, e.g. from `x IN (1,2)`.
    Set(Vec<Value>),
    /// An interval with optional inclusive bounds.
    Range {
        min: Option<Value>,
        max: Option<Value>,
    },
}

impl Domain {
    /// Domain for `col = v`.
    pub fn point(v: Value) -> Domain {
        Domain::Set(vec![v])
    }

    /// Domain for `col >= v` (or `> v` tightened by the caller).
    pub fn at_least(v: Value) -> Domain {
        Domain::Range {
            min: Some(v),
            max: None,
        }
    }

    /// Domain for `col <= v`.
    pub fn at_most(v: Value) -> Domain {
        Domain::Range {
            min: None,
            max: Some(v),
        }
    }

    /// Whether `v` (non-null) satisfies this domain. NULL never matches —
    /// pushdown domains come from predicates that reject NULL.
    pub fn contains(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        match self {
            Domain::Set(values) => values
                .iter()
                .any(|allowed| v.sql_cmp(allowed) == Some(std::cmp::Ordering::Equal)),
            Domain::Range { min, max } => {
                if let Some(min) = min {
                    match v.sql_cmp(min) {
                        Some(std::cmp::Ordering::Less) | None => return false,
                        _ => {}
                    }
                }
                if let Some(max) = max {
                    match v.sql_cmp(max) {
                        Some(std::cmp::Ordering::Greater) | None => return false,
                        _ => {}
                    }
                }
                true
            }
        }
    }

    /// Whether a value interval `[lo, hi]` could contain a matching value.
    /// Used for stripe/shard pruning from min-max statistics; `None` bounds
    /// mean unknown and conservatively overlap.
    pub fn overlaps(&self, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        match self {
            Domain::Set(values) => values.iter().any(|v| {
                let above_lo = match lo {
                    Some(lo) => !matches!(v.sql_cmp(lo), Some(std::cmp::Ordering::Less)),
                    None => true,
                };
                let below_hi = match hi {
                    Some(hi) => !matches!(v.sql_cmp(hi), Some(std::cmp::Ordering::Greater)),
                    None => true,
                };
                above_lo && below_hi
            }),
            Domain::Range { min, max } => {
                let min_ok = match (max, lo) {
                    // domain entirely below the interval?
                    (Some(dmax), Some(lo)) => {
                        !matches!(dmax.sql_cmp(lo), Some(std::cmp::Ordering::Less))
                    }
                    _ => true,
                };
                let max_ok = match (min, hi) {
                    (Some(dmin), Some(hi)) => {
                        !matches!(dmin.sql_cmp(hi), Some(std::cmp::Ordering::Greater))
                    }
                    _ => true,
                };
                min_ok && max_ok
            }
        }
    }

    /// Intersect with another domain over the same column (conjunction).
    /// Returns `None` when the intersection is provably empty.
    pub fn intersect(&self, other: &Domain) -> Option<Domain> {
        match (self, other) {
            (Domain::Set(a), Domain::Set(_)) => {
                let values: Vec<Value> = a.iter().filter(|v| other.contains(v)).cloned().collect();
                if values.is_empty() {
                    None
                } else {
                    Some(Domain::Set(values))
                }
            }
            (Domain::Set(a), r @ Domain::Range { .. }) => {
                let values: Vec<Value> = a.iter().filter(|v| r.contains(v)).cloned().collect();
                if values.is_empty() {
                    None
                } else {
                    Some(Domain::Set(values))
                }
            }
            (r @ Domain::Range { .. }, s @ Domain::Set(_)) => s.intersect(r),
            (
                Domain::Range {
                    min: min1,
                    max: max1,
                },
                Domain::Range {
                    min: min2,
                    max: max2,
                },
            ) => {
                let min = match (min1, min2) {
                    (Some(a), Some(b)) => {
                        Some(if a.sql_cmp(b) == Some(std::cmp::Ordering::Greater) {
                            a.clone()
                        } else {
                            b.clone()
                        })
                    }
                    (Some(a), None) => Some(a.clone()),
                    (None, b) => b.clone(),
                };
                let max = match (max1, max2) {
                    (Some(a), Some(b)) => Some(if a.sql_cmp(b) == Some(std::cmp::Ordering::Less) {
                        a.clone()
                    } else {
                        b.clone()
                    }),
                    (Some(a), None) => Some(a.clone()),
                    (None, b) => b.clone(),
                };
                if let (Some(lo), Some(hi)) = (&min, &max) {
                    if lo.sql_cmp(hi) == Some(std::cmp::Ordering::Greater) {
                        return None;
                    }
                }
                Some(Domain::Range { min, max })
            }
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Set(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Domain::Range { min, max } => {
                match min {
                    Some(v) => write!(f, "[{v}")?,
                    None => write!(f, "(-inf")?,
                }
                match max {
                    Some(v) => write!(f, ", {v}]"),
                    None => write!(f, ", +inf)"),
                }
            }
        }
    }
}

/// Per-column constraint map (column index → domain). `TupleDomain::all()`
/// (no entries) means "no constraint".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TupleDomain {
    domains: BTreeMap<usize, Domain>,
    /// Provably no rows match (e.g. `x = 1 AND x = 2`).
    none: bool,
}

impl TupleDomain {
    /// No constraint.
    pub fn all() -> TupleDomain {
        TupleDomain::default()
    }

    /// Provably empty result.
    pub fn none() -> TupleDomain {
        TupleDomain {
            domains: BTreeMap::new(),
            none: true,
        }
    }

    pub fn is_all(&self) -> bool {
        !self.none && self.domains.is_empty()
    }

    pub fn is_none(&self) -> bool {
        self.none
    }

    pub fn domain(&self, column: usize) -> Option<&Domain> {
        self.domains.get(&column)
    }

    pub fn columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.domains.keys().copied()
    }

    /// Add (intersect) a constraint on `column`.
    pub fn constrain(&mut self, column: usize, domain: Domain) {
        if self.none {
            return;
        }
        match self.domains.remove(&column) {
            None => {
                self.domains.insert(column, domain);
            }
            Some(existing) => match existing.intersect(&domain) {
                Some(merged) => {
                    self.domains.insert(column, merged);
                }
                None => self.none = true,
            },
        }
    }

    /// Whether a row (given a value accessor) can satisfy all constraints.
    pub fn matches(&self, value_of: impl Fn(usize) -> Value) -> bool {
        if self.none {
            return false;
        }
        self.domains
            .iter()
            .all(|(&col, domain)| domain.contains(&value_of(col)))
    }

    /// Remap column indices (e.g. table schema → projected channels),
    /// dropping constraints on unmapped columns (they stay engine-side).
    pub fn remap(&self, mapping: impl Fn(usize) -> Option<usize>) -> TupleDomain {
        if self.none {
            return TupleDomain::none();
        }
        let mut out = TupleDomain::all();
        for (&col, domain) in &self.domains {
            if let Some(new) = mapping(col) {
                out.constrain(new, domain.clone());
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn point_and_range_membership() {
        let d = Domain::point(Value::Bigint(5));
        assert!(d.contains(&Value::Bigint(5)));
        assert!(!d.contains(&Value::Bigint(6)));
        assert!(!d.contains(&Value::Null));
        let r = Domain::Range {
            min: Some(Value::Bigint(1)),
            max: Some(Value::Bigint(10)),
        };
        assert!(r.contains(&Value::Bigint(1)));
        assert!(r.contains(&Value::Bigint(10)));
        assert!(!r.contains(&Value::Bigint(0)));
    }

    #[test]
    fn intersection() {
        let a = Domain::Range {
            min: Some(Value::Bigint(0)),
            max: Some(Value::Bigint(10)),
        };
        let b = Domain::Range {
            min: Some(Value::Bigint(5)),
            max: None,
        };
        assert_eq!(
            a.intersect(&b),
            Some(Domain::Range {
                min: Some(Value::Bigint(5)),
                max: Some(Value::Bigint(10))
            })
        );
        let c = Domain::Set(vec![Value::Bigint(3), Value::Bigint(7)]);
        assert_eq!(c.intersect(&b), Some(Domain::Set(vec![Value::Bigint(7)])));
        let disjoint = Domain::Range {
            min: Some(Value::Bigint(20)),
            max: None,
        };
        assert_eq!(a.intersect(&disjoint), None);
    }

    #[test]
    fn tuple_domain_conjunction_to_none() {
        let mut td = TupleDomain::all();
        td.constrain(0, Domain::point(Value::Bigint(1)));
        td.constrain(0, Domain::point(Value::Bigint(2)));
        assert!(td.is_none());
        assert!(!td.matches(|_| Value::Bigint(1)));
    }

    #[test]
    fn row_matching() {
        let mut td = TupleDomain::all();
        td.constrain(0, Domain::point(Value::Bigint(1)));
        td.constrain(2, Domain::at_least(Value::Double(0.5)));
        assert!(td.matches(|c| match c {
            0 => Value::Bigint(1),
            2 => Value::Double(0.9),
            _ => Value::Null,
        }));
        assert!(!td.matches(|c| match c {
            0 => Value::Bigint(1),
            2 => Value::Double(0.1),
            _ => Value::Null,
        }));
    }

    #[test]
    fn overlap_pruning() {
        let d = Domain::Range {
            min: Some(Value::Bigint(100)),
            max: None,
        };
        // Stripe with max 50 cannot match.
        assert!(!d.overlaps(Some(&Value::Bigint(0)), Some(&Value::Bigint(50))));
        assert!(d.overlaps(Some(&Value::Bigint(0)), Some(&Value::Bigint(150))));
        // Unknown stats conservatively overlap.
        assert!(d.overlaps(None, None));
        let s = Domain::Set(vec![Value::Bigint(7)]);
        assert!(s.overlaps(Some(&Value::Bigint(0)), Some(&Value::Bigint(10))));
        assert!(!s.overlaps(Some(&Value::Bigint(8)), Some(&Value::Bigint(10))));
    }

    #[test]
    fn remapping() {
        let mut td = TupleDomain::all();
        td.constrain(3, Domain::point(Value::Bigint(1)));
        td.constrain(5, Domain::point(Value::Bigint(2)));
        let remapped = td.remap(|c| if c == 3 { Some(0) } else { None });
        assert!(remapped.domain(0).is_some());
        assert_eq!(remapped.columns().count(), 1);
    }
}
