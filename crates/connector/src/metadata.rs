//! The Metadata API: tables, schemas, statistics, and data layouts.

use presto_common::{Result, Schema, TableStatistics};

/// How a layout's data is partitioned across storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// Column indices (into the table schema) data is partitioned on.
    pub columns: Vec<usize>,
    /// Number of buckets/shards.
    pub bucket_count: usize,
}

/// Physical properties of one layout of a table (§IV-B3-1): "Connectors
/// report locations and other data properties such as partitioning,
/// sorting, grouping, and indices. Connectors can return multiple layouts
/// for a single table."
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataLayout {
    /// Layout identifier, unique within the table (e.g. "primary",
    /// "by_region"). Passed back through split enumeration.
    pub name: String,
    /// Bucketed partitioning, if any. Tables bucketed the same way on the
    /// same columns can be joined co-located, eliding the shuffle.
    pub partitioning: Option<Partitioning>,
    /// Columns each partition is sorted on (prefix order).
    pub sorted_by: Vec<usize>,
    /// Column sets with index support: point lookups on these columns are
    /// efficient, enabling index-nested-loop joins and shard pruning.
    pub indexes: Vec<Vec<usize>>,
    /// Whether partitions are pinned to specific nodes (shared-nothing
    /// storage like Raptor); constrains leaf task placement (§IV-D2).
    pub node_local: bool,
}

impl DataLayout {
    /// An unconstrained layout (randomly distributed, no indexes).
    pub fn unpartitioned() -> DataLayout {
        DataLayout {
            name: "default".to_string(),
            ..DataLayout::default()
        }
    }

    /// Whether this layout has an index covering exactly the given columns
    /// (order-insensitive).
    pub fn has_index_on(&self, columns: &[usize]) -> bool {
        let mut want = columns.to_vec();
        want.sort_unstable();
        self.indexes.iter().any(|idx| {
            let mut have = idx.clone();
            have.sort_unstable();
            have == want
        })
    }
}

/// Table-level metadata operations of one connector.
pub trait ConnectorMetadata: Send + Sync {
    /// All table names in this catalog.
    fn list_tables(&self) -> Vec<String>;

    /// Schema of `table`; user error if it does not exist.
    fn table_schema(&self, table: &str) -> Result<Schema>;

    /// Statistics, when the connector maintains them. The default — no
    /// statistics — is the Fig. 6 "no stats" configuration: the CBO falls
    /// back to heuristics.
    fn table_statistics(&self, _table: &str) -> TableStatistics {
        TableStatistics::unknown()
    }

    /// Available physical layouts. The optimizer picks the most useful one
    /// for the query (§IV-B3-1); connectors must return at least one.
    fn table_layouts(&self, _table: &str) -> Vec<DataLayout> {
        vec![DataLayout::unpartitioned()]
    }

    /// Create a table (used by INSERT into fresh tables and by loaders).
    fn create_table(&self, table: &str, schema: &Schema) -> Result<()>;
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn index_lookup_is_order_insensitive() {
        let layout = DataLayout {
            indexes: vec![vec![2, 0]],
            ..DataLayout::unpartitioned()
        };
        assert!(layout.has_index_on(&[0, 2]));
        assert!(layout.has_index_on(&[2, 0]));
        assert!(!layout.has_index_on(&[0]));
    }

    #[test]
    fn default_layout_is_unconstrained() {
        let l = DataLayout::unpartitioned();
        assert!(l.partitioning.is_none());
        assert!(!l.node_local);
        assert!(l.sorted_by.is_empty());
    }
}
