//! The Data Source API: streaming page reads.

use presto_common::Result;
use presto_page::Page;

use crate::domain::TupleDomain;
use crate::split::Split;

/// Options the engine passes when opening a split for reading.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// Columns to read, as indices into the table schema, in output order.
    pub columns: Vec<usize>,
    /// Predicate (over table-schema column indices) the connector may use
    /// to skip data. Connectors apply it best-effort; the engine always
    /// re-applies the full filter.
    pub predicate: TupleDomain,
    /// Produce lazy blocks that decode on first access (§V-D). Connectors
    /// that cannot are free to ignore this.
    pub lazy: bool,
    /// Target rows per page.
    pub target_page_rows: usize,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            columns: Vec::new(),
            predicate: TupleDomain::all(),
            lazy: true,
            target_page_rows: 1024,
        }
    }
}

/// A streaming reader over one split.
pub trait PageSource: Send {
    /// The next page, or `None` when the split is exhausted.
    fn next_page(&mut self) -> Result<Option<Page>>;

    /// Bytes fetched from storage so far (post-pruning, pre-decode). Feeds
    /// the §V-D "data fetched" metric.
    fn bytes_read(&self) -> u64 {
        0
    }

    /// Rows the source has produced so far.
    fn rows_read(&self) -> u64 {
        0
    }
}

/// Creates [`PageSource`]s for splits of this connector.
pub trait PageSourceFactory: Send + Sync {
    fn create_source(&self, split: &Split, options: &ScanOptions) -> Result<Box<dyn PageSource>>;
}

/// A [`PageSource`] over in-memory pages (used by the memory connector and
/// tests).
pub struct FixedPageSource {
    pages: std::vec::IntoIter<Page>,
    rows: u64,
}

impl FixedPageSource {
    pub fn new(pages: Vec<Page>) -> FixedPageSource {
        FixedPageSource {
            pages: pages.into_iter(),
            rows: 0,
        }
    }
}

impl PageSource for FixedPageSource {
    fn next_page(&mut self) -> Result<Option<Page>> {
        match self.pages.next() {
            Some(p) => {
                self.rows += p.row_count() as u64;
                Ok(Some(p))
            }
            None => Ok(None),
        }
    }

    fn rows_read(&self) -> u64 {
        self.rows
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_page::blocks::LongBlock;
    use presto_page::Block;

    #[test]
    fn fixed_source_streams_pages() {
        let p1 = Page::new(vec![Block::from(LongBlock::from_values(vec![1, 2]))]);
        let p2 = Page::new(vec![Block::from(LongBlock::from_values(vec![3]))]);
        let mut src = FixedPageSource::new(vec![p1, p2]);
        assert_eq!(src.next_page().unwrap().unwrap().row_count(), 2);
        assert_eq!(src.next_page().unwrap().unwrap().row_count(), 1);
        assert!(src.next_page().unwrap().is_none());
        assert_eq!(src.rows_read(), 3);
    }

    #[test]
    fn scan_options_default_is_lazy_unconstrained() {
        let o = ScanOptions::default();
        assert!(o.lazy);
        assert!(o.predicate.is_all());
    }
}
