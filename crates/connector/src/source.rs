//! The Data Source API: streaming page reads.

use presto_common::Result;
use presto_page::Page;
use std::sync::Arc;

use crate::domain::TupleDomain;
use crate::split::Split;

/// A predicate that may *narrow while the scan runs*: the engine publishes
/// join build-side key domains here once the build finalizes, and page
/// sources re-consult it between stripes to skip data a static pushdown
/// could not. Connectors apply it best-effort — the engine always re-applies
/// the full filter — so ignoring it is always correct, just slower.
pub trait DynamicFilter: Send + Sync {
    /// The current narrowed domain over table-schema column indices, or
    /// `None` if no filter has arrived yet. May tighten between calls.
    fn domain(&self) -> Option<TupleDomain>;

    /// Connector reports stripes (or equivalent units) it skipped because
    /// of the dynamic domain, for the operator stats tree.
    fn record_stripes_pruned(&self, _n: u64) {}
}

/// Options the engine passes when opening a split for reading.
#[derive(Clone)]
pub struct ScanOptions {
    /// Columns to read, as indices into the table schema, in output order.
    pub columns: Vec<usize>,
    /// Predicate (over table-schema column indices) the connector may use
    /// to skip data. Connectors apply it best-effort; the engine always
    /// re-applies the full filter.
    pub predicate: TupleDomain,
    /// Runtime-narrowing predicate from dynamic filtering, if any join
    /// upstream of this scan publishes one.
    pub dynamic_filter: Option<Arc<dyn DynamicFilter>>,
    /// Produce lazy blocks that decode on first access (§V-D). Connectors
    /// that cannot are free to ignore this.
    pub lazy: bool,
    /// Target rows per page.
    pub target_page_rows: usize,
}

impl std::fmt::Debug for ScanOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanOptions")
            .field("columns", &self.columns)
            .field("predicate", &self.predicate)
            .field("dynamic_filter", &self.dynamic_filter.is_some())
            .field("lazy", &self.lazy)
            .field("target_page_rows", &self.target_page_rows)
            .finish()
    }
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            columns: Vec::new(),
            predicate: TupleDomain::all(),
            dynamic_filter: None,
            lazy: true,
            target_page_rows: 1024,
        }
    }
}

/// A streaming reader over one split.
pub trait PageSource: Send {
    /// The next page, or `None` when the split is exhausted.
    fn next_page(&mut self) -> Result<Option<Page>>;

    /// Bytes fetched from storage so far (post-pruning, pre-decode). Feeds
    /// the §V-D "data fetched" metric.
    fn bytes_read(&self) -> u64 {
        0
    }

    /// Rows the source has produced so far.
    fn rows_read(&self) -> u64 {
        0
    }
}

/// Creates [`PageSource`]s for splits of this connector.
pub trait PageSourceFactory: Send + Sync {
    fn create_source(&self, split: &Split, options: &ScanOptions) -> Result<Box<dyn PageSource>>;
}

/// A [`PageSource`] over in-memory pages (used by the memory connector and
/// tests).
pub struct FixedPageSource {
    pages: std::vec::IntoIter<Page>,
    rows: u64,
}

impl FixedPageSource {
    pub fn new(pages: Vec<Page>) -> FixedPageSource {
        FixedPageSource {
            pages: pages.into_iter(),
            rows: 0,
        }
    }
}

impl PageSource for FixedPageSource {
    fn next_page(&mut self) -> Result<Option<Page>> {
        match self.pages.next() {
            Some(p) => {
                self.rows += p.row_count() as u64;
                Ok(Some(p))
            }
            None => Ok(None),
        }
    }

    fn rows_read(&self) -> u64 {
        self.rows
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_page::blocks::LongBlock;
    use presto_page::Block;

    #[test]
    fn fixed_source_streams_pages() {
        let p1 = Page::new(vec![Block::from(LongBlock::from_values(vec![1, 2]))]);
        let p2 = Page::new(vec![Block::from(LongBlock::from_values(vec![3]))]);
        let mut src = FixedPageSource::new(vec![p1, p2]);
        assert_eq!(src.next_page().unwrap().unwrap().row_count(), 2);
        assert_eq!(src.next_page().unwrap().unwrap().row_count(), 1);
        assert!(src.next_page().unwrap().is_none());
        assert_eq!(src.rows_read(), 3);
    }

    #[test]
    fn scan_options_default_is_lazy_unconstrained() {
        let o = ScanOptions::default();
        assert!(o.lazy);
        assert!(o.predicate.is_all());
    }
}
