//! The Connector SPI: Presto's pluggable data-source interface.
//!
//! §III of the paper: "plugins also provide connectors, which enable Presto
//! to communicate with external data stores through the Connector API,
//! which is composed of four parts: the Metadata API, Data Location API,
//! Data Source API, and Data Sink API." This crate defines those four
//! surfaces plus the supporting vocabulary:
//!
//! * [`metadata::ConnectorMetadata`] — tables, schemas, statistics and
//!   [`metadata::DataLayout`]s (partitioning / sorting / index properties
//!   the optimizer exploits, §IV-B3-1);
//! * [`split::SplitSource`] — lazy, batched split enumeration
//!   (Data Location API, §IV-D3);
//! * [`source::PageSource`] — streaming page reads for one split
//!   (Data Source API);
//! * [`sink::PageSink`] — streaming page writes (Data Sink API, §IV-E3);
//! * [`domain::TupleDomain`] — the predicate representation pushed down to
//!   connectors (§IV-B3-2);
//! * [`index::IndexSource`] — point-lookup joins against connector indexes.
//!
//! Everything is object-safe so engines hold `Arc<dyn Connector>`.

pub mod connector;
pub mod domain;
pub mod index;
pub mod metadata;
pub mod sink;
pub mod source;
pub mod split;

pub use connector::{CatalogManager, Connector};
pub use domain::{Domain, TupleDomain};
pub use index::IndexSource;
pub use metadata::{ConnectorMetadata, DataLayout, Partitioning};
pub use sink::{PageSink, PageSinkFactory};
pub use source::{DynamicFilter, PageSource, PageSourceFactory, ScanOptions};
pub use split::{FixedSplitSource, Split, SplitPayload, SplitSource};
