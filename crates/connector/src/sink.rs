//! The Data Sink API: streaming page writes.
//!
//! §IV-E3: write performance is driven by write concurrency; the engine
//! scales the number of writer tasks adaptively. Each writer task holds one
//! [`PageSink`]; the connector decides how sink output maps to storage
//! units (files, shards). `finish` returns the rows written so the
//! coordinator can report `INSERT` row counts and commit metadata.

use presto_common::Result;
use presto_page::Page;

/// A streaming writer owned by one table-writer operator instance.
pub trait PageSink: Send {
    /// Append a page. May block on storage backpressure.
    fn append(&mut self, page: &Page) -> Result<()>;

    /// Flush and commit this sink's output; returns rows written.
    fn finish(&mut self) -> Result<u64>;

    /// Bytes buffered but not yet flushed, for writer-scaling decisions.
    fn buffered_bytes(&self) -> u64 {
        0
    }
}

/// Creates per-writer-task sinks.
pub trait PageSinkFactory: Send + Sync {
    /// Open a sink writing into `table`. Each concurrent writer gets its
    /// own sink (its own output file/shard, like concurrent S3 writers in
    /// the paper's example).
    fn create_sink(&self, table: &str) -> Result<Box<dyn PageSink>>;
}
