//! The Data Location API: splits and lazy split enumeration.
//!
//! A split is "an opaque handle to an addressable chunk of data in an
//! external storage system" (§III). Enumeration is *lazy and batched*
//! (§IV-D3): the coordinator asks the connector for small batches so that
//! query start-up does not wait for full enumeration, LIMIT-style queries
//! can finish before enumeration completes, and coordinator memory stays
//! bounded.

use crate::domain::TupleDomain;
use presto_common::{NodeId, Result};
use std::sync::Arc;

/// Connector-specific split payload. In-process connectors downcast it;
/// the engine never looks inside.
pub type SplitPayload = Arc<dyn std::any::Any + Send + Sync>;

/// One unit of leaf work.
#[derive(Clone)]
pub struct Split {
    /// Catalog this split belongs to.
    pub catalog: String,
    /// Table this split reads.
    pub table: String,
    /// Opaque connector payload (file/stripe range, shard id, …).
    pub payload: SplitPayload,
    /// Nodes that can serve this split locally; empty = any node. Used for
    /// shared-nothing placement and rack-local preferences (§IV-D2).
    pub addresses: Vec<NodeId>,
    /// Estimated rows in the split, for progress and skew heuristics.
    pub estimated_rows: u64,
    /// Bucket index for bucketed layouts; the scheduler routes same-bucket
    /// splits (across co-partitioned tables) to the same task, enabling
    /// co-located joins (§IV-C3).
    pub bucket: Option<usize>,
    /// Value summary over table-schema column indices (e.g. per-column
    /// min/max across the split's stripes). Lets the scheduler re-prune
    /// still-unassigned splits when a dynamic filter narrows the predicate
    /// after enumeration.
    pub domain: Option<TupleDomain>,
    /// Human-readable description for telemetry.
    pub info: String,
}

impl std::fmt::Debug for Split {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Split")
            .field("catalog", &self.catalog)
            .field("table", &self.table)
            .field("addresses", &self.addresses)
            .field("info", &self.info)
            .finish()
    }
}

/// Lazily enumerates splits in batches.
pub trait SplitSource: Send {
    /// Up to `max` more splits. An empty vector with [`SplitSource::is_finished`]
    /// false means "none ready yet" (the scheduler backs off and retries).
    fn next_batch(&mut self, max: usize) -> Result<Vec<Split>>;

    /// Whether enumeration is complete.
    fn is_finished(&self) -> bool;
}

/// A [`SplitSource`] over a pre-computed split list, batching on demand.
/// Most embedded connectors use this; the Hive-like connector implements
/// its own source that walks files incrementally.
pub struct FixedSplitSource {
    splits: std::vec::IntoIter<Split>,
    finished: bool,
}

impl FixedSplitSource {
    pub fn new(splits: Vec<Split>) -> FixedSplitSource {
        let finished = splits.is_empty();
        FixedSplitSource {
            splits: splits.into_iter(),
            finished,
        }
    }
}

impl SplitSource for FixedSplitSource {
    fn next_batch(&mut self, max: usize) -> Result<Vec<Split>> {
        let batch: Vec<Split> = self.splits.by_ref().take(max).collect();
        if batch.len() < max {
            self.finished = true;
        }
        Ok(batch)
    }

    fn is_finished(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn split(i: usize) -> Split {
        Split {
            catalog: "test".into(),
            table: "t".into(),
            payload: Arc::new(i),
            addresses: vec![],
            estimated_rows: 1,
            bucket: None,
            domain: None,
            info: format!("split-{i}"),
        }
    }

    #[test]
    fn fixed_source_batches() {
        let mut src = FixedSplitSource::new((0..5).map(split).collect());
        assert!(!src.is_finished());
        assert_eq!(src.next_batch(2).unwrap().len(), 2);
        assert_eq!(src.next_batch(2).unwrap().len(), 2);
        assert!(!src.is_finished());
        assert_eq!(src.next_batch(2).unwrap().len(), 1);
        assert!(src.is_finished());
        assert!(src.next_batch(2).unwrap().is_empty());
    }

    #[test]
    fn empty_source_is_immediately_finished() {
        let src = FixedSplitSource::new(vec![]);
        assert!(src.is_finished());
    }

    #[test]
    fn payload_downcasts() {
        let s = split(7);
        assert_eq!(*s.payload.downcast_ref::<usize>().unwrap(), 7);
    }
}
