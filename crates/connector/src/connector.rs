//! The top-level [`Connector`] trait and the catalog registry.

use presto_common::{PrestoError, Result};
use std::collections::HashMap;
use std::sync::Arc;

use crate::index::IndexSource;
use crate::metadata::ConnectorMetadata;
use crate::sink::PageSinkFactory;
use crate::source::PageSourceFactory;
use crate::split::SplitSource;
use crate::TupleDomain;

/// One pluggable data source, addressed by catalog name.
pub trait Connector: Send + Sync {
    /// Connector type name ("memory", "hive", "raptor", "sharded-sql", …).
    fn name(&self) -> &str;

    /// The Metadata API.
    fn metadata(&self) -> &dyn ConnectorMetadata;

    /// The Data Location API: enumerate splits of `table` under `layout`,
    /// pruned by `predicate` where the connector is able to.
    fn split_source(
        &self,
        table: &str,
        layout: &str,
        predicate: &TupleDomain,
    ) -> Result<Box<dyn SplitSource>>;

    /// The Data Source API.
    fn page_source_factory(&self) -> &dyn PageSourceFactory;

    /// The Data Sink API; `None` for read-only connectors.
    fn page_sink_factory(&self) -> Option<&dyn PageSinkFactory> {
        None
    }

    /// Open an index over `table` keyed on `key_columns` (table-schema
    /// indices) producing `output_columns`. `None` when no suitable index
    /// exists; the optimizer checks layouts first.
    fn index_source(
        &self,
        _table: &str,
        _key_columns: &[usize],
        _output_columns: &[usize],
    ) -> Result<Option<Box<dyn IndexSource>>> {
        Ok(None)
    }
}

/// The set of catalogs mounted on a cluster.
#[derive(Clone, Default)]
pub struct CatalogManager {
    catalogs: HashMap<String, Arc<dyn Connector>>,
}

impl CatalogManager {
    pub fn new() -> CatalogManager {
        CatalogManager::default()
    }

    /// Mount `connector` under `catalog`; replaces any previous mount.
    pub fn register(&mut self, catalog: impl Into<String>, connector: Arc<dyn Connector>) {
        self.catalogs.insert(catalog.into(), connector);
    }

    /// Resolve a catalog; user error when absent.
    pub fn catalog(&self, name: &str) -> Result<Arc<dyn Connector>> {
        self.catalogs
            .get(name)
            .cloned()
            .ok_or_else(|| PrestoError::user(format!("catalog '{name}' does not exist")))
    }

    pub fn catalog_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalogs.keys().cloned().collect();
        names.sort();
        names
    }
}

impl std::fmt::Debug for CatalogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogManager")
            .field("catalogs", &self.catalog_names())
            .finish()
    }
}
