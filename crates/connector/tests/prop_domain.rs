//! Property tests for the predicate-pushdown domain algebra.

use presto_common::Value;
use presto_connector::{Domain, TupleDomain};
use proptest::prelude::*;

fn arb_domain() -> impl Strategy<Value = Domain> {
    prop_oneof![
        proptest::collection::vec(-20i64..20, 1..5)
            .prop_map(|vs| Domain::Set(vs.into_iter().map(Value::Bigint).collect())),
        (-20i64..20, 0i64..40).prop_map(|(lo, width)| Domain::Range {
            min: Some(Value::Bigint(lo)),
            max: Some(Value::Bigint(lo + width)),
        }),
        (-20i64..20).prop_map(|lo| Domain::Range {
            min: Some(Value::Bigint(lo)),
            max: None
        }),
        (-20i64..20).prop_map(|hi| Domain::Range {
            min: None,
            max: Some(Value::Bigint(hi))
        }),
    ]
}

proptest! {
    #[test]
    fn intersection_is_conjunction(a in arb_domain(), b in arb_domain(), v in -30i64..30) {
        let value = Value::Bigint(v);
        let both = a.contains(&value) && b.contains(&value);
        match a.intersect(&b) {
            Some(i) => prop_assert_eq!(i.contains(&value), both),
            None => prop_assert!(!both, "empty intersection must reject everything"),
        }
    }

    #[test]
    fn intersection_is_commutative_on_membership(
        a in arb_domain(),
        b in arb_domain(),
        v in -30i64..30,
    ) {
        let value = Value::Bigint(v);
        let ab = a.intersect(&b).map(|d| d.contains(&value)).unwrap_or(false);
        let ba = b.intersect(&a).map(|d| d.contains(&value)).unwrap_or(false);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn overlap_never_false_negative(d in arb_domain(), lo in -30i64..30, width in 0i64..30) {
        // If any value in [lo, hi] is contained, overlaps() must be true.
        let hi = lo + width;
        let any_contained = (lo..=hi).any(|v| d.contains(&Value::Bigint(v)));
        let overlaps = d.overlaps(Some(&Value::Bigint(lo)), Some(&Value::Bigint(hi)));
        if any_contained {
            prop_assert!(overlaps, "pruning would drop matching rows: {d}");
        }
    }

    #[test]
    fn tuple_domain_matches_conjunction(
        a in arb_domain(),
        b in arb_domain(),
        v0 in -30i64..30,
        v1 in -30i64..30,
    ) {
        let mut td = TupleDomain::all();
        td.constrain(0, a.clone());
        td.constrain(1, b.clone());
        let matches = td.matches(|c| Value::Bigint(if c == 0 { v0 } else { v1 }));
        prop_assert_eq!(
            matches,
            a.contains(&Value::Bigint(v0)) && b.contains(&Value::Bigint(v1))
        );
    }

    #[test]
    fn constrain_twice_tightens(a in arb_domain(), b in arb_domain(), v in -30i64..30) {
        let mut td = TupleDomain::all();
        td.constrain(0, a.clone());
        td.constrain(0, b.clone());
        let value = Value::Bigint(v);
        let expect = a.contains(&value) && b.contains(&value);
        prop_assert_eq!(td.matches(|_| value.clone()), expect);
    }
}
