//! Framed wire format for pages crossing task boundaries.
//!
//! The raw page codec ([`crate::codec`]) is deliberately trusting: it is
//! also used for spill files and PORC stripes where the bytes come from
//! local disk. Shuffle traffic models a network hop (§IV-E2), so pages on
//! the wire get a small frame around the serialized payload:
//!
//! ```text
//! u8  flags              bit 0: payload is LZ-compressed
//! u32 uncompressed_len   payload length before compression
//! u32 wire_len           length of the body that follows the checksum
//! u64 checksum           XXH64 of the body bytes
//! [wire_len bytes]       body: raw or compressed payload
//! ```
//!
//! The checksum covers the body as it travels, so a receiver can validate a
//! frame *without* decompressing or decoding it — a corrupted frame is
//! detected cheaply and surfaces as a retryable error (the producer retains
//! the page until the token acknowledges it, so a re-fetch can succeed).
//!
//! Compression is an in-crate, dependency-free LZ77 variant using the LZ4
//! block layout (token / extended lengths / little-endian u16 offsets,
//! minimum match 4). It is only applied above a caller-chosen threshold and
//! only kept when it actually shrinks the payload.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use presto_common::{PrestoError, Result};

use crate::codec::{deserialize_page, serialize_page};
use crate::page::Page;

const FLAG_COMPRESSED: u8 = 1;
/// flags + uncompressed_len + wire_len + checksum.
pub const FRAME_HEADER_BYTES: usize = 1 + 4 + 4 + 8;

/// Decoded frame header, for telemetry and cheap validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    pub compressed: bool,
    /// Payload length before compression (the logical serialized size).
    pub uncompressed_len: usize,
    /// Body length on the wire (after compression, without the header).
    pub wire_len: usize,
    pub checksum: u64,
}

/// Wrap a serialized payload in a frame, compressing when the payload is at
/// least `compression_min_bytes` long and compression actually helps. Pass
/// `usize::MAX` to disable compression.
pub fn frame_payload(payload: &[u8], compression_min_bytes: usize) -> Bytes {
    let compressed = if payload.len() >= compression_min_bytes {
        let mut out = Vec::with_capacity(payload.len() / 2 + 16);
        lz_compress(payload, &mut out);
        (out.len() < payload.len()).then_some(out)
    } else {
        None
    };
    let (flags, body): (u8, &[u8]) = match &compressed {
        Some(c) => (FLAG_COMPRESSED, c.as_slice()),
        None => (0, payload),
    };
    let mut buf = BytesMut::with_capacity(FRAME_HEADER_BYTES + body.len());
    buf.put_u8(flags);
    buf.put_u32_le(payload.len() as u32);
    buf.put_u32_le(body.len() as u32);
    buf.put_u64_le(xxh64(body, 0));
    buf.put_slice(body);
    buf.freeze()
}

/// Serialize a page and frame it in one step.
pub fn frame_page(page: &Page, compression_min_bytes: usize) -> Bytes {
    frame_payload(&serialize_page(page), compression_min_bytes)
}

/// Parse and checksum-validate a frame header without decompressing.
pub fn frame_info(bytes: &[u8]) -> Result<FrameInfo> {
    let mut buf = bytes;
    if buf.remaining() < FRAME_HEADER_BYTES {
        return Err(corrupt("truncated frame header"));
    }
    let flags = buf.get_u8();
    if flags & !FLAG_COMPRESSED != 0 {
        return Err(corrupt(format!("unknown frame flags {flags:#x}")));
    }
    let uncompressed_len = buf.get_u32_le() as usize;
    let wire_len = buf.get_u32_le() as usize;
    let checksum = buf.get_u64_le();
    if buf.remaining() != wire_len {
        return Err(corrupt(format!(
            "frame body length mismatch: header says {wire_len}, got {}",
            buf.remaining()
        )));
    }
    if xxh64(buf, 0) != checksum {
        return Err(corrupt("frame checksum mismatch"));
    }
    let compressed = flags & FLAG_COMPRESSED != 0;
    if !compressed && uncompressed_len != wire_len {
        return Err(corrupt("uncompressed frame length mismatch"));
    }
    Ok(FrameInfo {
        compressed,
        uncompressed_len,
        wire_len,
        checksum,
    })
}

/// Validate and unwrap a frame, returning the decompressed payload.
pub fn unframe_payload(bytes: &[u8]) -> Result<Vec<u8>> {
    let info = frame_info(bytes)?;
    let body = &bytes[FRAME_HEADER_BYTES..];
    if !info.compressed {
        return Ok(body.to_vec());
    }
    let out = lz_decompress(body, info.uncompressed_len)?;
    if out.len() != info.uncompressed_len {
        return Err(corrupt(format!(
            "decompressed {} bytes, frame promised {}",
            out.len(),
            info.uncompressed_len
        )));
    }
    Ok(out)
}

/// Validate, unwrap, and decode a framed page.
pub fn decode_framed_page(bytes: &[u8]) -> Result<Page> {
    deserialize_page(&unframe_payload(bytes)?)
}

fn corrupt(msg: impl Into<String>) -> PrestoError {
    // Frame corruption models a network-level fault: transient from the
    // engine's view, because the producer still retains the page (the token
    // has not acknowledged it) and a re-fetch may deliver it intact.
    PrestoError::transient(format!("page frame: {}", msg.into()))
}

// --- XXH64 ------------------------------------------------------------

const PRIME1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME2))
        .rotate_left(31)
        .wrapping_mul(PRIME1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME1)
        .wrapping_add(PRIME4)
}

/// The standard XXH64 hash (reference layout), used as the frame checksum.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;
    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME1).wrapping_add(PRIME2);
        let mut v2 = seed.wrapping_add(PRIME2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME5);
    }
    h = h.wrapping_add(len as u64);
    while rest.len() >= 8 {
        h = (h ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME1)
            .wrapping_add(PRIME4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ u64::from(read_u32(rest)).wrapping_mul(PRIME1))
            .rotate_left(23)
            .wrapping_mul(PRIME2)
            .wrapping_add(PRIME3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ u64::from(b).wrapping_mul(PRIME5))
            .rotate_left(11)
            .wrapping_mul(PRIME1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME3);
    h ^= h >> 32;
    h
}

// --- LZ77 compressor (LZ4 block layout) -------------------------------

const MIN_MATCH: usize = 4;
/// Stop match search this far from the end (reference LZ4 margin: the last
/// sequence must be literal-only and matches may not reach the final bytes).
const END_MARGIN: usize = 12;
const HASH_LOG: usize = 13;

#[inline]
fn seq_hash(v: u32) -> usize {
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_LOG)) as usize
}

fn put_length(out: &mut Vec<u8>, mut len: usize) {
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

/// Greedy LZ4-block-style compression. Always produces a valid stream for
/// [`lz_decompress`]; callers compare output length against the input to
/// decide whether to keep it.
pub fn lz_compress(src: &[u8], out: &mut Vec<u8>) {
    let n = src.len();
    if n < END_MARGIN + MIN_MATCH {
        // Too short to contain a legal match: one literal-only sequence.
        emit_sequence(out, src, 0, 0);
        return;
    }
    let mut table = vec![0u32; 1 << HASH_LOG]; // position + 1, 0 = empty
    let mut anchor = 0usize; // start of pending literals
    let mut i = 0usize;
    let search_end = n - END_MARGIN;
    while i < search_end {
        let cur = read_u32(&src[i..]);
        let slot = seq_hash(cur);
        let candidate = table[slot] as usize;
        table[slot] = (i + 1) as u32;
        let matched = candidate > 0
            && i - (candidate - 1) <= u16::MAX as usize
            && read_u32(&src[candidate - 1..]) == cur;
        if !matched {
            i += 1;
            continue;
        }
        let m = candidate - 1;
        // Extend the match forward (stay clear of the end margin).
        let mut len = MIN_MATCH;
        let limit = n.saturating_sub(5) - i; // last 5 bytes stay literal
        while len < limit && src[m + len] == src[i + len] {
            len += 1;
        }
        emit_sequence(out, &src[anchor..i], i - m, len);
        i += len;
        anchor = i;
    }
    // Trailing literals.
    emit_sequence(out, &src[anchor..], 0, 0);
}

/// Emit one sequence: literals, then (when `match_len > 0`) an offset and
/// match length. `match_len == 0` marks the final literal-only sequence.
fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: usize, match_len: usize) {
    let lit_len = literals.len();
    let ml = if match_len > 0 {
        debug_assert!(match_len >= MIN_MATCH);
        match_len - MIN_MATCH
    } else {
        0
    };
    let token = ((lit_len.min(15) as u8) << 4) | (ml.min(15) as u8);
    out.push(token);
    if lit_len >= 15 {
        put_length(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    if match_len > 0 {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if ml >= 15 {
            put_length(out, ml - 15);
        }
    }
}

fn get_length(src: &[u8], pos: &mut usize, base: usize) -> Result<usize> {
    let mut len = base;
    if base == 15 {
        loop {
            let b = *src
                .get(*pos)
                .ok_or_else(|| corrupt("truncated length in compressed block"))?;
            *pos += 1;
            len += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Decompress an [`lz_compress`] stream. All offsets and lengths are bounds
/// checked; malformed input is an error, never a panic or overread.
pub fn lz_decompress(src: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    loop {
        let token = *src
            .get(pos)
            .ok_or_else(|| corrupt("truncated compressed block"))?;
        pos += 1;
        let lit_len = get_length(src, &mut pos, (token >> 4) as usize)?;
        let lit_end = pos
            .checked_add(lit_len)
            .ok_or_else(|| corrupt("literal length overflow"))?;
        if lit_end > src.len() {
            return Err(corrupt("literal run past end of compressed block"));
        }
        out.extend_from_slice(&src[pos..lit_end]);
        pos = lit_end;
        if pos == src.len() {
            return Ok(out); // final literal-only sequence
        }
        if pos + 2 > src.len() {
            return Err(corrupt("truncated match offset"));
        }
        let offset = u16::from_le_bytes([src[pos], src[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(corrupt("match offset out of range"));
        }
        let match_len = get_length(src, &mut pos, (token & 0x0F) as usize)? + MIN_MATCH;
        if out.len() + match_len > expected_len {
            return Err(corrupt("match overruns expected length"));
        }
        // Byte-at-a-time copy: overlapping matches (offset < len) are legal
        // and replicate the most recent `offset` bytes.
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::blocks::LongBlock;
    use crate::block::Block;
    use presto_common::{DataType, Schema, Value};

    #[test]
    fn xxh64_reference_vectors() {
        // Reference values from the xxHash spec/test suite.
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            xxh64(b"abcdefghijklmnopqrstuvwxyz0123456789", 0),
            0x64F2_3ECF_1609_B766
        );
    }

    #[test]
    fn lz_round_trips_patterns() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"short".to_vec(),
            vec![0u8; 10_000],
            (0..10_000u32).map(|i| (i % 7) as u8).collect(),
            (0..5_000u32).flat_map(|i| i.to_le_bytes()).collect(),
            (0..255u8).cycle().take(70_000).collect(),
        ];
        for case in cases {
            let mut c = Vec::new();
            lz_compress(&case, &mut c);
            let d = lz_decompress(&c, case.len()).unwrap();
            assert_eq!(d, case);
        }
    }

    #[test]
    fn compressible_data_shrinks() {
        let data = vec![42u8; 64 << 10];
        let mut c = Vec::new();
        lz_compress(&data, &mut c);
        assert!(c.len() < data.len() / 20, "{} vs {}", c.len(), data.len());
    }

    #[test]
    fn frame_round_trip_compressed_and_raw() {
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        let rows: Vec<Vec<Value>> = (0..2_000).map(|i| vec![Value::Bigint(i % 5)]).collect();
        let page = Page::from_rows(&schema, &rows);
        for threshold in [0usize, usize::MAX] {
            let framed = frame_page(&page, threshold);
            let info = frame_info(&framed).unwrap();
            assert_eq!(info.compressed, threshold == 0);
            let decoded = decode_framed_page(&framed).unwrap();
            assert_eq!(decoded.to_rows(&schema), rows);
        }
        // Compression actually pays on this page.
        assert!(frame_page(&page, 0).len() < frame_page(&page, usize::MAX).len());
    }

    #[test]
    fn corrupted_frames_error_out() {
        let page = Page::new(vec![Block::from(LongBlock::from_values(
            (0..500).collect::<Vec<i64>>(),
        ))]);
        for threshold in [0usize, usize::MAX] {
            let good = frame_page(&page, threshold);
            // Flip one byte anywhere: header fields or body.
            for pos in [0, 3, 9, 13, FRAME_HEADER_BYTES + 5, good.len() - 1] {
                let mut bad = good.to_vec();
                bad[pos] ^= 0x40;
                let err = decode_framed_page(&bad).unwrap_err();
                assert!(err.is_retryable(), "corruption must be transient: {err}");
            }
            // Truncation too.
            assert!(decode_framed_page(&good[..good.len() - 2]).is_err());
            assert!(frame_info(&good[..FRAME_HEADER_BYTES - 1]).is_err());
        }
    }

    #[test]
    fn incompressible_payload_stays_raw() {
        // Pseudo-random bytes: compression cannot help, frame stays raw
        // even with a zero threshold.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let framed = frame_payload(&data, 0);
        let info = frame_info(&framed).unwrap();
        assert!(!info.compressed);
        assert_eq!(unframe_payload(&framed).unwrap(), data);
    }
}
