//! Dictionary-aware row hashing.
//!
//! Hash computation underlies shuffles (hash partitioning), hash joins and
//! hash aggregations. Per §V-E the engine exploits block structure: for a
//! dictionary block the hash of each distinct dictionary entry is computed
//! once and looked up per row; for an RLE block the single value is hashed
//! once for the whole run. The [`DictionaryHashCache`] reproduces the
//! paper's "records hash table locations for every dictionary entry in an
//! array … when successive blocks share the same dictionary, the page
//! processor retains the array".

use crate::block::{Block, PhysicalType};

/// Seed for combining multiple columns into one row hash.
const COLUMN_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
/// Hash used for NULL cells; any fixed odd constant works.
const NULL_HASH: u64 = 0x7FFF_FFFF_FFFF_FFC5;

#[inline]
fn mix(mut h: u64) -> u64 {
    // Stafford variant 13 of the splitmix64 finalizer: fast, well mixed.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[inline]
pub fn hash_i64(v: i64) -> u64 {
    mix(v as u64)
}

#[inline]
pub fn hash_f64(v: f64) -> u64 {
    // Normalize -0.0 to 0.0 so equal SQL values hash equally.
    let v = if v == 0.0 { 0.0 } else { v };
    mix(v.to_bits())
}

#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    // FNV-1a, then mixed; strings on the hash path are short (keys).
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix(h)
}

/// Hash a single cell of a flat-decodable block.
pub fn hash_cell(block: &Block, i: usize) -> u64 {
    if block.is_null(i) {
        return NULL_HASH;
    }
    match block.physical_type() {
        PhysicalType::Long => hash_i64(block.i64_at(i)),
        PhysicalType::Double => hash_f64(block.f64_at(i)),
        PhysicalType::Bool => hash_i64(block.bool_at(i) as i64),
        PhysicalType::Varchar => hash_bytes(block.str_at(i).as_bytes()),
    }
}

/// Per-dictionary memo of entry hashes, reused while consecutive blocks
/// share the same dictionary (§V-E).
#[derive(Debug, Default)]
pub struct DictionaryHashCache {
    dictionary_id: u64,
    entry_hashes: Vec<u64>,
}

impl DictionaryHashCache {
    pub fn new() -> Self {
        Self::default()
    }

    fn entries_for(&mut self, dict_block: &crate::blocks::DictionaryBlock) -> &[u64] {
        if self.dictionary_id != dict_block.dictionary_id || self.entry_hashes.is_empty() {
            let dict = &dict_block.dictionary;
            self.entry_hashes = (0..dict.len()).map(|i| hash_cell(dict, i)).collect();
            self.dictionary_id = dict_block.dictionary_id;
        }
        &self.entry_hashes
    }

    /// Number of cached entries (observability / tests).
    pub fn cached_entries(&self) -> usize {
        self.entry_hashes.len()
    }
}

/// Combine the hash of `block` into `hashes` (one slot per row), exploiting
/// RLE and dictionary structure. `cache` carries dictionary memos across
/// calls.
pub fn hash_block_into(block: &Block, hashes: &mut [u64], cache: &mut DictionaryHashCache) {
    assert_eq!(block.len(), hashes.len());
    match block.loaded() {
        Block::Rle(rle) => {
            // One hash for the whole run.
            let h = hash_cell(&rle.value, 0);
            for slot in hashes.iter_mut() {
                *slot = combine(*slot, h);
            }
        }
        Block::Dictionary(d) => {
            let entries = cache.entries_for(d).to_vec();
            for (slot, &id) in hashes.iter_mut().zip(&d.ids) {
                *slot = combine(*slot, entries[id as usize]);
            }
        }
        flat => {
            for (i, slot) in hashes.iter_mut().enumerate() {
                *slot = combine(*slot, hash_cell(flat, i));
            }
        }
    }
}

/// Fold one cell hash into a row-hash accumulator (start from 0). Exposed
/// so single-key fast paths (RLE/dictionary probes) can reproduce exactly
/// what [`hash_columns`] computes for one channel.
#[inline]
pub fn combine_hashes(acc: u64, h: u64) -> u64 {
    mix(acc.wrapping_mul(COLUMN_SEED) ^ h)
}

#[inline]
fn combine(acc: u64, h: u64) -> u64 {
    combine_hashes(acc, h)
}

/// Hash the given columns of a page into one u64 per row.
pub fn hash_columns(page: &crate::page::Page, channels: &[usize]) -> Vec<u64> {
    let mut cache = DictionaryHashCache::new();
    hash_columns_cached(page, channels, &mut cache)
}

/// Like [`hash_columns`], but with a caller-retained [`DictionaryHashCache`]
/// so operators that see many pages sharing one dictionary (§V-E) hash each
/// dictionary entry once per dictionary, not once per page.
pub fn hash_columns_cached(
    page: &crate::page::Page,
    channels: &[usize],
    cache: &mut DictionaryHashCache,
) -> Vec<u64> {
    let mut hashes = vec![0u64; page.row_count()];
    for &c in channels {
        hash_block_into(page.block(c), &mut hashes, cache);
    }
    hashes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{DictionaryBlock, LongBlock, VarcharBlock};
    use crate::page::Page;
    use presto_common::{DataType, Value};
    use std::sync::Arc;

    #[test]
    fn equal_rows_hash_equal_across_encodings() {
        // "COD" as flat varchar vs via dictionary must hash identically.
        let flat = Block::from(VarcharBlock::from_strs(&["COD", "NONE"]));
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["NONE", "COD"])));
        let encoded = Block::Dictionary(DictionaryBlock::new(dict, vec![1, 0]));
        let mut cache = DictionaryHashCache::new();
        let mut h1 = vec![0u64; 2];
        let mut h2 = vec![0u64; 2];
        hash_block_into(&flat, &mut h1, &mut cache);
        hash_block_into(&encoded, &mut h2, &mut cache);
        assert_eq!(h1, h2);
    }

    #[test]
    fn rle_hash_matches_flat() {
        let rle = Block::rle(Block::from(LongBlock::from_values(vec![5])), 3);
        let flat = Block::from(LongBlock::from_values(vec![5, 5, 5]));
        let mut cache = DictionaryHashCache::new();
        let mut h1 = vec![0u64; 3];
        let mut h2 = vec![0u64; 3];
        hash_block_into(&rle, &mut h1, &mut cache);
        hash_block_into(&flat, &mut h2, &mut cache);
        assert_eq!(h1, h2);
    }

    #[test]
    fn dictionary_cache_reused_across_blocks() {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["a", "b", "c"])));
        let b1 = Block::Dictionary(DictionaryBlock::new(Arc::clone(&dict), vec![0, 1]));
        let b2 = Block::Dictionary(DictionaryBlock::new(Arc::clone(&dict), vec![2, 2]));
        let mut cache = DictionaryHashCache::new();
        let mut h = vec![0u64; 2];
        hash_block_into(&b1, &mut h, &mut cache);
        let id = match (&b1, &b2) {
            (Block::Dictionary(x), Block::Dictionary(y)) => {
                assert_eq!(x.dictionary_id, y.dictionary_id);
                x.dictionary_id
            }
            _ => unreachable!(),
        };
        assert_eq!(cache.dictionary_id, id);
        assert_eq!(cache.cached_entries(), 3);
    }

    #[test]
    fn multi_column_hash_is_order_sensitive() {
        let schema = presto_common::Schema::of(&[("a", DataType::Bigint), ("b", DataType::Bigint)]);
        let p = Page::from_rows(&schema, &[vec![Value::Bigint(1), Value::Bigint(2)]]);
        let h_ab = hash_columns(&p, &[0, 1]);
        let h_ba = hash_columns(&p, &[1, 0]);
        assert_ne!(h_ab, h_ba);
    }

    #[test]
    fn nulls_hash_consistently() {
        let b = Block::from_values(DataType::Bigint, &[Value::Null, Value::Null]);
        let mut cache = DictionaryHashCache::new();
        let mut h = vec![0u64; 2];
        hash_block_into(&b, &mut h, &mut cache);
        assert_eq!(h[0], h[1]);
    }

    #[test]
    fn negative_zero_matches_zero() {
        assert_eq!(hash_f64(0.0), hash_f64(-0.0));
    }
}
