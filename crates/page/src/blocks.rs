//! Concrete block encodings.
//!
//! Flat blocks store values in plain vectors with an optional null mask
//! (absent when the column has no nulls, which keeps the common case
//! branch-light). Structured blocks — RLE, dictionary, lazy — wrap other
//! blocks, mirroring Fig. 5 of the paper.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::block::Block;

/// Optional null mask; `None` means "no nulls". `true` marks a NULL cell.
pub type NullMask = Option<Vec<bool>>;

fn mask_is_null(mask: &NullMask, i: usize) -> bool {
    mask.as_ref().is_some_and(|m| m[i])
}

fn filter_mask(mask: &NullMask, positions: &[u32]) -> NullMask {
    mask.as_ref().and_then(|m| {
        let filtered: Vec<bool> = positions.iter().map(|&p| m[p as usize]).collect();
        if filtered.iter().any(|&n| n) {
            Some(filtered)
        } else {
            None
        }
    })
}

/// Flat block of 64-bit integer lanes (bigint, date, timestamp).
#[derive(Debug, Clone, PartialEq)]
pub struct LongBlock {
    pub values: Vec<i64>,
    pub nulls: NullMask,
}

impl LongBlock {
    pub fn new(values: Vec<i64>, nulls: NullMask) -> Self {
        debug_assert!(nulls.as_ref().is_none_or(|m| m.len() == values.len()));
        LongBlock { values, nulls }
    }

    pub fn from_values(values: Vec<i64>) -> Self {
        LongBlock {
            values,
            nulls: None,
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn is_null(&self, i: usize) -> bool {
        mask_is_null(&self.nulls, i)
    }

    pub fn filter(&self, positions: &[u32]) -> LongBlock {
        LongBlock {
            values: positions.iter().map(|&p| self.values[p as usize]).collect(),
            nulls: filter_mask(&self.nulls, positions),
        }
    }

    pub fn size_in_bytes(&self) -> usize {
        self.values.len() * 8 + self.nulls.as_ref().map_or(0, |m| m.len())
    }
}

/// Flat block of doubles.
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleBlock {
    pub values: Vec<f64>,
    pub nulls: NullMask,
}

impl DoubleBlock {
    pub fn new(values: Vec<f64>, nulls: NullMask) -> Self {
        debug_assert!(nulls.as_ref().is_none_or(|m| m.len() == values.len()));
        DoubleBlock { values, nulls }
    }

    pub fn from_values(values: Vec<f64>) -> Self {
        DoubleBlock {
            values,
            nulls: None,
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn is_null(&self, i: usize) -> bool {
        mask_is_null(&self.nulls, i)
    }

    pub fn filter(&self, positions: &[u32]) -> DoubleBlock {
        DoubleBlock {
            values: positions.iter().map(|&p| self.values[p as usize]).collect(),
            nulls: filter_mask(&self.nulls, positions),
        }
    }

    pub fn size_in_bytes(&self) -> usize {
        self.values.len() * 8 + self.nulls.as_ref().map_or(0, |m| m.len())
    }
}

/// Flat block of booleans.
#[derive(Debug, Clone, PartialEq)]
pub struct BoolBlock {
    pub values: Vec<bool>,
    pub nulls: NullMask,
}

impl BoolBlock {
    pub fn new(values: Vec<bool>, nulls: NullMask) -> Self {
        debug_assert!(nulls.as_ref().is_none_or(|m| m.len() == values.len()));
        BoolBlock { values, nulls }
    }

    pub fn from_values(values: Vec<bool>) -> Self {
        BoolBlock {
            values,
            nulls: None,
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn is_null(&self, i: usize) -> bool {
        mask_is_null(&self.nulls, i)
    }

    pub fn filter(&self, positions: &[u32]) -> BoolBlock {
        BoolBlock {
            values: positions.iter().map(|&p| self.values[p as usize]).collect(),
            nulls: filter_mask(&self.nulls, positions),
        }
    }

    pub fn size_in_bytes(&self) -> usize {
        self.values.len() + self.nulls.as_ref().map_or(0, |m| m.len())
    }
}

/// Flat block of UTF-8 strings, stored as one contiguous byte buffer plus an
/// offsets array — no per-string allocation, so tight loops do no pointer
/// chasing (§V-C).
#[derive(Debug, Clone, PartialEq)]
pub struct VarcharBlock {
    /// `offsets.len() == len + 1`; string `i` is `bytes[offsets[i]..offsets[i+1]]`.
    pub offsets: Vec<u32>,
    pub bytes: Vec<u8>,
    pub nulls: NullMask,
}

impl VarcharBlock {
    pub fn from_strs<S: AsRef<str>>(values: &[S]) -> Self {
        let mut offsets = Vec::with_capacity(values.len() + 1);
        let mut bytes = Vec::new();
        offsets.push(0);
        for v in values {
            bytes.extend_from_slice(v.as_ref().as_bytes());
            offsets.push(bytes.len() as u32);
        }
        VarcharBlock {
            offsets,
            bytes,
            nulls: None,
        }
    }

    /// Build from optional strings, producing a null mask when needed.
    pub fn from_options<S: AsRef<str>>(values: &[Option<S>]) -> Self {
        let mut offsets = Vec::with_capacity(values.len() + 1);
        let mut bytes = Vec::new();
        let mut nulls = vec![false; values.len()];
        let mut any_null = false;
        offsets.push(0);
        for (i, v) in values.iter().enumerate() {
            match v {
                Some(s) => bytes.extend_from_slice(s.as_ref().as_bytes()),
                None => {
                    nulls[i] = true;
                    any_null = true;
                }
            }
            offsets.push(bytes.len() as u32);
        }
        VarcharBlock {
            offsets,
            bytes,
            nulls: if any_null { Some(nulls) } else { None },
        }
    }

    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_null(&self, i: usize) -> bool {
        mask_is_null(&self.nulls, i)
    }

    pub fn value(&self, i: usize) -> &str {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        // The writer only appends whole UTF-8 strings at offset boundaries.
        unsafe { std::str::from_utf8_unchecked(&self.bytes[start..end]) }
    }

    pub fn filter(&self, positions: &[u32]) -> VarcharBlock {
        let mut offsets = Vec::with_capacity(positions.len() + 1);
        let mut bytes = Vec::new();
        offsets.push(0u32);
        for &p in positions {
            let (s, e) = (
                self.offsets[p as usize] as usize,
                self.offsets[p as usize + 1] as usize,
            );
            bytes.extend_from_slice(&self.bytes[s..e]);
            offsets.push(bytes.len() as u32);
        }
        VarcharBlock {
            offsets,
            bytes,
            nulls: filter_mask(&self.nulls, positions),
        }
    }

    pub fn size_in_bytes(&self) -> usize {
        self.bytes.len() + self.offsets.len() * 4 + self.nulls.as_ref().map_or(0, |m| m.len())
    }
}

/// Run-length encoding: a single-position block repeated `count` times.
#[derive(Debug, Clone)]
pub struct RleBlock {
    /// A block of exactly one position holding the repeated value.
    pub value: Arc<Block>,
    pub count: usize,
}

impl RleBlock {
    pub fn new(value: Block, count: usize) -> Self {
        debug_assert_eq!(value.len(), 1, "RLE value block must have one position");
        RleBlock {
            value: Arc::new(value),
            count,
        }
    }

    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn size_in_bytes(&self) -> usize {
        self.value.size_in_bytes() + 8
    }
}

/// Dictionary encoding: distinct values in a shared dictionary block plus a
/// flat index array. The dictionary is behind an `Arc` so that many blocks
/// (e.g. all pages cut from one ORC stripe) can share it (§V-C).
#[derive(Debug, Clone)]
pub struct DictionaryBlock {
    pub dictionary: Arc<Block>,
    pub ids: Vec<u32>,
    /// Identity of the dictionary, used by operators to notice that
    /// successive blocks share a dictionary and reuse per-entry work
    /// (§V-E: retained hash-location arrays). Two blocks get the same id iff
    /// they were built from the same live `Arc`; the id is never the raw
    /// allocation address, because a freed dictionary's address can be
    /// recycled for a different dictionary and an address-based id would
    /// then serve stale cached entry work for the new contents.
    pub dictionary_id: u64,
}

/// Next [`DictionaryBlock::dictionary_id`]; 0 is never issued so caches
/// can use it as "empty".
static NEXT_DICTIONARY_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Live-dictionary registry: allocation address -> (liveness witness, id).
/// An entry is only trusted while its `Weak` still upgrades, i.e. while the
/// original `Arc` allocation is alive; once it drops, a recycled address
/// fails the liveness check and gets a fresh id, which is what makes
/// [`DictionaryBlock::dictionary_id`] ABA-safe.
static DICTIONARY_IDS: OnceLock<Mutex<HashMap<usize, (Weak<Block>, u64)>>> = OnceLock::new();

fn dictionary_identity(dictionary: &Arc<Block>) -> u64 {
    let registry = DICTIONARY_IDS.get_or_init(|| Mutex::new(HashMap::new()));
    let key = Arc::as_ptr(dictionary) as usize;
    let mut map = match registry.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some((witness, id)) = map.get(&key) {
        if witness.strong_count() > 0 {
            return *id;
        }
    }
    // Dead entries linger until their address is recycled; sweep them once
    // the registry gets large so it tracks live dictionaries, not history.
    if map.len() >= 1024 {
        map.retain(|_, (witness, _)| witness.strong_count() > 0);
    }
    let id = NEXT_DICTIONARY_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    map.insert(key, (Arc::downgrade(dictionary), id));
    id
}

impl DictionaryBlock {
    pub fn new(dictionary: Arc<Block>, ids: Vec<u32>) -> Self {
        let dictionary_id = dictionary_identity(&dictionary);
        debug_assert!(ids.iter().all(|&id| (id as usize) < dictionary.len()));
        DictionaryBlock {
            dictionary,
            ids,
            dictionary_id,
        }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    pub fn filter(&self, positions: &[u32]) -> DictionaryBlock {
        // Filtering only touches the index array; the dictionary is shared.
        DictionaryBlock {
            dictionary: Arc::clone(&self.dictionary),
            ids: positions.iter().map(|&p| self.ids[p as usize]).collect(),
            dictionary_id: self.dictionary_id,
        }
    }

    pub fn size_in_bytes(&self) -> usize {
        // The shared dictionary is charged once per holder; good enough for
        // buffer accounting.
        self.dictionary.size_in_bytes() + self.ids.len() * 4
    }
}

/// Shared core of a [`LazyBlock`]: the loader thunk and its memoized result.
struct LazyInner {
    len: usize,
    loader: Box<dyn Fn() -> Block + Send + Sync>,
    loaded: OnceLock<Block>,
}

impl LazyInner {
    fn load(&self) -> &Block {
        self.loaded.get_or_init(|| {
            let block = (self.loader)();
            assert_eq!(
                block.len(),
                self.len,
                "lazy loader produced wrong row count"
            );
            block
        })
    }
}

/// A block whose contents are produced on first access (§V-D).
///
/// Connectors wrap column reads in a `LazyBlock`; if a filter on other
/// columns drops every row, the loader never runs and the bytes are never
/// fetched or decoded. Loaders run at most once; the result is memoized and
/// shared by all clones. Filtering a lazy block composes a position list
/// instead of forcing the load, so selective filters keep their savings.
#[derive(Clone)]
pub struct LazyBlock {
    inner: Arc<LazyInner>,
    /// Positions of the source block this view exposes; `None` = identity.
    positions: Option<Arc<Vec<u32>>>,
    /// Memoized filtered view (source block filtered to `positions`).
    view: Arc<OnceLock<Block>>,
}

impl LazyBlock {
    pub fn new(len: usize, loader: impl Fn() -> Block + Send + Sync + 'static) -> Self {
        LazyBlock {
            inner: Arc::new(LazyInner {
                len,
                loader: Box::new(loader),
                loaded: OnceLock::new(),
            }),
            positions: None,
            view: Arc::new(OnceLock::new()),
        }
    }

    pub fn len(&self) -> usize {
        match &self.positions {
            Some(p) => p.len(),
            None => self.inner.len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the underlying loader has run.
    pub fn is_loaded(&self) -> bool {
        self.inner.loaded.get().is_some()
    }

    /// A lazy view of this block restricted to `positions`; does not load.
    pub fn filter_lazy(&self, positions: &[u32]) -> LazyBlock {
        let composed = match &self.positions {
            Some(existing) => positions.iter().map(|&p| existing[p as usize]).collect(),
            None => positions.to_vec(),
        };
        LazyBlock {
            inner: Arc::clone(&self.inner),
            positions: Some(Arc::new(composed)),
            view: Arc::new(OnceLock::new()),
        }
    }

    /// Materialize (at most once) and return the underlying block, filtered
    /// to this view's positions.
    pub fn load(&self) -> &Block {
        self.view.get_or_init(|| {
            let source = self.inner.load();
            match &self.positions {
                Some(p) => source.filter(p),
                None => source.clone(),
            }
        })
    }
}

impl std::fmt::Debug for LazyBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyBlock")
            .field("len", &self.len())
            .field("loaded", &self.is_loaded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varchar_flat_layout() {
        let b = VarcharBlock::from_strs(&["ab", "", "cde"]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.value(0), "ab");
        assert_eq!(b.value(1), "");
        assert_eq!(b.value(2), "cde");
        assert_eq!(b.bytes.len(), 5);
    }

    #[test]
    fn varchar_with_nulls() {
        let b = VarcharBlock::from_options(&[Some("x"), None, Some("y")]);
        assert!(!b.is_null(0));
        assert!(b.is_null(1));
        assert_eq!(b.value(2), "y");
    }

    #[test]
    fn filter_drops_all_null_mask_when_possible() {
        let b = LongBlock::new(vec![1, 2, 3], Some(vec![false, true, false]));
        let f = b.filter(&[0, 2]);
        assert_eq!(f.values, vec![1, 3]);
        assert!(f.nulls.is_none(), "mask elided when no nulls survive");
    }

    #[test]
    fn dictionary_filter_shares_dictionary() {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["a", "b"])));
        let d = DictionaryBlock::new(Arc::clone(&dict), vec![0, 1, 0, 1]);
        let f = d.filter(&[1, 3]);
        assert_eq!(f.ids, vec![1, 1]);
        assert_eq!(f.dictionary_id, d.dictionary_id);
    }

    #[test]
    fn lazy_loads_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let lazy = LazyBlock::new(2, move || {
            c.fetch_add(1, Ordering::SeqCst);
            Block::from(LongBlock::from_values(vec![7, 8]))
        });
        assert!(!lazy.is_loaded());
        assert_eq!(lazy.load().len(), 2);
        assert_eq!(lazy.load().len(), 2);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "wrong row count")]
    fn lazy_loader_length_mismatch_panics() {
        let lazy = LazyBlock::new(3, || Block::from(LongBlock::from_values(vec![1])));
        lazy.load();
    }
}
