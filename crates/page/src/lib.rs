//! Columnar data representation: pages and blocks.
//!
//! The unit of data flowing between operators is a [`Page`]: "a columnar
//! encoding of a sequence of rows" (§IV-E1). A page is a list of [`Block`]s,
//! one per column, each with a flat in-memory representation (§V-C: "Pointer
//! chasing, unboxing, and virtual method calls add significant overhead to
//! tight loops").
//!
//! Blocks come in flat variants ([`blocks::LongBlock`], [`blocks::DoubleBlock`],
//! [`blocks::BoolBlock`], [`blocks::VarcharBlock`]) plus three structured
//! encodings that mirror Fig. 5 of the paper:
//!
//! * [`blocks::RleBlock`] — run-length encoding: one value repeated N times;
//! * [`blocks::DictionaryBlock`] — a shared dictionary of distinct values and
//!   a flat index array; several blocks may share one dictionary;
//! * [`blocks::LazyBlock`] — a thunk that reads/decompresses/decodes the
//!   column only when a cell is first accessed (§V-D lazy data loading).
//!
//! Operators process dictionary and RLE blocks without decoding whenever
//! possible (§V-E); the helpers in [`hash`] and the `filter`/`compare`
//! methods on [`Block`] are dictionary-aware for this reason.

pub mod block;
pub mod blocks;
pub mod builder;
pub mod codec;
pub mod frame;
pub mod hash;
pub mod page;

pub use block::{Block, PhysicalType};
pub use blocks::{
    BoolBlock, DictionaryBlock, DoubleBlock, LazyBlock, LongBlock, RleBlock, VarcharBlock,
};
pub use builder::BlockBuilder;
pub use codec::{deserialize_block, deserialize_page, serialize_block, serialize_page};
pub use frame::{
    decode_framed_page, frame_info, frame_page, frame_payload, unframe_payload, FrameInfo,
};
pub use page::Page;
