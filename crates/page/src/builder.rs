//! Incremental block construction for operators that produce output row by
//! row (joins, aggregations, sorts).

use presto_common::{DataType, Value};

use crate::block::{Block, PhysicalType};
use crate::blocks::{BoolBlock, DoubleBlock, LongBlock, VarcharBlock};

/// Appends cells of one physical type and finishes into a flat [`Block`].
#[derive(Debug)]
pub enum BlockBuilder {
    Long {
        values: Vec<i64>,
        nulls: Vec<bool>,
        any_null: bool,
    },
    Double {
        values: Vec<f64>,
        nulls: Vec<bool>,
        any_null: bool,
    },
    Bool {
        values: Vec<bool>,
        nulls: Vec<bool>,
        any_null: bool,
    },
    Varchar {
        offsets: Vec<u32>,
        bytes: Vec<u8>,
        nulls: Vec<bool>,
        any_null: bool,
    },
}

impl BlockBuilder {
    pub fn new(data_type: DataType) -> BlockBuilder {
        Self::with_capacity(data_type, 0)
    }

    pub fn with_capacity(data_type: DataType, capacity: usize) -> BlockBuilder {
        Self::for_physical(PhysicalType::of(data_type), capacity)
    }

    /// Build for a physical type directly (used when the schema is only
    /// known from a sample block, e.g. the partitioned-output scatter).
    pub fn for_physical(physical: PhysicalType, capacity: usize) -> BlockBuilder {
        match physical {
            PhysicalType::Long => BlockBuilder::Long {
                values: Vec::with_capacity(capacity),
                nulls: Vec::with_capacity(capacity),
                any_null: false,
            },
            PhysicalType::Double => BlockBuilder::Double {
                values: Vec::with_capacity(capacity),
                nulls: Vec::with_capacity(capacity),
                any_null: false,
            },
            PhysicalType::Bool => BlockBuilder::Bool {
                values: Vec::with_capacity(capacity),
                nulls: Vec::with_capacity(capacity),
                any_null: false,
            },
            PhysicalType::Varchar => BlockBuilder::Varchar {
                offsets: {
                    let mut o = Vec::with_capacity(capacity + 1);
                    o.push(0);
                    o
                },
                bytes: Vec::new(),
                nulls: Vec::with_capacity(capacity),
                any_null: false,
            },
        }
    }

    pub fn len(&self) -> usize {
        match self {
            BlockBuilder::Long { values, .. } => values.len(),
            BlockBuilder::Double { values, .. } => values.len(),
            BlockBuilder::Bool { values, .. } => values.len(),
            BlockBuilder::Varchar { offsets, .. } => offsets.len() - 1,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn push_i64(&mut self, v: i64) {
        match self {
            BlockBuilder::Long { values, nulls, .. } => {
                values.push(v);
                nulls.push(false);
            }
            _ => panic!("push_i64 on non-long builder"),
        }
    }

    pub fn push_f64(&mut self, v: f64) {
        match self {
            BlockBuilder::Double { values, nulls, .. } => {
                values.push(v);
                nulls.push(false);
            }
            _ => panic!("push_f64 on non-double builder"),
        }
    }

    pub fn push_bool(&mut self, v: bool) {
        match self {
            BlockBuilder::Bool { values, nulls, .. } => {
                values.push(v);
                nulls.push(false);
            }
            _ => panic!("push_bool on non-bool builder"),
        }
    }

    pub fn push_str(&mut self, v: &str) {
        match self {
            BlockBuilder::Varchar {
                offsets,
                bytes,
                nulls,
                ..
            } => {
                bytes.extend_from_slice(v.as_bytes());
                offsets.push(bytes.len() as u32);
                nulls.push(false);
            }
            _ => panic!("push_str on non-varchar builder"),
        }
    }

    pub fn push_null(&mut self) {
        match self {
            BlockBuilder::Long {
                values,
                nulls,
                any_null,
            } => {
                values.push(0);
                nulls.push(true);
                *any_null = true;
            }
            BlockBuilder::Double {
                values,
                nulls,
                any_null,
            } => {
                values.push(0.0);
                nulls.push(true);
                *any_null = true;
            }
            BlockBuilder::Bool {
                values,
                nulls,
                any_null,
            } => {
                values.push(false);
                nulls.push(true);
                *any_null = true;
            }
            BlockBuilder::Varchar {
                offsets,
                nulls,
                any_null,
                bytes,
            } => {
                offsets.push(bytes.len() as u32);
                nulls.push(true);
                *any_null = true;
            }
        }
    }

    /// Append a typed [`Value`] (must match the builder's physical type).
    pub fn push_value(&mut self, v: &Value) {
        if v.is_null() {
            return self.push_null();
        }
        match self {
            BlockBuilder::Long { .. } => self.push_i64(v.as_i64().expect("long value")),
            BlockBuilder::Double { .. } => self.push_f64(v.as_f64().expect("double value")),
            BlockBuilder::Bool { .. } => self.push_bool(v.as_bool().expect("bool value")),
            BlockBuilder::Varchar { .. } => self.push_str(v.as_str().expect("varchar value")),
        }
    }

    /// Copy cell `i` of `block` (any encoding) into this builder.
    pub fn append_from(&mut self, block: &Block, i: usize) {
        if block.is_null(i) {
            return self.push_null();
        }
        match self {
            BlockBuilder::Long { .. } => self.push_i64(block.i64_at(i)),
            BlockBuilder::Double { .. } => self.push_f64(block.f64_at(i)),
            BlockBuilder::Bool { .. } => self.push_bool(block.bool_at(i)),
            BlockBuilder::Varchar { .. } => self.push_str(block.str_at(i)),
        }
    }

    /// Append the cells of `block` at `positions`, in order — the scatter
    /// kernel behind coalescing partitioned output. Equivalent to calling
    /// [`BlockBuilder::append_from`] per position, with vectorized fast
    /// paths for flat blocks (no per-cell encoding dispatch), one-lookup
    /// paths for RLE, and id-indirection for dictionaries.
    pub fn append_filtered(&mut self, block: &Block, positions: &[u32]) {
        if positions.is_empty() {
            return;
        }
        match (self, block) {
            (
                BlockBuilder::Long {
                    values,
                    nulls,
                    any_null,
                },
                Block::Long(b),
            ) => {
                values.extend(positions.iter().map(|&p| b.values[p as usize]));
                append_null_run(nulls, any_null, &b.nulls, positions);
            }
            (
                BlockBuilder::Double {
                    values,
                    nulls,
                    any_null,
                },
                Block::Double(b),
            ) => {
                values.extend(positions.iter().map(|&p| b.values[p as usize]));
                append_null_run(nulls, any_null, &b.nulls, positions);
            }
            (
                BlockBuilder::Bool {
                    values,
                    nulls,
                    any_null,
                },
                Block::Bool(b),
            ) => {
                values.extend(positions.iter().map(|&p| b.values[p as usize]));
                append_null_run(nulls, any_null, &b.nulls, positions);
            }
            (
                BlockBuilder::Varchar {
                    offsets,
                    bytes,
                    nulls,
                    any_null,
                },
                Block::Varchar(b),
            ) => {
                for &p in positions {
                    let (start, end) =
                        (b.offsets[p as usize] as usize, b.offsets[p as usize + 1] as usize);
                    bytes.extend_from_slice(&b.bytes[start..end]);
                    offsets.push(bytes.len() as u32);
                }
                append_null_run(nulls, any_null, &b.nulls, positions);
            }
            (this, Block::Rle(b)) => {
                // One decode of the single value, repeated for the run.
                let value = b.value.loaded();
                for _ in 0..positions.len() {
                    this.append_from(value, 0);
                }
            }
            (this, Block::Dictionary(b)) => {
                // Map positions through the id array, then scatter out of
                // the (flat) dictionary.
                let ids: Vec<u32> = positions.iter().map(|&p| b.ids[p as usize]).collect();
                this.append_filtered(b.dictionary.loaded(), &ids);
            }
            (this, Block::Lazy(b)) => this.append_filtered(b.load().loaded(), positions),
            // Type-mismatched pairs: defer to append_from, which panics
            // with the precise push_* message (a planner bug, not data).
            (this, block) => {
                for &p in positions {
                    this.append_from(block, p as usize);
                }
            }
        }
    }

    /// Bytes currently retained; used by operators for memory accounting.
    pub fn size_in_bytes(&self) -> usize {
        match self {
            BlockBuilder::Long { values, nulls, .. } => values.len() * 8 + nulls.len(),
            BlockBuilder::Double { values, nulls, .. } => values.len() * 8 + nulls.len(),
            BlockBuilder::Bool { values, nulls, .. } => values.len() + nulls.len(),
            BlockBuilder::Varchar {
                offsets,
                bytes,
                nulls,
                ..
            } => offsets.len() * 4 + bytes.len() + nulls.len(),
        }
    }

    pub fn finish(self) -> Block {
        match self {
            BlockBuilder::Long {
                values,
                nulls,
                any_null,
            } => Block::Long(LongBlock::new(values, any_null.then_some(nulls))),
            BlockBuilder::Double {
                values,
                nulls,
                any_null,
            } => Block::Double(DoubleBlock::new(values, any_null.then_some(nulls))),
            BlockBuilder::Bool {
                values,
                nulls,
                any_null,
            } => Block::Bool(BoolBlock::new(values, any_null.then_some(nulls))),
            BlockBuilder::Varchar {
                offsets,
                bytes,
                nulls,
                any_null,
            } => Block::Varchar(VarcharBlock {
                offsets,
                bytes,
                nulls: any_null.then_some(nulls),
            }),
        }
    }
}

/// Extend `nulls` with the source mask gathered at `positions` (dense when
/// the source has no mask).
fn append_null_run(
    nulls: &mut Vec<bool>,
    any_null: &mut bool,
    source: &Option<Vec<bool>>,
    positions: &[u32],
) {
    match source {
        None => nulls.resize(nulls.len() + positions.len(), false),
        Some(mask) => {
            for &p in positions {
                let null = mask[p as usize];
                nulls.push(null);
                *any_null |= null;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_each_type() {
        let mut b = BlockBuilder::new(DataType::Bigint);
        b.push_i64(1);
        b.push_null();
        b.push_i64(3);
        let block = b.finish();
        assert_eq!(block.len(), 3);
        assert_eq!(block.i64_at(0), 1);
        assert!(block.is_null(1));

        let mut b = BlockBuilder::new(DataType::Varchar);
        b.push_str("hello");
        b.push_null();
        b.push_str("world");
        let block = b.finish();
        assert_eq!(block.str_at(2), "world");
        assert!(block.is_null(1));
    }

    #[test]
    fn no_null_mask_when_dense() {
        let mut b = BlockBuilder::new(DataType::Double);
        b.push_f64(1.0);
        let block = b.finish();
        match block {
            Block::Double(d) => assert!(d.nulls.is_none()),
            _ => panic!(),
        }
    }

    #[test]
    fn append_from_copies_across_encodings() {
        use crate::blocks::{DictionaryBlock, VarcharBlock};
        use std::sync::Arc;
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["x", "y"])));
        let src = Block::Dictionary(DictionaryBlock::new(dict, vec![1, 0]));
        let mut b = BlockBuilder::new(DataType::Varchar);
        b.append_from(&src, 0);
        b.append_from(&src, 1);
        let out = b.finish();
        assert_eq!(out.str_at(0), "y");
        assert_eq!(out.str_at(1), "x");
    }

    #[test]
    fn append_filtered_matches_append_from_across_encodings() {
        use crate::blocks::{DictionaryBlock, LongBlock, VarcharBlock};
        use std::sync::Arc;
        let flat = Block::Long(LongBlock::new(
            (0..20).collect(),
            Some((0..20).map(|i| i % 5 == 0).collect()),
        ));
        let dict = Block::Dictionary(DictionaryBlock::new(
            Arc::new(Block::from(VarcharBlock::from_strs(&["a", "bb", "ccc"]))),
            (0..20).map(|i| i % 3).collect(),
        ));
        let rle = Block::rle(Block::from(LongBlock::from_values(vec![7])), 20);
        let positions: Vec<u32> = vec![19, 0, 3, 3, 11, 5];
        for block in [&flat, &dict, &rle] {
            let mut fast = BlockBuilder::for_physical(block.physical_type(), 0);
            fast.append_filtered(block, &positions);
            let mut slow = BlockBuilder::for_physical(block.physical_type(), 0);
            for &p in &positions {
                slow.append_from(block, p as usize);
            }
            let (fast, slow) = (fast.finish(), slow.finish());
            assert_eq!(fast.len(), slow.len());
            for i in 0..fast.len() {
                assert_eq!(fast.is_null(i), slow.is_null(i));
                if !fast.is_null(i) {
                    match block.physical_type() {
                        PhysicalType::Varchar => assert_eq!(fast.str_at(i), slow.str_at(i)),
                        _ => assert_eq!(fast.i64_at(i), slow.i64_at(i)),
                    }
                }
            }
        }
    }

    #[test]
    fn push_value_round_trip() {
        let mut b = BlockBuilder::new(DataType::Boolean);
        b.push_value(&Value::Boolean(true));
        b.push_value(&Value::Null);
        let block = b.finish();
        assert_eq!(block.value_at(DataType::Boolean, 0), Value::Boolean(true));
        assert_eq!(block.value_at(DataType::Boolean, 1), Value::Null);
    }
}
