//! The [`Block`] enum: one column's worth of data in one of several
//! encodings, with encoding-transparent accessors.

use std::cmp::Ordering;
use std::sync::Arc;

use presto_common::{DataType, Value};

use crate::blocks::{
    BoolBlock, DictionaryBlock, DoubleBlock, LazyBlock, LongBlock, RleBlock, VarcharBlock,
};

/// Physical representation of a column after full decoding. Several SQL
/// types share one physical type (bigint/date/timestamp are all `Long`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysicalType {
    Long,
    Double,
    Bool,
    Varchar,
}

impl PhysicalType {
    /// The physical lane used to store a SQL type.
    pub fn of(data_type: DataType) -> PhysicalType {
        match data_type {
            DataType::Bigint | DataType::Date | DataType::Timestamp => PhysicalType::Long,
            DataType::Double => PhysicalType::Double,
            DataType::Boolean => PhysicalType::Bool,
            DataType::Varchar => PhysicalType::Varchar,
        }
    }
}

/// One column of a [`crate::Page`], in any encoding.
#[derive(Debug, Clone)]
pub enum Block {
    Long(LongBlock),
    Double(DoubleBlock),
    Bool(BoolBlock),
    Varchar(VarcharBlock),
    Rle(RleBlock),
    Dictionary(DictionaryBlock),
    Lazy(LazyBlock),
}

impl Block {
    /// Number of rows (positions).
    pub fn len(&self) -> usize {
        match self {
            Block::Long(b) => b.len(),
            Block::Double(b) => b.len(),
            Block::Bool(b) => b.len(),
            Block::Varchar(b) => b.len(),
            Block::Rle(b) => b.len(),
            Block::Dictionary(b) => b.len(),
            Block::Lazy(b) => b.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolve lazy indirection (forcing a load) without flattening RLE or
    /// dictionary structure.
    pub fn loaded(&self) -> &Block {
        match self {
            Block::Lazy(b) => b.load().loaded(),
            other => other,
        }
    }

    /// Whether accessing this block's cells costs a decode (lazy, unloaded).
    pub fn is_lazy_unloaded(&self) -> bool {
        matches!(self, Block::Lazy(b) if !b.is_loaded())
    }

    /// Physical type after decoding.
    pub fn physical_type(&self) -> PhysicalType {
        match self.loaded() {
            Block::Long(_) => PhysicalType::Long,
            Block::Double(_) => PhysicalType::Double,
            Block::Bool(_) => PhysicalType::Bool,
            Block::Varchar(_) => PhysicalType::Varchar,
            Block::Rle(b) => b.value.physical_type(),
            Block::Dictionary(b) => b.dictionary.physical_type(),
            Block::Lazy(_) => unreachable!("loaded() resolves lazy blocks"),
        }
    }

    /// NULL test, transparent across encodings.
    pub fn is_null(&self, i: usize) -> bool {
        match self.loaded() {
            Block::Long(b) => b.is_null(i),
            Block::Double(b) => b.is_null(i),
            Block::Bool(b) => b.is_null(i),
            Block::Varchar(b) => b.is_null(i),
            Block::Rle(b) => b.value.is_null(0),
            Block::Dictionary(b) => b.dictionary.is_null(b.ids[i] as usize),
            Block::Lazy(_) => unreachable!(),
        }
    }

    /// Raw i64 lane access (bigint/date/timestamp). The cell must not be
    /// NULL-sensitive: callers check [`Block::is_null`] first; NULL slots
    /// hold an unspecified placeholder.
    pub fn i64_at(&self, i: usize) -> i64 {
        match self.loaded() {
            Block::Long(b) => b.values[i],
            Block::Rle(b) => b.value.i64_at(0),
            Block::Dictionary(b) => b.dictionary.i64_at(b.ids[i] as usize),
            other => panic!("i64_at on {:?} block", other.physical_type()),
        }
    }

    pub fn f64_at(&self, i: usize) -> f64 {
        match self.loaded() {
            Block::Double(b) => b.values[i],
            Block::Rle(b) => b.value.f64_at(0),
            Block::Dictionary(b) => b.dictionary.f64_at(b.ids[i] as usize),
            other => panic!("f64_at on {:?} block", other.physical_type()),
        }
    }

    pub fn bool_at(&self, i: usize) -> bool {
        match self.loaded() {
            Block::Bool(b) => b.values[i],
            Block::Rle(b) => b.value.bool_at(0),
            Block::Dictionary(b) => b.dictionary.bool_at(b.ids[i] as usize),
            other => panic!("bool_at on {:?} block", other.physical_type()),
        }
    }

    pub fn str_at(&self, i: usize) -> &str {
        match self.loaded() {
            Block::Varchar(b) => b.value(i),
            Block::Rle(b) => b.value.str_at(0),
            Block::Dictionary(b) => b.dictionary.str_at(b.ids[i] as usize),
            other => panic!("str_at on {:?} block", other.physical_type()),
        }
    }

    /// Extract one cell as a typed [`Value`], given the column's SQL type.
    pub fn value_at(&self, data_type: DataType, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match data_type {
            DataType::Bigint => Value::Bigint(self.i64_at(i)),
            DataType::Date => Value::Date(self.i64_at(i)),
            DataType::Timestamp => Value::Timestamp(self.i64_at(i)),
            DataType::Double => Value::Double(self.f64_at(i)),
            DataType::Boolean => Value::Boolean(self.bool_at(i)),
            DataType::Varchar => Value::varchar(self.str_at(i)),
        }
    }

    /// Keep only `positions`, preserving structure: dictionary blocks filter
    /// their index array, RLE blocks shrink their count. This is how filters
    /// operate on compressed data without decoding (§V-E).
    pub fn filter(&self, positions: &[u32]) -> Block {
        match self.loaded() {
            Block::Long(b) => Block::Long(b.filter(positions)),
            Block::Double(b) => Block::Double(b.filter(positions)),
            Block::Bool(b) => Block::Bool(b.filter(positions)),
            Block::Varchar(b) => Block::Varchar(b.filter(positions)),
            Block::Rle(b) => Block::Rle(RleBlock {
                value: Arc::clone(&b.value),
                count: positions.len(),
            }),
            Block::Dictionary(b) => Block::Dictionary(b.filter(positions)),
            Block::Lazy(_) => unreachable!(),
        }
    }

    /// Like [`Block::filter`], but preserves laziness: filtering an unloaded
    /// lazy block composes the position list without running the loader.
    pub fn filter_lazy_aware(&self, positions: &[u32]) -> Block {
        match self {
            Block::Lazy(b) => Block::Lazy(b.filter_lazy(positions)),
            other => other.filter(positions),
        }
    }

    /// Fully decode to a flat block, materializing RLE/dictionary structure.
    pub fn decode(&self) -> Block {
        let loaded = self.loaded();
        match loaded {
            Block::Long(_) | Block::Double(_) | Block::Bool(_) | Block::Varchar(_) => {
                loaded.clone()
            }
            Block::Rle(b) => {
                let positions = vec![0u32; b.count];
                b.value.decode().filter(&positions)
            }
            Block::Dictionary(b) => b.dictionary.decode().filter(&b.ids),
            Block::Lazy(_) => unreachable!(),
        }
    }

    /// Approximate retained size, used for memory accounting and buffer
    /// utilization tracking.
    pub fn size_in_bytes(&self) -> usize {
        match self {
            Block::Long(b) => b.size_in_bytes(),
            Block::Double(b) => b.size_in_bytes(),
            Block::Bool(b) => b.size_in_bytes(),
            Block::Varchar(b) => b.size_in_bytes(),
            Block::Rle(b) => b.size_in_bytes(),
            Block::Dictionary(b) => b.size_in_bytes(),
            // An unloaded lazy block retains only its thunk; charge a token
            // amount. Loading moves the real bytes into the cache.
            Block::Lazy(b) => {
                if b.is_loaded() {
                    b.load().size_in_bytes()
                } else {
                    64
                }
            }
        }
    }

    /// Compare cell `i` of `self` with cell `j` of `other` for sorting.
    /// NULLs sort last; both blocks must share a physical type.
    pub fn compare_at(&self, i: usize, other: &Block, j: usize) -> Ordering {
        match (self.is_null(i), other.is_null(j)) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            (false, false) => {}
        }
        match self.physical_type() {
            PhysicalType::Long => self.i64_at(i).cmp(&other.i64_at(j)),
            PhysicalType::Double => self.f64_at(i).total_cmp(&other.f64_at(j)),
            PhysicalType::Bool => self.bool_at(i).cmp(&other.bool_at(j)),
            PhysicalType::Varchar => self.str_at(i).cmp(other.str_at(j)),
        }
    }

    /// SQL equality (`=`) between two cells; NULL never equals anything.
    pub fn eq_at(&self, i: usize, other: &Block, j: usize) -> bool {
        if self.is_null(i) || other.is_null(j) {
            return false;
        }
        match self.physical_type() {
            PhysicalType::Long => self.i64_at(i) == other.i64_at(j),
            PhysicalType::Double => self.f64_at(i) == other.f64_at(j),
            PhysicalType::Bool => self.bool_at(i) == other.bool_at(j),
            PhysicalType::Varchar => self.str_at(i) == other.str_at(j),
        }
    }

    /// Wrap in an RLE block repeating cell 0 of `value` `count` times.
    pub fn rle(value: Block, count: usize) -> Block {
        Block::Rle(RleBlock::new(value, count))
    }

    /// A single-cell block holding `value` with the given SQL type. NULL
    /// cells are representable for every type.
    pub fn single(data_type: DataType, value: &Value) -> Block {
        let null = value.is_null();
        let mask = if null { Some(vec![true]) } else { None };
        match PhysicalType::of(data_type) {
            PhysicalType::Long => {
                Block::Long(LongBlock::new(vec![value.as_i64().unwrap_or(0)], mask))
            }
            PhysicalType::Double => {
                Block::Double(DoubleBlock::new(vec![value.as_f64().unwrap_or(0.0)], mask))
            }
            PhysicalType::Bool => {
                Block::Bool(BoolBlock::new(vec![value.as_bool().unwrap_or(false)], mask))
            }
            PhysicalType::Varchar => {
                let s = value.as_str().unwrap_or("");
                let mut b = VarcharBlock::from_strs(&[s]);
                b.nulls = mask;
                Block::Varchar(b)
            }
        }
    }

    /// Build a flat block from typed values.
    pub fn from_values(data_type: DataType, values: &[Value]) -> Block {
        let mut nulls = vec![false; values.len()];
        let mut any_null = false;
        for (i, v) in values.iter().enumerate() {
            if v.is_null() {
                nulls[i] = true;
                any_null = true;
            }
        }
        let mask = if any_null { Some(nulls) } else { None };
        match PhysicalType::of(data_type) {
            PhysicalType::Long => Block::Long(LongBlock::new(
                values.iter().map(|v| v.as_i64().unwrap_or(0)).collect(),
                mask,
            )),
            PhysicalType::Double => Block::Double(DoubleBlock::new(
                values.iter().map(|v| v.as_f64().unwrap_or(0.0)).collect(),
                mask,
            )),
            PhysicalType::Bool => Block::Bool(BoolBlock::new(
                values
                    .iter()
                    .map(|v| v.as_bool().unwrap_or(false))
                    .collect(),
                mask,
            )),
            PhysicalType::Varchar => {
                let mut b = VarcharBlock::from_strs(
                    &values
                        .iter()
                        .map(|v| v.as_str().unwrap_or(""))
                        .collect::<Vec<_>>(),
                );
                b.nulls = mask;
                Block::Varchar(b)
            }
        }
    }
}

impl From<LongBlock> for Block {
    fn from(b: LongBlock) -> Block {
        Block::Long(b)
    }
}

impl From<DoubleBlock> for Block {
    fn from(b: DoubleBlock) -> Block {
        Block::Double(b)
    }
}

impl From<BoolBlock> for Block {
    fn from(b: BoolBlock) -> Block {
        Block::Bool(b)
    }
}

impl From<VarcharBlock> for Block {
    fn from(b: VarcharBlock) -> Block {
        Block::Varchar(b)
    }
}

impl From<RleBlock> for Block {
    fn from(b: RleBlock) -> Block {
        Block::Rle(b)
    }
}

impl From<DictionaryBlock> for Block {
    fn from(b: DictionaryBlock) -> Block {
        Block::Dictionary(b)
    }
}

impl From<LazyBlock> for Block {
    fn from(b: LazyBlock) -> Block {
        Block::Lazy(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_block() -> Block {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&[
            "IN PERSON",
            "COD",
            "NONE",
        ])));
        Block::Dictionary(DictionaryBlock::new(dict, vec![0, 1, 2, 1, 0]))
    }

    #[test]
    fn accessors_see_through_encodings() {
        let b = dict_block();
        assert_eq!(b.len(), 5);
        assert_eq!(b.str_at(0), "IN PERSON");
        assert_eq!(b.str_at(3), "COD");
        let rle = Block::rle(Block::from(LongBlock::from_values(vec![42])), 4);
        assert_eq!(rle.len(), 4);
        assert_eq!(rle.i64_at(3), 42);
    }

    #[test]
    fn decode_flattens() {
        let b = dict_block();
        let flat = b.decode();
        assert!(matches!(flat, Block::Varchar(_)));
        for i in 0..b.len() {
            assert_eq!(flat.str_at(i), b.str_at(i));
        }
        let rle = Block::rle(Block::from(DoubleBlock::from_values(vec![1.5])), 3);
        let flat = rle.decode();
        assert!(matches!(flat, Block::Double(_)));
        assert_eq!(flat.len(), 3);
        assert_eq!(flat.f64_at(2), 1.5);
    }

    #[test]
    fn filter_preserves_structure() {
        let b = dict_block();
        let f = b.filter(&[0, 2, 4]);
        assert!(
            matches!(f, Block::Dictionary(_)),
            "dictionary structure kept"
        );
        assert_eq!(f.str_at(1), "NONE");
        let rle = Block::rle(Block::from(BoolBlock::from_values(vec![true])), 10);
        let f = rle.filter(&[1, 2]);
        assert!(matches!(f, Block::Rle(_)));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn lazy_blocks_resolve_transparently() {
        let lazy = Block::Lazy(LazyBlock::new(3, || {
            Block::from(LongBlock::from_values(vec![1, 2, 3]))
        }));
        assert!(lazy.is_lazy_unloaded());
        assert_eq!(lazy.i64_at(1), 2);
        assert!(!lazy.is_lazy_unloaded());
    }

    #[test]
    fn typed_value_extraction() {
        let b = Block::from(LongBlock::from_values(vec![10]));
        assert_eq!(b.value_at(DataType::Bigint, 0), Value::Bigint(10));
        assert_eq!(b.value_at(DataType::Date, 0), Value::Date(10));
        let n = Block::single(DataType::Varchar, &Value::Null);
        assert_eq!(n.value_at(DataType::Varchar, 0), Value::Null);
    }

    #[test]
    fn from_values_round_trip() {
        let vals = vec![Value::Bigint(1), Value::Null, Value::Bigint(3)];
        let b = Block::from_values(DataType::Bigint, &vals);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&b.value_at(DataType::Bigint, i), v);
        }
    }

    #[test]
    fn compare_and_eq_semantics() {
        let a = Block::from_values(DataType::Bigint, &[Value::Bigint(1), Value::Null]);
        let b = Block::from_values(DataType::Bigint, &[Value::Bigint(1), Value::Null]);
        assert!(a.eq_at(0, &b, 0));
        assert!(!a.eq_at(1, &b, 1), "NULL != NULL under SQL equality");
        assert_eq!(
            a.compare_at(1, &b, 1),
            Ordering::Equal,
            "NULLs tie in sort order"
        );
        assert_eq!(a.compare_at(0, &b, 1), Ordering::Less, "NULL sorts last");
    }

    #[test]
    fn rle_of_null() {
        let b = Block::rle(Block::single(DataType::Double, &Value::Null), 5);
        assert!(b.is_null(4));
    }
}
