//! [`Page`]: the unit of data moved between operators by the driver loop.

use presto_common::{Schema, Value};

use crate::block::Block;

/// A columnar batch of rows: one [`Block`] per column, all the same length.
#[derive(Debug, Clone)]
pub struct Page {
    blocks: Vec<Block>,
    row_count: usize,
}

impl Page {
    /// Build a page from equal-length blocks. Panics on length mismatch —
    /// producing ragged pages is an engine bug, not a recoverable error.
    pub fn new(blocks: Vec<Block>) -> Page {
        let row_count = blocks.first().map_or(0, Block::len);
        for b in &blocks {
            assert_eq!(b.len(), row_count, "ragged page");
        }
        Page { blocks, row_count }
    }

    /// A page with rows but no columns — produced by `SELECT COUNT(*)`-style
    /// scans that need cardinality only.
    pub fn zero_column(row_count: usize) -> Page {
        Page {
            blocks: Vec::new(),
            row_count,
        }
    }

    pub fn empty() -> Page {
        Page {
            blocks: Vec::new(),
            row_count: 0,
        }
    }

    pub fn row_count(&self) -> usize {
        self.row_count
    }

    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    pub fn column_count(&self) -> usize {
        self.blocks.len()
    }

    pub fn block(&self, i: usize) -> &Block {
        &self.blocks[i]
    }

    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    pub fn into_blocks(self) -> Vec<Block> {
        self.blocks
    }

    /// Total size of all blocks, for buffer accounting.
    pub fn size_in_bytes(&self) -> usize {
        self.blocks.iter().map(Block::size_in_bytes).sum()
    }

    /// Keep only the given row positions in every column. Unloaded lazy
    /// blocks stay lazy: the position list is composed into the view, so a
    /// selective filter never forces unreferenced columns to decode (§V-D).
    pub fn filter(&self, positions: &[u32]) -> Page {
        Page {
            blocks: self
                .blocks
                .iter()
                .map(|b| b.filter_lazy_aware(positions))
                .collect(),
            row_count: positions.len(),
        }
    }

    /// Keep only the given columns, in order.
    pub fn project(&self, columns: &[usize]) -> Page {
        Page {
            blocks: columns.iter().map(|&c| self.blocks[c].clone()).collect(),
            row_count: self.row_count,
        }
    }

    /// Append the columns of `other` (same row count) to this page.
    pub fn append_columns(&self, other: &Page) -> Page {
        assert_eq!(
            self.row_count, other.row_count,
            "column append row mismatch"
        );
        let mut blocks = self.blocks.clone();
        blocks.extend(other.blocks.iter().cloned());
        Page {
            blocks,
            row_count: self.row_count,
        }
    }

    /// First `n` rows.
    pub fn truncate(&self, n: usize) -> Page {
        if n >= self.row_count {
            return self.clone();
        }
        let positions: Vec<u32> = (0..n as u32).collect();
        self.filter(&positions)
    }

    /// Force every lazy block to materialize. Used before pages cross task
    /// boundaries (serialization) or get retained in operator state.
    pub fn load_all(&self) -> Page {
        Page {
            blocks: self.blocks.iter().map(|b| b.loaded().clone()).collect(),
            row_count: self.row_count,
        }
    }

    /// Extract one row as typed values, given the page's schema.
    pub fn row(&self, schema: &Schema, i: usize) -> Vec<Value> {
        self.blocks
            .iter()
            .zip(schema.fields())
            .map(|(b, f)| b.value_at(f.data_type, i))
            .collect()
    }

    /// Build a page from row-oriented values (test / client convenience).
    pub fn from_rows(schema: &Schema, rows: &[Vec<Value>]) -> Page {
        let blocks = (0..schema.len())
            .map(|c| {
                let column: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
                Block::from_values(schema.data_type(c), &column)
            })
            .collect();
        Page {
            blocks,
            row_count: rows.len(),
        }
    }

    /// Materialize all rows as typed values (test / client convenience).
    pub fn to_rows(&self, schema: &Schema) -> Vec<Vec<Value>> {
        (0..self.row_count).map(|i| self.row(schema, i)).collect()
    }

    /// Gather rows addressed as `(page, row)` across several pages into one
    /// flat page (the join probe's build-side materialization). Works
    /// column-major so each output block fills in one pass.
    pub fn gather_rows(
        pages: &[Page],
        addrs: &[(u32, u32)],
        types: &[presto_common::DataType],
    ) -> Page {
        if types.is_empty() {
            return Page::zero_column(addrs.len());
        }
        let blocks = types
            .iter()
            .enumerate()
            .map(|(c, &t)| {
                let mut builder = crate::builder::BlockBuilder::with_capacity(t, addrs.len());
                for &(p, r) in addrs {
                    builder.append_from(pages[p as usize].block(c), r as usize);
                }
                builder.finish()
            })
            .collect();
        Page {
            blocks,
            row_count: addrs.len(),
        }
    }

    /// Concatenate pages (all with the same column layout) into one flat page.
    pub fn concat(pages: &[Page]) -> Page {
        match pages {
            [] => Page::empty(),
            [single] => single.clone(),
            _ => {
                let columns = pages[0].column_count();
                let total: usize = pages.iter().map(Page::row_count).sum();
                let blocks = (0..columns)
                    .map(|c| {
                        // Decode-and-copy concat; only used off the hot path
                        // (final result assembly, spill merge, tests).
                        let mut out: Option<ConcatBuilder> = None;
                        for p in pages {
                            let b = p.block(c).decode();
                            out.get_or_insert_with(|| ConcatBuilder::for_block(&b))
                                .push(&b);
                        }
                        out.expect("non-empty page list").finish()
                    })
                    .collect();
                Page {
                    blocks,
                    row_count: total,
                }
            }
        }
    }
}

/// Helper that appends decoded flat blocks of one physical type.
struct ConcatBuilder {
    template: Block,
    parts: Vec<Block>,
}

impl ConcatBuilder {
    fn for_block(b: &Block) -> ConcatBuilder {
        ConcatBuilder {
            template: b.clone(),
            parts: Vec::new(),
        }
    }

    fn push(&mut self, b: &Block) {
        self.parts.push(b.clone());
    }

    fn finish(self) -> Block {
        use crate::blocks::*;
        let total: usize = self.parts.iter().map(Block::len).sum();
        let any_null = self
            .parts
            .iter()
            .any(|p| (0..p.len()).any(|i| p.is_null(i)));
        let mut nulls = if any_null {
            Some(Vec::with_capacity(total))
        } else {
            None
        };
        macro_rules! gather {
            ($get:ident, $default:expr) => {{
                let mut values = Vec::with_capacity(total);
                for p in &self.parts {
                    for i in 0..p.len() {
                        let null = p.is_null(i);
                        if let Some(mask) = nulls.as_mut() {
                            mask.push(null);
                        }
                        values.push(if null { $default } else { p.$get(i) });
                    }
                }
                values
            }};
        }
        match self.template.physical_type() {
            crate::block::PhysicalType::Long => {
                let values = gather!(i64_at, 0);
                Block::Long(LongBlock::new(values, nulls))
            }
            crate::block::PhysicalType::Double => {
                let values = gather!(f64_at, 0.0);
                Block::Double(DoubleBlock::new(values, nulls))
            }
            crate::block::PhysicalType::Bool => {
                let values = gather!(bool_at, false);
                Block::Bool(BoolBlock::new(values, nulls))
            }
            crate::block::PhysicalType::Varchar => {
                let mut strs: Vec<Option<String>> = Vec::with_capacity(total);
                for p in &self.parts {
                    for i in 0..p.len() {
                        strs.push(if p.is_null(i) {
                            None
                        } else {
                            Some(p.str_at(i).to_string())
                        });
                    }
                }
                Block::Varchar(VarcharBlock::from_options(&strs))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{DoubleBlock, LongBlock, VarcharBlock};
    use presto_common::DataType;

    fn schema() -> Schema {
        Schema::of(&[
            ("k", DataType::Bigint),
            ("v", DataType::Double),
            ("s", DataType::Varchar),
        ])
    }

    fn page() -> Page {
        Page::new(vec![
            Block::from(LongBlock::from_values(vec![1, 2, 3])),
            Block::from(DoubleBlock::from_values(vec![0.1, 0.2, 0.3])),
            Block::from(VarcharBlock::from_strs(&["a", "b", "c"])),
        ])
    }

    #[test]
    #[should_panic(expected = "ragged page")]
    fn ragged_page_panics() {
        Page::new(vec![
            Block::from(LongBlock::from_values(vec![1])),
            Block::from(LongBlock::from_values(vec![1, 2])),
        ]);
    }

    #[test]
    fn rows_round_trip() {
        let s = schema();
        let rows = vec![
            vec![Value::Bigint(1), Value::Double(0.5), Value::varchar("x")],
            vec![Value::Null, Value::Double(1.5), Value::Null],
        ];
        let p = Page::from_rows(&s, &rows);
        assert_eq!(p.to_rows(&s), rows);
    }

    #[test]
    fn filter_and_project() {
        let p = page().filter(&[2, 0]).project(&[2, 0]);
        assert_eq!(p.row_count(), 2);
        assert_eq!(p.block(0).str_at(0), "c");
        assert_eq!(p.block(1).i64_at(1), 1);
    }

    #[test]
    fn concat_mixed_nulls() {
        let s = Schema::of(&[("x", DataType::Bigint)]);
        let a = Page::from_rows(&s, &[vec![Value::Bigint(1)]]);
        let b = Page::from_rows(&s, &[vec![Value::Null], vec![Value::Bigint(3)]]);
        let c = Page::concat(&[a, b]);
        assert_eq!(
            c.to_rows(&s),
            vec![
                vec![Value::Bigint(1)],
                vec![Value::Null],
                vec![Value::Bigint(3)]
            ]
        );
    }

    #[test]
    fn zero_column_page_carries_cardinality() {
        let p = Page::zero_column(10);
        assert_eq!(p.row_count(), 10);
        assert_eq!(p.column_count(), 0);
        assert_eq!(p.truncate(4).row_count(), 4);
    }

    #[test]
    fn truncate_noop_when_larger() {
        let p = page();
        assert_eq!(p.truncate(100).row_count(), 3);
    }

    #[test]
    fn append_columns() {
        let p = page();
        let extra = Page::new(vec![Block::from(LongBlock::from_values(vec![9, 9, 9]))]);
        let combined = p.append_columns(&extra);
        assert_eq!(combined.column_count(), 4);
        assert_eq!(combined.block(3).i64_at(0), 9);
    }
}
