//! Page wire format.
//!
//! Pages are serialized when they cross task boundaries (shuffles) and when
//! revocable state spills to disk. The format preserves RLE and dictionary
//! structure so that the receiving side can keep operating on compressed
//! data — the paper's shuffle ships pages, not decoded rows. Lazy blocks are
//! forced before encoding (data leaving a task is, by definition, accessed).
//!
//! Layout (little-endian): `u32 column_count`, `u32 row_count`, then each
//! block: `u8 tag` followed by a tag-specific body. Null masks are encoded
//! as a presence byte plus a packed bitset.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use presto_common::{PrestoError, Result};
use std::sync::Arc;

use crate::block::Block;
use crate::blocks::{
    BoolBlock, DictionaryBlock, DoubleBlock, LongBlock, NullMask, RleBlock, VarcharBlock,
};
use crate::page::Page;

const TAG_LONG: u8 = 0;
const TAG_DOUBLE: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_VARCHAR: u8 = 3;
const TAG_RLE: u8 = 4;
const TAG_DICTIONARY: u8 = 5;

/// Serialize a page, preserving block encodings.
pub fn serialize_page(page: &Page) -> Bytes {
    let mut buf = BytesMut::with_capacity(page.size_in_bytes() + 64);
    buf.put_u32_le(page.column_count() as u32);
    buf.put_u32_le(page.row_count() as u32);
    for block in page.blocks() {
        encode_block(block.loaded(), &mut buf);
    }
    buf.freeze()
}

/// Serialize a single block (used by the PORC file format to store columns
/// independently addressable within a stripe).
pub fn serialize_block(block: &Block) -> Bytes {
    let mut buf = BytesMut::with_capacity(block.size_in_bytes() + 16);
    encode_block(block.loaded(), &mut buf);
    buf.freeze()
}

/// Deserialize a block produced by [`serialize_block`].
pub fn deserialize_block(bytes: &[u8]) -> Result<Block> {
    let mut buf = bytes;
    decode_block(&mut buf)
}

/// Deserialize a page produced by [`serialize_page`].
pub fn deserialize_page(bytes: &[u8]) -> Result<Page> {
    let mut buf = bytes;
    let columns = read_u32(&mut buf)? as usize;
    let rows = read_u32(&mut buf)? as usize;
    let mut blocks = Vec::with_capacity(columns);
    for _ in 0..columns {
        let block = decode_block(&mut buf)?;
        if block.len() != rows {
            return Err(PrestoError::internal(
                "page codec: block row count mismatch",
            ));
        }
        blocks.push(block);
    }
    if columns == 0 {
        return Ok(Page::zero_column(rows));
    }
    Ok(Page::new(blocks))
}

fn encode_null_mask(mask: &NullMask, buf: &mut BytesMut) {
    match mask {
        None => buf.put_u8(0),
        Some(mask) => {
            buf.put_u8(1);
            buf.put_u32_le(mask.len() as u32);
            let mut byte = 0u8;
            for (i, &null) in mask.iter().enumerate() {
                if null {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    buf.put_u8(byte);
                    byte = 0;
                }
            }
            if mask.len() % 8 != 0 {
                buf.put_u8(byte);
            }
        }
    }
}

fn decode_null_mask(buf: &mut &[u8]) -> Result<NullMask> {
    match read_u8(buf)? {
        0 => Ok(None),
        1 => {
            let len = read_u32(buf)? as usize;
            let bytes = len.div_ceil(8);
            if buf.remaining() < bytes {
                return Err(truncated());
            }
            let mut mask = Vec::with_capacity(len);
            for i in 0..len {
                let byte = buf[i / 8];
                mask.push(byte & (1 << (i % 8)) != 0);
            }
            buf.advance(bytes);
            Ok(Some(mask))
        }
        t => Err(PrestoError::internal(format!(
            "page codec: bad null-mask tag {t}"
        ))),
    }
}

fn encode_block(block: &Block, buf: &mut BytesMut) {
    match block {
        Block::Long(b) => {
            buf.put_u8(TAG_LONG);
            buf.put_u32_le(b.len() as u32);
            encode_null_mask(&b.nulls, buf);
            for &v in &b.values {
                buf.put_i64_le(v);
            }
        }
        Block::Double(b) => {
            buf.put_u8(TAG_DOUBLE);
            buf.put_u32_le(b.len() as u32);
            encode_null_mask(&b.nulls, buf);
            for &v in &b.values {
                buf.put_f64_le(v);
            }
        }
        Block::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u32_le(b.len() as u32);
            encode_null_mask(&b.nulls, buf);
            for &v in &b.values {
                buf.put_u8(v as u8);
            }
        }
        Block::Varchar(b) => {
            buf.put_u8(TAG_VARCHAR);
            buf.put_u32_le(b.len() as u32);
            encode_null_mask(&b.nulls, buf);
            for &o in &b.offsets {
                buf.put_u32_le(o);
            }
            buf.put_u32_le(b.bytes.len() as u32);
            buf.put_slice(&b.bytes);
        }
        Block::Rle(b) => {
            buf.put_u8(TAG_RLE);
            buf.put_u32_le(b.count as u32);
            encode_block(b.value.loaded(), buf);
        }
        Block::Dictionary(b) => {
            buf.put_u8(TAG_DICTIONARY);
            buf.put_u32_le(b.ids.len() as u32);
            for &id in &b.ids {
                buf.put_u32_le(id);
            }
            encode_block(b.dictionary.loaded(), buf);
        }
        Block::Lazy(b) => encode_block(b.load().loaded(), buf),
    }
}

fn decode_block(buf: &mut &[u8]) -> Result<Block> {
    let tag = read_u8(buf)?;
    match tag {
        TAG_LONG => {
            let len = read_u32(buf)? as usize;
            let nulls = decode_null_mask(buf)?;
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(read_i64(buf)?);
            }
            Ok(Block::Long(LongBlock::new(values, nulls)))
        }
        TAG_DOUBLE => {
            let len = read_u32(buf)? as usize;
            let nulls = decode_null_mask(buf)?;
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(f64::from_bits(read_i64(buf)? as u64));
            }
            Ok(Block::Double(DoubleBlock::new(values, nulls)))
        }
        TAG_BOOL => {
            let len = read_u32(buf)? as usize;
            let nulls = decode_null_mask(buf)?;
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(read_u8(buf)? != 0);
            }
            Ok(Block::Bool(BoolBlock::new(values, nulls)))
        }
        TAG_VARCHAR => {
            let len = read_u32(buf)? as usize;
            let nulls = decode_null_mask(buf)?;
            let mut offsets = Vec::with_capacity(len + 1);
            for _ in 0..len + 1 {
                offsets.push(read_u32(buf)?);
            }
            let nbytes = read_u32(buf)? as usize;
            if buf.remaining() < nbytes {
                return Err(truncated());
            }
            let bytes = buf[..nbytes].to_vec();
            buf.advance(nbytes);
            std::str::from_utf8(&bytes)
                .map_err(|_| PrestoError::internal("page codec: invalid utf-8"))?;
            Ok(Block::Varchar(VarcharBlock {
                offsets,
                bytes,
                nulls,
            }))
        }
        TAG_RLE => {
            let count = read_u32(buf)? as usize;
            let value = decode_block(buf)?;
            if value.len() != 1 {
                return Err(PrestoError::internal(
                    "page codec: RLE value must be single-row",
                ));
            }
            Ok(Block::Rle(RleBlock {
                value: Arc::new(value),
                count,
            }))
        }
        TAG_DICTIONARY => {
            let len = read_u32(buf)? as usize;
            let mut ids = Vec::with_capacity(len);
            for _ in 0..len {
                ids.push(read_u32(buf)?);
            }
            let dictionary = decode_block(buf)?;
            if ids.iter().any(|&id| id as usize >= dictionary.len()) {
                return Err(PrestoError::internal(
                    "page codec: dictionary id out of range",
                ));
            }
            Ok(Block::Dictionary(DictionaryBlock::new(
                Arc::new(dictionary),
                ids,
            )))
        }
        t => Err(PrestoError::internal(format!(
            "page codec: unknown block tag {t}"
        ))),
    }
}

fn truncated() -> PrestoError {
    PrestoError::internal("page codec: truncated input")
}

fn read_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(truncated());
    }
    Ok(buf.get_u8())
}

fn read_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(truncated());
    }
    Ok(buf.get_u32_le())
}

fn read_i64(buf: &mut &[u8]) -> Result<i64> {
    if buf.remaining() < 8 {
        return Err(truncated());
    }
    Ok(buf.get_i64_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};

    fn round_trip(page: &Page) -> Page {
        deserialize_page(&serialize_page(page)).expect("round trip")
    }

    #[test]
    fn flat_page_round_trip() {
        let schema = Schema::of(&[
            ("a", DataType::Bigint),
            ("b", DataType::Double),
            ("c", DataType::Varchar),
            ("d", DataType::Boolean),
        ]);
        let rows = vec![
            vec![
                Value::Bigint(1),
                Value::Double(1.5),
                Value::varchar("x"),
                Value::Boolean(true),
            ],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
            vec![
                Value::Bigint(-7),
                Value::Double(f64::MIN),
                Value::varchar(""),
                Value::Boolean(false),
            ],
        ];
        let page = Page::from_rows(&schema, &rows);
        assert_eq!(round_trip(&page).to_rows(&schema), rows);
    }

    #[test]
    fn structured_encodings_survive() {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["F", "O"])));
        let page = Page::new(vec![
            Block::Dictionary(DictionaryBlock::new(dict, vec![0, 1, 0])),
            Block::rle(Block::from(LongBlock::from_values(vec![9])), 3),
        ]);
        let decoded = round_trip(&page);
        assert!(matches!(decoded.block(0), Block::Dictionary(_)));
        assert!(matches!(decoded.block(1), Block::Rle(_)));
        assert_eq!(decoded.block(0).str_at(2), "F");
        assert_eq!(decoded.block(1).i64_at(1), 9);
    }

    #[test]
    fn zero_column_page() {
        let page = Page::zero_column(42);
        assert_eq!(round_trip(&page).row_count(), 42);
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        assert!(deserialize_page(&[]).is_err());
        assert!(deserialize_page(&[1, 0, 0, 0]).is_err());
        let good = serialize_page(&Page::new(vec![Block::from(LongBlock::from_values(vec![
            1, 2,
        ]))]));
        let mut bad = good.to_vec();
        bad.truncate(bad.len() - 3);
        assert!(deserialize_page(&bad).is_err());
    }

    #[test]
    fn large_null_mask_round_trip() {
        let values: Vec<Value> = (0..1000)
            .map(|i| {
                if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::Bigint(i)
                }
            })
            .collect();
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        let page = Page::from_rows(
            &schema,
            &values.iter().map(|v| vec![v.clone()]).collect::<Vec<_>>(),
        );
        assert_eq!(round_trip(&page).to_rows(&schema), page.to_rows(&schema));
    }
}
