//! Property tests for the columnar page layer: codec round-trips, encoding
//! equivalence, and dictionary-aware hashing.
#![allow(clippy::unwrap_used)]

use presto_common::{DataType, Field, Schema, Value};
use presto_page::blocks::{DictionaryBlock, VarcharBlock};
use presto_page::hash::hash_columns;
use presto_page::{deserialize_page, serialize_page, Block, Page};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_value(dt: DataType) -> BoxedStrategy<Value> {
    match dt {
        DataType::Bigint => prop_oneof![
            3 => any::<i64>().prop_map(Value::Bigint),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Double => prop_oneof![
            3 => any::<f64>().prop_filter("finite", |v| v.is_finite()).prop_map(Value::Double),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Boolean => prop_oneof![
            3 => any::<bool>().prop_map(Value::Boolean),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Varchar => prop_oneof![
            3 => "[a-zA-Z0-9 ]{0,12}".prop_map(Value::varchar),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Date => any::<i32>().prop_map(|d| Value::Date(d as i64)).boxed(),
        DataType::Timestamp => any::<i64>().prop_map(Value::Timestamp).boxed(),
    }
}

fn arb_schema() -> impl Strategy<Value = Schema> {
    proptest::collection::vec(
        prop_oneof![
            Just(DataType::Bigint),
            Just(DataType::Double),
            Just(DataType::Boolean),
            Just(DataType::Varchar),
            Just(DataType::Date),
        ],
        1..5,
    )
    .prop_map(|types| {
        Schema::new(
            types
                .into_iter()
                .enumerate()
                .map(|(i, t)| Field::new(format!("c{i}"), t))
                .collect(),
        )
    })
}

fn arb_page() -> impl Strategy<Value = (Schema, Page)> {
    arb_schema().prop_flat_map(|schema| {
        let row_strategies: Vec<BoxedStrategy<Value>> = schema
            .fields()
            .iter()
            .map(|f| arb_value(f.data_type))
            .collect();
        let schema2 = schema.clone();
        proptest::collection::vec(row_strategies, 0..40)
            .prop_map(move |rows| (schema2.clone(), Page::from_rows(&schema2, &rows)))
    })
}

proptest! {
    #[test]
    fn codec_round_trips_any_page((schema, page) in arb_page()) {
        let decoded = deserialize_page(&serialize_page(&page)).unwrap();
        prop_assert_eq!(decoded.to_rows(&schema), page.to_rows(&schema));
    }

    #[test]
    fn filter_then_decode_equals_decode_then_select(
        (schema, page) in arb_page(),
        selector in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let positions: Vec<u32> = (0..page.row_count())
            .filter(|&i| *selector.get(i).unwrap_or(&false))
            .map(|i| i as u32)
            .collect();
        let filtered = page.filter(&positions);
        let expected: Vec<Vec<Value>> = positions
            .iter()
            .map(|&p| page.row(&schema, p as usize))
            .collect();
        prop_assert_eq!(filtered.to_rows(&schema), expected);
    }

    #[test]
    fn hashing_is_encoding_invariant(strings in proptest::collection::vec("[a-c]{1,3}", 1..50)) {
        // Build the same logical column flat and dictionary-encoded.
        let flat = Page::new(vec![Block::from(VarcharBlock::from_strs(&strings))]);
        let mut distinct: Vec<String> = strings.clone();
        distinct.sort();
        distinct.dedup();
        let ids: Vec<u32> = strings
            .iter()
            .map(|s| distinct.iter().position(|d| d == s).unwrap() as u32)
            .collect();
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&distinct)));
        let encoded = Page::new(vec![Block::Dictionary(DictionaryBlock::new(dict, ids))]);
        prop_assert_eq!(hash_columns(&flat, &[0]), hash_columns(&encoded, &[0]));
    }

    #[test]
    fn concat_preserves_rows((schema, page) in arb_page()) {
        let doubled = Page::concat(&[page.clone(), page.clone()]);
        let mut expected = page.to_rows(&schema);
        expected.extend(page.to_rows(&schema));
        prop_assert_eq!(doubled.to_rows(&schema), expected);
    }

    #[test]
    fn truncate_is_prefix((schema, page) in arb_page(), n in 0usize..50) {
        let truncated = page.truncate(n);
        let expected: Vec<_> = page.to_rows(&schema).into_iter().take(n).collect();
        prop_assert_eq!(truncated.to_rows(&schema), expected);
    }
}
