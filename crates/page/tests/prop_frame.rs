//! Property tests for the framed wire codec (§IV-E2): round-trips across
//! every block encoding × null masks × compression settings, and detection
//! of arbitrary single-byte corruption as a *retryable* error.
#![allow(clippy::unwrap_used)]

use presto_common::{DataType, Field, Schema, Value};
use presto_page::blocks::{DictionaryBlock, VarcharBlock};
use presto_page::{decode_framed_page, frame_info, frame_page, Block, Page};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_value(dt: DataType) -> BoxedStrategy<Value> {
    match dt {
        DataType::Bigint => prop_oneof![
            3 => any::<i64>().prop_map(Value::Bigint),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Double => prop_oneof![
            3 => any::<f64>().prop_filter("finite", |v| v.is_finite()).prop_map(Value::Double),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Boolean => prop_oneof![
            3 => any::<bool>().prop_map(Value::Boolean),
            1 => Just(Value::Null),
        ]
        .boxed(),
        _ => prop_oneof![
            3 => "[a-zA-Z0-9 ]{0,12}".prop_map(Value::varchar),
            1 => Just(Value::Null),
        ]
        .boxed(),
    }
}

fn arb_schema() -> impl Strategy<Value = Schema> {
    proptest::collection::vec(
        prop_oneof![
            Just(DataType::Bigint),
            Just(DataType::Double),
            Just(DataType::Boolean),
            Just(DataType::Varchar),
        ],
        1..4,
    )
    .prop_map(|types| {
        Schema::new(
            types
                .into_iter()
                .enumerate()
                .map(|(i, t)| Field::new(format!("c{i}"), t))
                .collect(),
        )
    })
}

/// Flat pages over every type, with proptest-driven null masks.
fn arb_flat_page() -> BoxedStrategy<(Schema, Page)> {
    arb_schema()
        .prop_flat_map(|schema| {
            let cols: Vec<BoxedStrategy<Value>> = schema
                .fields()
                .iter()
                .map(|f| arb_value(f.data_type))
                .collect();
            let schema2 = schema.clone();
            proptest::collection::vec(cols, 0..48)
                .prop_map(move |rows| (schema2.clone(), Page::from_rows(&schema2, &rows)))
        })
        .boxed()
}

/// A single-column RLE page: one repeated (possibly null) value.
fn arb_rle_page() -> BoxedStrategy<(Schema, Page)> {
    (arb_value(DataType::Bigint), 1usize..200)
        .prop_map(|(v, count)| {
            let schema = Schema::of(&[("k", DataType::Bigint)]);
            let single = Page::from_rows(&schema, &[vec![v]]);
            let page = Page::new(vec![Block::rle(single.block(0).clone(), count)]);
            (schema, page)
        })
        .boxed()
}

/// A dictionary-encoded varchar column with proptest-chosen ids.
fn arb_dict_page() -> BoxedStrategy<(Schema, Page)> {
    (
        proptest::collection::vec("[a-z]{1,6}", 1..8),
        proptest::collection::vec(any::<u64>(), 1..64),
    )
        .prop_map(|(dict, picks)| {
            let schema = Schema::of(&[("s", DataType::Varchar)]);
            let strs: Vec<&str> = dict.iter().map(String::as_str).collect();
            let dictionary = Arc::new(Block::from(VarcharBlock::from_strs(&strs)));
            let ids: Vec<u32> = picks.iter().map(|p| (p % dict.len() as u64) as u32).collect();
            let page = Page::new(vec![Block::Dictionary(DictionaryBlock::new(dictionary, ids))]);
            (schema, page)
        })
        .boxed()
}

fn arb_any_page() -> impl Strategy<Value = (Schema, Page)> {
    prop_oneof![
        4 => arb_flat_page(),
        1 => arb_rle_page(),
        1 => arb_dict_page(),
    ]
}

proptest! {
    #[test]
    fn framed_codec_round_trips_every_encoding(
        (schema, page) in arb_any_page(),
        compress in any::<bool>(),
    ) {
        // Threshold 0 forces the compressor on every payload; usize::MAX
        // disables it. Both must round-trip the logical rows exactly.
        let threshold = if compress { 0 } else { usize::MAX };
        let frame = frame_page(&page, threshold);
        let info = frame_info(&frame).unwrap();
        prop_assert_eq!(info.wire_len + 17, frame.len());
        let decoded = decode_framed_page(&frame).unwrap();
        prop_assert_eq!(decoded.row_count(), page.row_count());
        prop_assert_eq!(decoded.to_rows(&schema), page.to_rows(&schema));
    }

    #[test]
    fn any_single_byte_flip_is_detected_and_retryable(
        (_, page) in arb_any_page(),
        compress in any::<bool>(),
        pos in any::<u64>(),
        bit in 0u32..8,
    ) {
        let threshold = if compress { 0 } else { usize::MAX };
        let mut bad = frame_page(&page, threshold).to_vec();
        let i = (pos % bad.len() as u64) as usize;
        bad[i] ^= 1 << bit;
        // Header fields are validated, the body is checksummed, and raw
        // frames must satisfy uncompressed_len == wire_len — every flip is
        // caught, and always as a transient (re-fetchable) error.
        let err = decode_framed_page(&bad).unwrap_err();
        prop_assert!(err.is_retryable(), "corruption must be retryable: {err}");
    }

    #[test]
    fn truncation_is_detected((_, page) in arb_any_page(), cut in any::<u64>()) {
        let frame = frame_page(&page, 0);
        let keep = (cut % frame.len() as u64) as usize;
        prop_assert!(decode_framed_page(&frame[..keep]).is_err());
    }
}
