//! Hive/HDFS-style shared-storage warehouse connector.
//!
//! Models the "Facebook data warehouse" configuration of §II-A / §VI-A:
//! data lives in PORC files under a directory per table ("HDFS"), metadata
//! in an embedded metastore ("Hive metastore service"). Key behaviours
//! reproduced:
//!
//! * **Lazy, batched split enumeration** (§IV-D3): one split per file
//!   stripe-range; the split source walks the file list incrementally so
//!   queries start before enumeration finishes.
//! * **Stripe skipping** (§V-C): pushed-down predicates prune stripes via
//!   footer min/max and Bloom statistics before any data is read.
//! * **Lazy column loads** (§V-D): scans materialize only accessed cells.
//! * **Optional statistics**: `set_statistics_enabled(false)` models the
//!   Fig. 6 "Hive/HDFS (no stats)" configuration.
//! * **Simulated remote-storage latency**: a configurable per-read delay
//!   models shared-storage reads being slower than local flash (Raptor).

use parking_lot::RwLock;
use presto_cache::MetadataCache;
use presto_common::{PrestoError, Result, Schema, TableStatistics};
use presto_connector::{
    Connector, ConnectorMetadata, PageSink, PageSinkFactory, PageSource, PageSourceFactory,
    ScanOptions, Split, SplitSource, TupleDomain,
};
use presto_page::Page;
use presto_porc::{IoStats, PorcReader, PorcWriter, WriterOptions};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Embedded metastore entry.
#[derive(Debug, Clone)]
struct HiveTable {
    schema: Schema,
    directory: PathBuf,
}

#[derive(Default)]
struct Metastore {
    tables: HashMap<String, HiveTable>,
}

/// The connector. Cheap to clone via `Arc`.
pub struct HiveConnector {
    root: PathBuf,
    metastore: RwLock<Metastore>,
    io: Arc<IoStats>,
    /// Report footer statistics to the optimizer?
    statistics_enabled: std::sync::atomic::AtomicBool,
    /// Simulated per-read latency of the remote filesystem.
    read_latency: RwLock<Duration>,
    /// Per-file write counter for unique file names.
    file_seq: AtomicU64,
    /// The shared metadata cache: metastore statistics/schemas, PORC
    /// footers, and split listings (replaces the old ad-hoc stats map).
    cache: Arc<MetadataCache>,
    /// Namespaces this connector's entries in the shared cache.
    catalog_key: String,
    /// How many stripes one split covers.
    stripes_per_split: usize,
}

impl HiveConnector {
    /// Create a connector rooted at `root` (created if missing) with a
    /// private metadata cache.
    pub fn new(root: impl AsRef<Path>) -> Result<Arc<HiveConnector>> {
        Self::with_cache(root, MetadataCache::with_defaults())
    }

    /// Create a connector sharing `cache` with the rest of the cluster.
    pub fn with_cache(
        root: impl AsRef<Path>,
        cache: Arc<MetadataCache>,
    ) -> Result<Arc<HiveConnector>> {
        std::fs::create_dir_all(root.as_ref())?;
        let root = root.as_ref().to_path_buf();
        let catalog_key = format!("hive:{}", root.display());
        Ok(Arc::new(HiveConnector {
            root,
            metastore: RwLock::new(Metastore::default()),
            io: Arc::new(IoStats::new()),
            statistics_enabled: std::sync::atomic::AtomicBool::new(true),
            read_latency: RwLock::new(Duration::ZERO),
            file_seq: AtomicU64::new(0),
            cache,
            catalog_key,
            stripes_per_split: 4,
        }))
    }

    /// The metadata cache this connector reads through.
    pub fn metadata_cache(&self) -> &Arc<MetadataCache> {
        &self.cache
    }

    /// Open a PORC file through the footer cache; the simulated
    /// remote-read latency is paid only on a cold footer fetch.
    fn porc_reader(&self, path: &Path) -> Result<PorcReader> {
        let latency = *self.read_latency.read();
        self.cache.porc_reader(path, Arc::clone(&self.io), || {
            if !latency.is_zero() {
                std::thread::sleep(latency);
            }
        })
    }

    /// Toggle optimizer-visible statistics (Fig. 6's two Hive variants).
    pub fn set_statistics_enabled(&self, enabled: bool) {
        self.statistics_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Simulated remote-read latency applied per storage read.
    pub fn set_read_latency(&self, latency: Duration) {
        *self.read_latency.write() = latency;
    }

    /// Shared I/O counters (drives the §V-D experiment).
    pub fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.io)
    }

    fn table(&self, name: &str) -> Result<HiveTable> {
        self.metastore
            .read()
            .tables
            .get(name)
            .cloned()
            .ok_or_else(|| PrestoError::user(format!("table '{name}' does not exist")))
    }

    /// The table's data files, through the split-listing cache: the walk
    /// of the "remote filesystem" happens once per table until a write
    /// invalidates the listing.
    fn data_files(&self, name: &str, table: &HiveTable) -> Result<Arc<Vec<PathBuf>>> {
        let directory = table.directory.clone();
        self.cache.listing(&self.catalog_key, name, move || {
            let mut files: Vec<PathBuf> = std::fs::read_dir(&directory)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "porc"))
                .collect();
            files.sort();
            Ok(files)
        })
    }

    /// Bulk-load pages into a table via the sink (test/loader convenience).
    pub fn load_table(&self, name: &str, schema: Schema, pages: &[Page]) -> Result<()> {
        self.create_table(name, &schema)?;
        let mut sink = self.create_sink(name)?;
        for p in pages {
            sink.append(p)?;
        }
        sink.finish()?;
        Ok(())
    }
}

/// Split payload: a file plus a stripe range.
#[derive(Debug)]
struct HiveSplit {
    file: PathBuf,
    first_stripe: usize,
    stripe_count: usize,
}

/// Lazy split source: walks files one at a time, opening footers only as
/// batches are requested — queries can start (and finish) before the full
/// file list is enumerated.
struct HiveSplitSource {
    cache: Arc<MetadataCache>,
    io: Arc<IoStats>,
    read_latency: Duration,
    table: String,
    files: std::vec::IntoIter<PathBuf>,
    predicate: TupleDomain,
    pending: Vec<Split>,
    finished: bool,
    stripes_per_split: usize,
}

impl SplitSource for HiveSplitSource {
    fn next_batch(&mut self, max: usize) -> Result<Vec<Split>> {
        while self.pending.len() < max {
            let Some(file) = self.files.next() else {
                self.finished = true;
                break;
            };
            // The footer cache makes warm enumeration free: the remote-read
            // latency and the footer parse happen only on a miss.
            let latency = self.read_latency;
            let reader = self.cache.porc_reader(&file, Arc::clone(&self.io), || {
                if !latency.is_zero() {
                    std::thread::sleep(latency);
                }
            })?;
            // Predicate-driven stripe pruning at enumeration time.
            let stripes = reader.select_stripes(&self.predicate);
            let mut i = 0usize;
            while i < stripes.len() {
                // Consecutive surviving stripes coalesce into one split.
                let mut end = i + 1;
                while end < stripes.len()
                    && end - i < self.stripes_per_split
                    && stripes[end] == stripes[end - 1] + 1
                {
                    end += 1;
                }
                let rows: u64 = stripes[i..end]
                    .iter()
                    .map(|&s| reader.meta().stripes[s].row_count as u64)
                    .sum();
                self.pending.push(Split {
                    catalog: "hive".into(),
                    table: self.table.clone(),
                    payload: Arc::new(HiveSplit {
                        file: file.clone(),
                        first_stripe: stripes[i],
                        stripe_count: end - i,
                    }),
                    addresses: vec![],
                    estimated_rows: rows,
                    bucket: None,
                    // Footer min/max summary lets the scheduler re-prune
                    // this split if a dynamic filter lands before it is
                    // assigned.
                    domain: Some(reader.stripes_domain(stripes[i], end - i)),
                    info: format!(
                        "{}[{}..{}]",
                        file.file_name().unwrap_or_default().to_string_lossy(),
                        stripes[i],
                        stripes[i] + (end - i)
                    ),
                });
                i = end;
            }
        }
        let take = self.pending.len().min(max);
        Ok(self.pending.drain(..take).collect())
    }

    fn is_finished(&self) -> bool {
        self.finished && self.pending.is_empty()
    }
}

impl ConnectorMetadata for HiveConnector {
    fn list_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.metastore.read().tables.keys().cloned().collect();
        names.sort();
        names
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        self.cache.schema(&self.catalog_key, table, || {
            Ok(self.table(table)?.schema)
        })
    }

    fn table_statistics(&self, table: &str) -> TableStatistics {
        if !self.statistics_enabled.load(Ordering::Relaxed) {
            // Stats-off is a configuration, not a cacheable fact (Fig. 6's
            // "no stats" variant); bypass the cache entirely.
            return TableStatistics::unknown();
        }
        self.cache.statistics(&self.catalog_key, table, || {
            self.compute_statistics(table)
        })
    }

    fn create_table(&self, table: &str, schema: &Schema) -> Result<()> {
        let mut store = self.metastore.write();
        if store.tables.contains_key(table) {
            return Err(PrestoError::user(format!("table '{table}' already exists")));
        }
        let directory = self.root.join(table);
        std::fs::create_dir_all(&directory)?;
        store.tables.insert(
            table.to_string(),
            HiveTable {
                schema: schema.clone(),
                directory,
            },
        );
        Ok(())
    }
}

impl HiveConnector {
    /// Merge per-file footer statistics into table statistics (the cold
    /// path behind the metastore cache).
    fn compute_statistics(&self, table: &str) -> TableStatistics {
        let Ok(t) = self.table(table) else {
            return TableStatistics::unknown();
        };
        let Ok(files) = self.data_files(table, &t) else {
            return TableStatistics::unknown();
        };
        let mut merged = TableStatistics::unknown();
        let mut rows = 0.0f64;
        let mut columns: Vec<presto_common::ColumnStatistics> =
            vec![presto_common::ColumnStatistics::unknown(); t.schema.len()];
        let mut nulls = vec![0.0f64; t.schema.len()];
        let mut ndv = vec![0.0f64; t.schema.len()];
        for file in files.iter() {
            let Ok(reader) = self.porc_reader(file) else {
                return TableStatistics::unknown();
            };
            let stats = reader.table_statistics();
            rows += stats.row_count.or(0.0);
            for (c, cs) in stats.columns.iter().enumerate().take(columns.len()) {
                nulls[c] += cs.null_fraction.or(0.0) * stats.row_count.or(0.0);
                // NDV merged as max across files: a lower bound.
                ndv[c] = ndv[c].max(cs.distinct_count.or(0.0));
                let col = &mut columns[c];
                if let Some(min) = &cs.min {
                    if col
                        .min
                        .as_ref()
                        .is_none_or(|m| min.sql_cmp(m) == Some(std::cmp::Ordering::Less))
                    {
                        col.min = Some(min.clone());
                    }
                }
                if let Some(max) = &cs.max {
                    if col
                        .max
                        .as_ref()
                        .is_none_or(|m| max.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
                    {
                        col.max = Some(max.clone());
                    }
                }
            }
        }
        for (c, col) in columns.iter_mut().enumerate() {
            col.distinct_count = presto_common::Estimate::exact(ndv[c]);
            col.null_fraction =
                presto_common::Estimate::exact(if rows > 0.0 { nulls[c] / rows } else { 0.0 });
        }
        merged.row_count = presto_common::Estimate::exact(rows);
        merged.columns = columns;
        merged
    }
}

impl Connector for HiveConnector {
    fn name(&self) -> &str {
        "hive"
    }

    fn metadata(&self) -> &dyn ConnectorMetadata {
        self
    }

    fn split_source(
        &self,
        table: &str,
        _layout: &str,
        predicate: &TupleDomain,
    ) -> Result<Box<dyn SplitSource>> {
        let t = self.table(table)?;
        let files = self.data_files(table, &t)?;
        Ok(Box::new(HiveSplitSource {
            cache: Arc::clone(&self.cache),
            io: Arc::clone(&self.io),
            read_latency: *self.read_latency.read(),
            table: table.to_string(),
            files: files.as_ref().clone().into_iter(),
            predicate: predicate.clone(),
            pending: Vec::new(),
            finished: false,
            stripes_per_split: self.stripes_per_split,
        }))
    }

    fn page_source_factory(&self) -> &dyn PageSourceFactory {
        self
    }

    fn page_sink_factory(&self) -> Option<&dyn PageSinkFactory> {
        Some(self)
    }
}

impl PageSourceFactory for HiveConnector {
    fn create_source(&self, split: &Split, options: &ScanOptions) -> Result<Box<dyn PageSource>> {
        let payload = split
            .payload
            .downcast_ref::<HiveSplit>()
            .ok_or_else(|| PrestoError::internal("hive: foreign split"))?;
        let reader = self.porc_reader(&payload.file)?;
        Ok(Box::new(HivePageSource {
            reader,
            stripes: (payload.first_stripe..payload.first_stripe + payload.stripe_count)
                .collect::<Vec<_>>()
                .into_iter(),
            options: options.clone(),
            read_latency: *self.read_latency.read(),
            rows: 0,
        }))
    }
}

struct HivePageSource {
    reader: PorcReader,
    stripes: std::vec::IntoIter<usize>,
    options: ScanOptions,
    read_latency: Duration,
    rows: u64,
}

impl PageSource for HivePageSource {
    fn next_page(&mut self) -> Result<Option<Page>> {
        for stripe in self.stripes.by_ref() {
            // Re-check pruning: the predicate may be tighter than at
            // enumeration.
            if !self.reader.stripe_matches(stripe, &self.options.predicate) {
                continue;
            }
            // Dynamic filters narrow the predicate while the scan runs:
            // re-check the stripe against the build-side key domain before
            // paying the storage read. An empty domain prunes everything.
            if let Some(df) = &self.options.dynamic_filter {
                if let Some(dynamic) = df.domain() {
                    if !self.reader.stripe_matches(stripe, &dynamic) {
                        df.record_stripes_pruned(1);
                        continue;
                    }
                }
            }
            if !self.read_latency.is_zero() {
                std::thread::sleep(self.read_latency);
            }
            let page = self
                .reader
                .read_stripe(stripe, &self.options.columns, self.options.lazy)?;
            self.rows += page.row_count() as u64;
            return Ok(Some(page));
        }
        Ok(None)
    }

    fn bytes_read(&self) -> u64 {
        self.reader.io_stats().snapshot().0
    }

    fn rows_read(&self) -> u64 {
        self.rows
    }
}

impl PageSinkFactory for HiveConnector {
    fn create_sink(&self, table: &str) -> Result<Box<dyn PageSink>> {
        let t = self.table(table)?;
        // Writes invalidate cached statistics, listings, and footers.
        self.cache
            .invalidate_table(&self.catalog_key, table, Some(&t.directory));
        let seq = self.file_seq.fetch_add(1, Ordering::Relaxed);
        // Like concurrent S3 writers (§IV-E3), each sink writes its own file.
        let path = t.directory.join(format!("part-{seq:06}.porc"));
        let writer = PorcWriter::create(&path, t.schema, WriterOptions::default())?;
        Ok(Box::new(HiveSink {
            writer: Some(writer),
            rows: 0,
            cache: Arc::clone(&self.cache),
            catalog_key: self.catalog_key.clone(),
            table: table.to_string(),
            directory: t.directory,
        }))
    }
}

struct HiveSink {
    writer: Option<PorcWriter>,
    rows: u64,
    cache: Arc<MetadataCache>,
    catalog_key: String,
    table: String,
    directory: PathBuf,
}

impl PageSink for HiveSink {
    fn append(&mut self, page: &Page) -> Result<()> {
        self.rows += page.row_count() as u64;
        self.writer
            .as_mut()
            .ok_or_else(|| PrestoError::internal("hive: sink already finished"))?
            .append(page)
    }

    fn finish(&mut self) -> Result<u64> {
        if let Some(w) = self.writer.take() {
            w.finish()?;
            // Invalidate again at commit: anything cached between sink
            // creation and the file landing (a concurrent reader's listing,
            // a recomputed statistic) is stale now.
            self.cache
                .invalidate_table(&self.catalog_key, &self.table, Some(&self.directory));
        }
        Ok(self.rows)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Value};
    use presto_connector::Domain;

    fn temp_root(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hive-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn loaded_connector(root: &Path) -> Arc<HiveConnector> {
        let c = HiveConnector::new(root).unwrap();
        let schema = Schema::of(&[("k", DataType::Bigint), ("s", DataType::Varchar)]);
        let rows: Vec<Vec<Value>> = (0..10_000)
            .map(|i| {
                vec![
                    Value::Bigint(i),
                    Value::varchar(if i % 2 == 0 { "E" } else { "O" }),
                ]
            })
            .collect();
        c.load_table("t", schema.clone(), &[Page::from_rows(&schema, &rows)])
            .unwrap();
        c
    }

    #[test]
    fn write_then_scan() {
        let root = temp_root("scan");
        let c = loaded_connector(&root);
        let mut src = c.split_source("t", "default", &TupleDomain::all()).unwrap();
        let mut rows = 0usize;
        loop {
            let batch = src.next_batch(2).unwrap();
            if batch.is_empty() && src.is_finished() {
                break;
            }
            for split in batch {
                let mut source = c
                    .create_source(
                        &split,
                        &ScanOptions {
                            columns: vec![0, 1],
                            ..Default::default()
                        },
                    )
                    .unwrap();
                while let Some(page) = source.next_page().unwrap() {
                    rows += page.row_count();
                }
            }
        }
        assert_eq!(rows, 10_000);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn predicate_prunes_splits() {
        let root = temp_root("prune");
        let c = loaded_connector(&root);
        let mut predicate = TupleDomain::all();
        predicate.constrain(0, Domain::at_least(Value::Bigint(9_900)));
        let mut src = c.split_source("t", "default", &predicate).unwrap();
        let mut all = Vec::new();
        while !src.is_finished() {
            all.extend(src.next_batch(16).unwrap());
        }
        // 10k rows in 8192-row stripes → 2 stripes; only the last survives.
        assert_eq!(all.len(), 1);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn statistics_toggle() {
        let root = temp_root("stats");
        let c = loaded_connector(&root);
        let stats = c.table_statistics("t");
        assert_eq!(stats.row_count.value(), Some(10_000.0));
        assert_eq!(stats.columns[1].distinct_count.value(), Some(2.0));
        c.set_statistics_enabled(false);
        assert!(!c.table_statistics("t").row_count.is_known());
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn each_sink_writes_its_own_file() {
        let root = temp_root("sinks");
        let c = HiveConnector::new(&root).unwrap();
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        c.create_table("w", &schema).unwrap();
        let page = Page::from_rows(&schema, &[vec![Value::Bigint(1)]]);
        let mut s1 = c.create_sink("w").unwrap();
        let mut s2 = c.create_sink("w").unwrap();
        s1.append(&page).unwrap();
        s2.append(&page).unwrap();
        s1.finish().unwrap();
        s2.finish().unwrap();
        let t = c.table("w").unwrap();
        assert_eq!(c.data_files("w", &t).unwrap().len(), 2);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn warm_enumeration_reads_no_footers() {
        let root = temp_root("warmsplits");
        let c = loaded_connector(&root);
        let enumerate = || {
            let mut src = c.split_source("t", "default", &TupleDomain::all()).unwrap();
            let mut n = 0;
            while !src.is_finished() {
                n += src.next_batch(16).unwrap().len();
            }
            n
        };
        let cold = enumerate();
        let footers_after_cold = c.io_stats().footer_reads();
        assert!(footers_after_cold > 0);
        let warm = enumerate();
        assert_eq!(cold, warm);
        assert_eq!(
            c.io_stats().footer_reads(),
            footers_after_cold,
            "warm enumeration parses zero footers"
        );
        assert!(c.metadata_cache().footer_counters().hits > 0);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn writes_invalidate_cached_statistics() {
        let root = temp_root("invalidate");
        let c = loaded_connector(&root);
        assert_eq!(c.table_statistics("t").row_count.value(), Some(10_000.0));
        // Cached now: recomputation would change nothing.
        assert_eq!(c.table_statistics("t").row_count.value(), Some(10_000.0));
        let schema = c.table_schema("t").unwrap();
        let mut sink = c.create_sink("t").unwrap();
        sink.append(&Page::from_rows(
            &schema,
            &[vec![Value::Bigint(10_000), Value::varchar("E")]],
        ))
        .unwrap();
        sink.finish().unwrap();
        assert_eq!(
            c.table_statistics("t").row_count.value(),
            Some(10_001.0),
            "INSERT invalidated the stats and listing caches"
        );
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn lazy_scan_counts_io() {
        let root = temp_root("lazy");
        let c = loaded_connector(&root);
        let mut src = c.split_source("t", "default", &TupleDomain::all()).unwrap();
        let splits = src.next_batch(16).unwrap();
        let before = c.io_stats().snapshot().1;
        // Read with lazy=true but never touch the data: no cells load.
        for split in &splits {
            let mut source = c
                .create_source(
                    split,
                    &ScanOptions {
                        columns: vec![1],
                        ..Default::default()
                    },
                )
                .unwrap();
            while let Some(_page) = source.next_page().unwrap() {}
        }
        assert_eq!(c.io_stats().snapshot().1, before);
        std::fs::remove_dir_all(root).ok();
    }
}
