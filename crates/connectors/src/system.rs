//! The `system` catalog: the engine's own runtime state as SQL tables.
//!
//! Presto exposes cluster internals through `system.runtime.*` so the
//! engine that serves traffic can also interrogate itself — queries,
//! tasks, operators, memory pools, caches, dynamic filters, and the trace
//! timeline are all ordinary tables here, scannable with unmodified
//! SELECTs, joins, filters, and aggregations (§VII).
//!
//! The connector itself is stateless over a [`SystemStateProvider`]: the
//! cluster implements the provider against its live telemetry, workers,
//! query history, and trace buffer (`presto-cluster` depends on this
//! crate, not the other way around, so the provider trait lives here).
//! Split enumeration takes one consistent snapshot per scan and carries
//! the rows in the split payload; the page source then streams them out
//! in engine-sized pages, honoring column pruning and `target_page_rows`.

use presto_common::{DataType, PrestoError, Result, Schema, Value};
use presto_connector::{
    Connector, ConnectorMetadata, FixedSplitSource, PageSource, PageSourceFactory, ScanOptions,
    Split, SplitSource, TupleDomain,
};
use presto_page::Page;
use std::sync::Arc;

/// The tables of the `runtime` schema. Each maps to one provider snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemTable {
    /// One row per query: live (queued/running) from telemetry, finished/
    /// failed from the bounded query-history store.
    Queries,
    /// One row per task: live tasks across every worker plus retained
    /// tasks of historical queries.
    Tasks,
    /// One row per operator per task: the `OperatorStats` rollup.
    Operators,
    /// One row per (worker, pool) for general/reserved/system pools.
    MemoryPools,
    /// One row per registered cache layer.
    Caches,
    /// One row of cluster-lifetime dynamic-filtering totals.
    DynamicFilters,
    /// One row per event currently retained in the trace ring.
    TraceEvents,
}

impl SystemTable {
    pub const ALL: [SystemTable; 7] = [
        SystemTable::Queries,
        SystemTable::Tasks,
        SystemTable::Operators,
        SystemTable::MemoryPools,
        SystemTable::Caches,
        SystemTable::DynamicFilters,
        SystemTable::TraceEvents,
    ];

    /// Table name as addressed through SQL: `system.<this>`, i.e. the
    /// `runtime` schema is folded into the name the connector sees.
    pub fn table_name(self) -> &'static str {
        match self {
            SystemTable::Queries => "runtime.queries",
            SystemTable::Tasks => "runtime.tasks",
            SystemTable::Operators => "runtime.operators",
            SystemTable::MemoryPools => "runtime.memory_pools",
            SystemTable::Caches => "runtime.caches",
            SystemTable::DynamicFilters => "runtime.dynamic_filters",
            SystemTable::TraceEvents => "runtime.trace_events",
        }
    }

    pub fn from_name(name: &str) -> Option<SystemTable> {
        SystemTable::ALL
            .into_iter()
            .find(|t| t.table_name() == name)
    }

    /// The fixed schema of this table.
    pub fn schema(self) -> Schema {
        use DataType::{Bigint, Varchar};
        match self {
            SystemTable::Queries => Schema::of(&[
                ("query_id", Bigint),
                ("state", Varchar),
                ("error_tag", Varchar),
                ("error_message", Varchar),
                ("queued_nanos", Bigint),
                ("planning_nanos", Bigint),
                ("execution_nanos", Bigint),
                ("cpu_nanos", Bigint),
                ("wall_nanos", Bigint),
                ("attempts", Bigint),
                ("retries", Bigint),
                ("peak_memory_bytes", Bigint),
                ("rows_returned", Bigint),
            ]),
            SystemTable::Tasks => Schema::of(&[
                ("query_id", Bigint),
                ("stage", Bigint),
                ("task", Bigint),
                ("worker", Bigint),
                ("state", Varchar),
                ("cpu_nanos", Bigint),
                ("output_pages", Bigint),
                ("output_wire_bytes", Bigint),
                ("output_logical_bytes", Bigint),
                ("exchange_bytes_received", Bigint),
            ]),
            SystemTable::Operators => Schema::of(&[
                ("query_id", Bigint),
                ("stage", Bigint),
                ("task", Bigint),
                ("pipeline", Bigint),
                ("operator", Varchar),
                ("input_rows", Bigint),
                ("input_bytes", Bigint),
                ("output_rows", Bigint),
                ("output_bytes", Bigint),
                ("cpu_nanos", Bigint),
                ("blocked_nanos", Bigint),
                ("peak_memory_bytes", Bigint),
                ("spilled_bytes", Bigint),
                ("spill_events", Bigint),
            ]),
            SystemTable::MemoryPools => Schema::of(&[
                ("worker", Bigint),
                ("pool", Varchar),
                ("used_bytes", Bigint),
                ("peak_bytes", Bigint),
                ("limit_bytes", Bigint),
                ("blocked_reservations", Bigint),
                ("revocation_requests", Bigint),
                ("active_queries", Bigint),
            ]),
            SystemTable::Caches => Schema::of(&[
                ("layer", Varchar),
                ("hits", Bigint),
                ("misses", Bigint),
                ("evictions", Bigint),
                ("inserts", Bigint),
                ("invalidations", Bigint),
                ("bytes", Bigint),
            ]),
            SystemTable::DynamicFilters => Schema::of(&[
                ("filters_published", Bigint),
                ("splits_pruned", Bigint),
                ("stripes_pruned", Bigint),
                ("rows_filtered", Bigint),
                ("wait_nanos", Bigint),
            ]),
            SystemTable::TraceEvents => Schema::of(&[
                ("kind", Varchar),
                ("ts_nanos", Bigint),
                ("dur_nanos", Bigint),
                ("pid", Bigint),
                ("tid", Bigint),
                ("a", Bigint),
                ("b", Bigint),
                ("overwritten_events", Bigint),
            ]),
        }
    }
}

/// What the connector reads: a point-in-time row snapshot of one table.
/// Implemented by the cluster over its live runtime state; rows must match
/// [`SystemTable::schema`] positionally.
pub trait SystemStateProvider: Send + Sync {
    fn rows(&self, table: SystemTable) -> Vec<Vec<Value>>;
}

/// Split payload: the snapshot taken at enumeration time, so every page of
/// one scan reflects a single consistent instant even while the cluster
/// keeps mutating underneath.
struct SystemSplit {
    table: SystemTable,
    rows: Vec<Vec<Value>>,
}

/// The `system` catalog connector.
pub struct SystemConnector {
    provider: Arc<dyn SystemStateProvider>,
}

impl SystemConnector {
    pub fn new(provider: Arc<dyn SystemStateProvider>) -> Arc<SystemConnector> {
        Arc::new(SystemConnector { provider })
    }

    fn resolve(table: &str) -> Result<SystemTable> {
        SystemTable::from_name(table).ok_or_else(|| {
            PrestoError::user(format!("system table '{table}' does not exist"))
        })
    }
}

impl ConnectorMetadata for SystemConnector {
    fn list_tables(&self) -> Vec<String> {
        SystemTable::ALL
            .iter()
            .map(|t| t.table_name().to_string())
            .collect()
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        Ok(Self::resolve(table)?.schema())
    }

    fn create_table(&self, table: &str, _schema: &Schema) -> Result<()> {
        Err(PrestoError::user(format!(
            "system catalog is read-only (cannot create '{table}')"
        )))
    }
}

impl Connector for SystemConnector {
    fn name(&self) -> &str {
        "system"
    }

    fn metadata(&self) -> &dyn ConnectorMetadata {
        self
    }

    fn split_source(
        &self,
        table: &str,
        _layout: &str,
        _predicate: &TupleDomain,
    ) -> Result<Box<dyn SplitSource>> {
        let t = Self::resolve(table)?;
        let rows = self.provider.rows(t);
        let estimated_rows = rows.len() as u64;
        let split = Split {
            catalog: "system".into(),
            table: table.to_string(),
            payload: Arc::new(SystemSplit { table: t, rows }),
            addresses: vec![],
            estimated_rows,
            bucket: None,
            domain: None,
            info: format!("{table}[snapshot {estimated_rows} rows]"),
        };
        Ok(Box::new(FixedSplitSource::new(vec![split])))
    }

    fn page_source_factory(&self) -> &dyn PageSourceFactory {
        self
    }
}

impl PageSourceFactory for SystemConnector {
    fn create_source(&self, split: &Split, options: &ScanOptions) -> Result<Box<dyn PageSource>> {
        let payload = split
            .payload
            .downcast_ref::<SystemSplit>()
            .ok_or_else(|| PrestoError::internal("system: foreign split"))?;
        let schema = payload.table.schema();
        let target = options.target_page_rows.max(1);
        let pages: Vec<Page> = payload
            .rows
            .chunks(target)
            .map(|chunk| Page::from_rows(&schema, chunk).project(&options.columns))
            .collect();
        Ok(Box::new(presto_connector::source::FixedPageSource::new(
            pages,
        )))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// Fixed rows for every table, sized `n` per table.
    struct StaticState {
        n: usize,
    }

    impl SystemStateProvider for StaticState {
        fn rows(&self, table: SystemTable) -> Vec<Vec<Value>> {
            let schema = table.schema();
            (0..self.n)
                .map(|i| {
                    (0..schema.len())
                        .map(|c| match schema.data_type(c) {
                            DataType::Varchar => Value::varchar(format!("s{i}")),
                            _ => Value::Bigint((i * 10 + c) as i64),
                        })
                        .collect()
                })
                .collect()
        }
    }

    fn connector(n: usize) -> Arc<SystemConnector> {
        SystemConnector::new(Arc::new(StaticState { n }))
    }

    #[test]
    fn lists_all_runtime_tables() {
        let c = connector(0);
        let tables = c.list_tables();
        assert_eq!(tables.len(), 7);
        assert!(tables.contains(&"runtime.queries".to_string()));
        for t in &tables {
            assert!(c.table_schema(t).is_ok());
        }
        assert!(c.table_schema("runtime.nope").is_err());
        assert!(c.create_table("t", &SystemTable::Queries.schema()).is_err());
    }

    #[test]
    fn scan_streams_snapshot_in_pages() {
        let c = connector(2500);
        let mut src = c
            .split_source("runtime.operators", "default", &TupleDomain::all())
            .unwrap();
        let splits = src.next_batch(16).unwrap();
        assert_eq!(splits.len(), 1, "one snapshot split per table");
        assert_eq!(splits[0].estimated_rows, 2500);
        let mut source = c
            .create_source(
                &splits[0],
                &ScanOptions {
                    columns: vec![4, 0],
                    target_page_rows: 1000,
                    ..Default::default()
                },
            )
            .unwrap();
        let mut rows = 0;
        let mut pages = 0;
        while let Some(page) = source.next_page().unwrap() {
            assert_eq!(page.column_count(), 2);
            assert!(page.row_count() <= 1000);
            assert!(page.block(0).str_at(0).starts_with('s'));
            rows += page.row_count();
            pages += 1;
        }
        assert_eq!(rows, 2500);
        assert_eq!(pages, 3, "chunked to target_page_rows");
    }

    #[test]
    fn every_schema_names_are_unique_and_nonempty() {
        for t in SystemTable::ALL {
            let s = t.schema();
            assert!(!s.is_empty());
            let mut names: Vec<&str> = s.fields().iter().map(|f| f.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), s.len(), "{t:?} has duplicate columns");
            assert_eq!(SystemTable::from_name(t.table_name()), Some(t));
        }
    }
}
