//! Sharded-SQL connector: the "sharded MySQL" analogue.
//!
//! §IV-B3-2: "the Developer/Advertiser Analytics use case leverages a
//! proprietary connector built on top of sharded MySQL. The connector
//! divides data into shards that are stored in individual MySQL instances,
//! and can push range or point predicates all the way down to individual
//! shards, ensuring that only matching data is ever read." Each shard here
//! is an embedded row store; the key column is hash-sharded, point
//! predicates on it prune to a single shard, and all pushed predicates are
//! evaluated shard-side before any page is produced. Key columns expose an
//! index ([`presto_connector::IndexSource`]) for index-nested-loop joins
//! (§IV-B3-3).

use parking_lot::RwLock;
use presto_cache::MetadataCache;
use presto_common::{PrestoError, Result, Schema, TableStatistics, Value};
use presto_connector::{
    Connector, ConnectorMetadata, DataLayout, Domain, FixedSplitSource, IndexSource,
    PageSinkFactory, PageSource, PageSourceFactory, Partitioning, ScanOptions, Split, SplitSource,
    TupleDomain,
};
use presto_page::{BlockBuilder, Page};
use std::collections::HashMap;
use std::sync::Arc;

/// Rows of one shard, stored row-major (it models a row-store RDBMS).
#[derive(Debug, Default, Clone)]
struct ShardData {
    rows: Vec<Vec<Value>>,
}

#[derive(Debug, Clone)]
struct ShardedTable {
    schema: Schema,
    /// The sharding key column.
    key_column: usize,
    shards: Vec<ShardData>,
    /// Secondary key→row index per shard, on the key column.
    indexes: Vec<HashMap<Value, Vec<usize>>>,
}

#[derive(Default)]
struct Inner {
    tables: HashMap<String, ShardedTable>,
}

/// The connector.
pub struct ShardedSqlConnector {
    inner: Arc<RwLock<Inner>>,
    shard_count: usize,
    /// Rows actually scanned (post-pushdown), for pushdown-effectiveness
    /// assertions and the Fig. 7 workload's latency profile.
    rows_scanned: std::sync::atomic::AtomicU64,
    /// Shared metadata cache: schemas and row-count statistics are served
    /// from here instead of cloning table state on every planner call.
    cache: Arc<MetadataCache>,
    catalog_key: String,
}

impl ShardedSqlConnector {
    pub fn new(shard_count: usize) -> Arc<ShardedSqlConnector> {
        Self::with_cache(shard_count, MetadataCache::with_defaults())
    }

    /// Like [`new`](Self::new) but sharing an engine-wide [`MetadataCache`].
    pub fn with_cache(shard_count: usize, cache: Arc<MetadataCache>) -> Arc<ShardedSqlConnector> {
        assert!(shard_count > 0);
        Arc::new(ShardedSqlConnector {
            inner: Arc::new(RwLock::new(Inner::default())),
            shard_count,
            rows_scanned: std::sync::atomic::AtomicU64::new(0),
            cache,
            catalog_key: "sharded-sql".to_string(),
        })
    }

    /// The metadata cache this connector populates.
    pub fn metadata_cache(&self) -> &Arc<MetadataCache> {
        &self.cache
    }

    /// Create a table sharded on `key_column` and load `rows`.
    pub fn load_table(&self, name: &str, schema: Schema, key_column: usize, rows: &[Vec<Value>]) {
        let mut shards = vec![ShardData::default(); self.shard_count];
        let mut indexes: Vec<HashMap<Value, Vec<usize>>> = vec![HashMap::new(); self.shard_count];
        for row in rows {
            let shard = Self::shard_of(&row[key_column], self.shard_count);
            let slot = shards[shard].rows.len();
            indexes[shard]
                .entry(row[key_column].clone())
                .or_default()
                .push(slot);
            shards[shard].rows.push(row.clone());
        }
        self.inner.write().tables.insert(
            name.to_string(),
            ShardedTable {
                schema,
                key_column,
                shards,
                indexes,
            },
        );
        self.cache.invalidate_table(&self.catalog_key, name, None);
    }

    fn shard_of(key: &Value, shard_count: usize) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % shard_count as u64) as usize
    }

    /// Rows read from shards since startup (post-pushdown).
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn table(&self, name: &str) -> Result<ShardedTable> {
        self.inner
            .read()
            .tables
            .get(name)
            .cloned()
            .ok_or_else(|| PrestoError::user(format!("table '{name}' does not exist")))
    }
}

#[derive(Debug)]
struct ShardSplit {
    shard: usize,
}

impl ConnectorMetadata for ShardedSqlConnector {
    fn list_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().tables.keys().cloned().collect();
        names.sort();
        names
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        // Served from the metadata cache: a miss reads just the schema under
        // the lock rather than cloning the whole table.
        self.cache.schema(&self.catalog_key, table, || {
            self.inner
                .read()
                .tables
                .get(table)
                .map(|t| t.schema.clone())
                .ok_or_else(|| PrestoError::user(format!("table '{table}' does not exist")))
        })
    }

    fn table_statistics(&self, table: &str) -> TableStatistics {
        self.cache.statistics(&self.catalog_key, table, || {
            let inner = self.inner.read();
            let Some(t) = inner.tables.get(table) else {
                return TableStatistics::unknown();
            };
            let rows: usize = t.shards.iter().map(|s| s.rows.len()).sum();
            TableStatistics::with_row_count(rows as f64)
        })
    }

    fn table_layouts(&self, table: &str) -> Vec<DataLayout> {
        let Ok(t) = self.table(table) else {
            return vec![DataLayout::unpartitioned()];
        };
        vec![DataLayout {
            name: "sharded".into(),
            partitioning: Some(Partitioning {
                columns: vec![t.key_column],
                bucket_count: self.shard_count,
            }),
            sorted_by: vec![],
            // The shard key is indexed: index joins and point pruning work.
            indexes: vec![vec![t.key_column]],
            node_local: false,
        }]
    }

    fn create_table(&self, table: &str, schema: &Schema) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.tables.contains_key(table) {
            return Err(PrestoError::user(format!("table '{table}' already exists")));
        }
        inner.tables.insert(
            table.to_string(),
            ShardedTable {
                schema: schema.clone(),
                key_column: 0,
                shards: vec![ShardData::default(); self.shard_count],
                indexes: vec![HashMap::new(); self.shard_count],
            },
        );
        drop(inner);
        self.cache.invalidate_table(&self.catalog_key, table, None);
        Ok(())
    }
}

impl Connector for ShardedSqlConnector {
    fn name(&self) -> &str {
        "sharded-sql"
    }

    fn metadata(&self) -> &dyn ConnectorMetadata {
        self
    }

    fn split_source(
        &self,
        table: &str,
        _layout: &str,
        predicate: &TupleDomain,
    ) -> Result<Box<dyn SplitSource>> {
        let t = self.table(table)?;
        // Point predicates on the shard key prune to specific shards —
        // "only matching data is ever read".
        let shard_filter: Option<Vec<usize>> = match predicate.domain(t.key_column) {
            Some(Domain::Set(values)) => {
                let mut shards: Vec<usize> = values
                    .iter()
                    .map(|v| Self::shard_of(v, self.shard_count))
                    .collect();
                shards.sort_unstable();
                shards.dedup();
                Some(shards)
            }
            _ => None,
        };
        let splits = (0..self.shard_count)
            .filter(|s| shard_filter.as_ref().is_none_or(|f| f.contains(s)))
            .map(|s| Split {
                catalog: "sharded-sql".into(),
                table: table.to_string(),
                payload: Arc::new(ShardSplit { shard: s }),
                addresses: vec![],
                estimated_rows: t.shards[s].rows.len() as u64,
                bucket: Some(s),
                domain: None,
                info: format!("{table}/shard-{s}"),
            })
            .collect();
        Ok(Box::new(FixedSplitSource::new(splits)))
    }

    fn page_source_factory(&self) -> &dyn PageSourceFactory {
        self
    }

    fn page_sink_factory(&self) -> Option<&dyn PageSinkFactory> {
        None // read-only, like the production system it models
    }

    fn index_source(
        &self,
        table: &str,
        key_columns: &[usize],
        output_columns: &[usize],
    ) -> Result<Option<Box<dyn IndexSource>>> {
        let t = self.table(table)?;
        if key_columns != [t.key_column] {
            return Ok(None);
        }
        Ok(Some(Box::new(ShardedIndexSource {
            table: t,
            shard_count: self.shard_count,
            output_columns: output_columns.to_vec(),
        })))
    }
}

impl PageSourceFactory for ShardedSqlConnector {
    fn create_source(&self, split: &Split, options: &ScanOptions) -> Result<Box<dyn PageSource>> {
        let payload = split
            .payload
            .downcast_ref::<ShardSplit>()
            .ok_or_else(|| PrestoError::internal("sharded-sql: foreign split"))?;
        let t = self.table(&split.table)?;
        let shard = &t.shards[payload.shard];
        // Shard-side predicate evaluation: only matching rows leave the
        // "MySQL instance".
        let matching: Vec<&Vec<Value>> = shard
            .rows
            .iter()
            .filter(|row| options.predicate.matches(|c| row[c].clone()))
            .collect();
        self.rows_scanned
            .fetch_add(matching.len() as u64, std::sync::atomic::Ordering::Relaxed);
        let mut pages = Vec::new();
        for chunk in matching.chunks(options.target_page_rows.max(1)) {
            let mut builders: Vec<BlockBuilder> = options
                .columns
                .iter()
                .map(|&c| BlockBuilder::with_capacity(t.schema.data_type(c), chunk.len()))
                .collect();
            for row in chunk {
                for (b, &c) in builders.iter_mut().zip(&options.columns) {
                    b.push_value(&row[c]);
                }
            }
            if builders.is_empty() {
                pages.push(Page::zero_column(chunk.len()));
            } else {
                pages.push(Page::new(
                    builders.into_iter().map(BlockBuilder::finish).collect(),
                ));
            }
        }
        Ok(Box::new(presto_connector::source::FixedPageSource::new(
            pages,
        )))
    }
}

struct ShardedIndexSource {
    table: ShardedTable,
    shard_count: usize,
    output_columns: Vec<usize>,
}

impl IndexSource for ShardedIndexSource {
    fn lookup(&mut self, keys: &Page) -> Result<(Page, Vec<u32>)> {
        let key_type = self.table.schema.data_type(self.table.key_column);
        let mut builders: Vec<BlockBuilder> = self
            .output_columns
            .iter()
            .map(|&c| BlockBuilder::new(self.table.schema.data_type(c)))
            .collect();
        let mut key_indices = Vec::new();
        let key_block = keys.block(0);
        for i in 0..keys.row_count() {
            let key = key_block.value_at(key_type, i);
            if key.is_null() {
                continue;
            }
            let shard = ShardedSqlConnector::shard_of(&key, self.shard_count);
            if let Some(slots) = self.table.indexes[shard].get(&key) {
                for &slot in slots {
                    let row = &self.table.shards[shard].rows[slot];
                    for (b, &c) in builders.iter_mut().zip(&self.output_columns) {
                        b.push_value(&row[c]);
                    }
                    key_indices.push(i as u32);
                }
            }
        }
        let page = if builders.is_empty() {
            Page::zero_column(key_indices.len())
        } else {
            Page::new(builders.into_iter().map(BlockBuilder::finish).collect())
        };
        Ok((page, key_indices))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::DataType;

    fn connector() -> Arc<ShardedSqlConnector> {
        let c = ShardedSqlConnector::new(8);
        let schema = Schema::of(&[
            ("ad_id", DataType::Bigint),
            ("clicks", DataType::Bigint),
            ("advertiser", DataType::Varchar),
        ]);
        let rows: Vec<Vec<Value>> = (0..10_000)
            .map(|i| {
                vec![
                    Value::Bigint(i % 1000),
                    Value::Bigint(i),
                    Value::varchar(format!("adv{}", i % 50)),
                ]
            })
            .collect();
        c.load_table("ads", schema, 0, &rows);
        c
    }

    fn scan_all(c: &ShardedSqlConnector, predicate: &TupleDomain, columns: Vec<usize>) -> usize {
        let mut src = c.split_source("ads", "sharded", predicate).unwrap();
        let mut rows = 0;
        for split in src.next_batch(64).unwrap() {
            let mut source = c
                .create_source(
                    &split,
                    &ScanOptions {
                        columns: columns.clone(),
                        predicate: predicate.clone(),
                        ..Default::default()
                    },
                )
                .unwrap();
            while let Some(page) = source.next_page().unwrap() {
                rows += page.row_count();
            }
        }
        rows
    }

    #[test]
    fn point_predicate_prunes_to_one_shard() {
        let c = connector();
        let mut predicate = TupleDomain::all();
        predicate.constrain(0, Domain::point(Value::Bigint(7)));
        let mut src = c.split_source("ads", "sharded", &predicate).unwrap();
        let splits = src.next_batch(64).unwrap();
        assert_eq!(splits.len(), 1, "one shard holds ad_id 7");
        // 10 rows have ad_id = 7 (i % 1000 == 7 for i in 0..10000).
        assert_eq!(scan_all(&c, &predicate, vec![0, 1]), 10);
    }

    #[test]
    fn range_predicate_filters_shard_side() {
        let c = connector();
        let before = c.rows_scanned();
        let mut predicate = TupleDomain::all();
        predicate.constrain(1, Domain::at_least(Value::Bigint(9_990)));
        assert_eq!(scan_all(&c, &predicate, vec![1]), 10);
        // Only matching rows were produced by the shards.
        assert_eq!(c.rows_scanned() - before, 10);
    }

    #[test]
    fn index_lookup_join_path() {
        let c = connector();
        let mut index = c
            .index_source("ads", &[0], &[0, 1])
            .unwrap()
            .expect("index exists");
        let keys = Page::from_rows(
            &Schema::of(&[("k", DataType::Bigint)]),
            &[
                vec![Value::Bigint(3)],
                vec![Value::Bigint(999_999)], // no match
                vec![Value::Bigint(42)],
            ],
        );
        let (page, key_idx) = index.lookup(&keys).unwrap();
        // ad_id 3 and 42 each occur 10 times; the miss contributes nothing.
        assert_eq!(page.row_count(), 20);
        assert!(key_idx.iter().all(|&k| k == 0 || k == 2));
        // Every output row's key matches the probe key.
        for (row, &k) in key_idx.iter().enumerate() {
            let expect = if k == 0 { 3 } else { 42 };
            assert_eq!(page.block(0).i64_at(row), expect);
        }
    }

    #[test]
    fn no_index_for_non_key_columns() {
        let c = connector();
        assert!(c.index_source("ads", &[1], &[0]).unwrap().is_none());
    }

    #[test]
    fn statistics_cached_and_invalidated_on_reload() {
        let c = connector();
        assert_eq!(c.table_statistics("ads").row_count.value(), Some(10_000.0));
        assert_eq!(c.table_statistics("ads").row_count.value(), Some(10_000.0));
        let counters = c.metadata_cache().metastore_counters();
        assert!(counters.hits >= 1, "second stats call served from cache");
        // Reloading the table must drop the cached row count.
        let schema = Schema::of(&[("ad_id", DataType::Bigint)]);
        let rows: Vec<Vec<Value>> = (0..5).map(|i| vec![Value::Bigint(i)]).collect();
        c.load_table("ads", schema, 0, &rows);
        assert_eq!(c.table_statistics("ads").row_count.value(), Some(5.0));
    }

    #[test]
    fn layout_advertises_index_and_partitioning() {
        let c = connector();
        let layouts = c.table_layouts("ads");
        assert!(layouts[0].has_index_on(&[0]));
        assert_eq!(layouts[0].partitioning.as_ref().unwrap().bucket_count, 8);
    }
}
