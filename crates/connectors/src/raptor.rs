//! Raptor: the shared-nothing storage engine built for Presto.
//!
//! §IV-D2: "Raptor is a storage engine optimized for Presto with a
//! shared-nothing architecture that stores ORC files on flash disks and
//! metadata in MySQL." Here: PORC shards on local paths, each pinned to a
//! worker node; shard metadata in an embedded store. Tables may be
//! *bucketed* on a column set — bucketed tables report a partitioned,
//! node-local layout, which lets the optimizer plan co-located joins and
//! the scheduler place leaf tasks next to their data (the A/B Testing use
//! case, §II-C / §IV-C3).

use parking_lot::RwLock;
use presto_cache::MetadataCache;
use presto_common::{NodeId, PrestoError, Result, Schema, TableStatistics};
use presto_connector::{
    Connector, ConnectorMetadata, DataLayout, FixedSplitSource, PageSink, PageSinkFactory,
    PageSource, PageSourceFactory, Partitioning, ScanOptions, Split, SplitSource, TupleDomain,
};
use presto_page::hash::hash_columns;
use presto_page::Page;
use presto_porc::{IoStats, PorcReader, PorcWriter, WriterOptions};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One shard: a PORC file pinned to a node.
#[derive(Debug, Clone)]
struct Shard {
    path: PathBuf,
    node: NodeId,
    bucket: usize,
    rows: u64,
}

/// Metastore entry (the "MySQL metadata" of the paper).
#[derive(Debug, Clone)]
struct RaptorTable {
    schema: Schema,
    /// Bucketing columns (empty = random distribution).
    bucket_columns: Vec<usize>,
    bucket_count: usize,
    shards: Vec<Shard>,
    stats: TableStatistics,
}

#[derive(Default)]
struct Metastore {
    tables: HashMap<String, RaptorTable>,
}

/// The Raptor connector.
pub struct RaptorConnector {
    root: PathBuf,
    /// Worker nodes shards may be pinned to.
    nodes: Vec<NodeId>,
    metastore: RwLock<Metastore>,
    io: Arc<IoStats>,
    /// Footer cache shared with the rest of the cluster. Schemas and
    /// statistics live in Raptor's own metastore ("metadata in MySQL") and
    /// need no extra cache layer, but shard footers are parsed per split
    /// and benefit like any PORC reader.
    cache: Arc<MetadataCache>,
    /// Namespaces this connector's entries in the shared cache.
    catalog_key: String,
    /// Self-reference so sinks created through the SPI can commit via
    /// `load_table` on finish.
    self_ref: std::sync::Weak<RaptorConnector>,
}

impl RaptorConnector {
    pub fn new(root: impl AsRef<Path>, nodes: Vec<NodeId>) -> Result<Arc<RaptorConnector>> {
        Self::with_cache(root, nodes, MetadataCache::with_defaults())
    }

    /// Create a connector sharing `cache` with the rest of the cluster.
    pub fn with_cache(
        root: impl AsRef<Path>,
        nodes: Vec<NodeId>,
        cache: Arc<MetadataCache>,
    ) -> Result<Arc<RaptorConnector>> {
        assert!(!nodes.is_empty(), "raptor needs at least one node");
        std::fs::create_dir_all(root.as_ref())?;
        let root = root.as_ref().to_path_buf();
        let catalog_key = format!("raptor:{}", root.display());
        Ok(Arc::new_cyclic(|weak| RaptorConnector {
            root,
            nodes,
            metastore: RwLock::new(Metastore::default()),
            io: Arc::new(IoStats::new()),
            cache,
            catalog_key,
            self_ref: weak.clone(),
        }))
    }

    pub fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.io)
    }

    /// The metadata cache this connector reads footers through.
    pub fn metadata_cache(&self) -> &Arc<MetadataCache> {
        &self.cache
    }

    /// Create a bucketed table: data will be hash-partitioned on
    /// `bucket_columns` into `bucket_count` shards, bucket `i` pinned to
    /// node `i % nodes`.
    pub fn create_bucketed_table(
        &self,
        table: &str,
        schema: &Schema,
        bucket_columns: Vec<usize>,
        bucket_count: usize,
    ) -> Result<()> {
        let mut store = self.metastore.write();
        if store.tables.contains_key(table) {
            return Err(PrestoError::user(format!("table '{table}' already exists")));
        }
        std::fs::create_dir_all(self.root.join(table))?;
        store.tables.insert(
            table.to_string(),
            RaptorTable {
                schema: schema.clone(),
                bucket_columns,
                bucket_count,
                shards: Vec::new(),
                stats: TableStatistics::unknown(),
            },
        );
        Ok(())
    }

    /// Load pages, bucketing rows when the table is bucketed. Computes
    /// statistics as a side effect (Raptor always has stats — part of why
    /// the Fig. 6 Raptor line is fastest).
    pub fn load_table(&self, table: &str, pages: &[Page]) -> Result<()> {
        let (schema, bucket_columns, bucket_count) = {
            let store = self.metastore.read();
            let t = store
                .tables
                .get(table)
                .ok_or_else(|| PrestoError::user(format!("table '{table}' does not exist")))?;
            (t.schema.clone(), t.bucket_columns.clone(), t.bucket_count)
        };
        // Partition rows into buckets.
        let buckets = if bucket_columns.is_empty() {
            self.nodes.len().max(1)
        } else {
            bucket_count
        };
        let mut per_bucket: Vec<Vec<Page>> = vec![Vec::new(); buckets];
        for page in pages {
            let page = page.load_all();
            if bucket_columns.is_empty() {
                // Random distribution: deal rows round-robin across shards.
                let mut positions: Vec<Vec<u32>> = vec![Vec::new(); buckets];
                for i in 0..page.row_count() {
                    positions[i % buckets].push(i as u32);
                }
                for (b, pos) in positions.iter().enumerate() {
                    if !pos.is_empty() {
                        per_bucket[b].push(page.filter(pos));
                    }
                }
            } else {
                let hashes = hash_columns(&page, &bucket_columns);
                let mut positions: Vec<Vec<u32>> = vec![Vec::new(); buckets];
                for (i, h) in hashes.iter().enumerate() {
                    positions[(h % buckets as u64) as usize].push(i as u32);
                }
                for (b, pos) in positions.iter().enumerate() {
                    if !pos.is_empty() {
                        per_bucket[b].push(page.filter(pos));
                    }
                }
            }
        }
        // Write one shard per bucket, pinned to a node.
        let mut shards = Vec::new();
        let mut all_stats: Vec<presto_porc::FileMeta> = Vec::new();
        for (b, bucket_pages) in per_bucket.iter().enumerate() {
            if bucket_pages.is_empty() {
                continue;
            }
            let path = self.root.join(table).join(format!("shard-{b:04}.porc"));
            let mut w = PorcWriter::create(&path, schema.clone(), WriterOptions::default())?;
            for p in bucket_pages {
                w.append(p)?;
            }
            let meta = w.finish()?;
            shards.push(Shard {
                path,
                node: self.nodes[b % self.nodes.len()],
                bucket: b,
                rows: meta.row_count,
            });
            all_stats.push(meta);
        }
        // Reloads overwrite shard files in place; a same-length overwrite
        // would otherwise satisfy the (path, len) footer key with stale
        // stripe statistics.
        self.cache
            .invalidate_table(&self.catalog_key, table, Some(&self.root.join(table)));
        // Merge footer statistics into table statistics.
        let stats = merge_stats(&schema, &all_stats);
        let mut store = self.metastore.write();
        let t = store
            .tables
            .get_mut(table)
            .expect("table registered before shard write");
        t.shards = shards;
        t.stats = stats;
        Ok(())
    }
}

fn merge_stats(schema: &Schema, metas: &[presto_porc::FileMeta]) -> TableStatistics {
    use presto_common::{ColumnStatistics, Estimate};
    let rows: u64 = metas.iter().map(|m| m.row_count).sum();
    let mut columns = vec![ColumnStatistics::unknown(); schema.len()];
    for meta in metas {
        for (c, cs) in meta.column_stats.iter().enumerate().take(columns.len()) {
            let col = &mut columns[c];
            if let Some(min) = &cs.min {
                if col
                    .min
                    .as_ref()
                    .is_none_or(|m| min.sql_cmp(m) == Some(std::cmp::Ordering::Less))
                {
                    col.min = Some(min.clone());
                }
            }
            if let Some(max) = &cs.max {
                if col
                    .max
                    .as_ref()
                    .is_none_or(|m| max.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
                {
                    col.max = Some(max.clone());
                }
            }
            let ndv = col.distinct_count.or(0.0).max(cs.distinct_count as f64);
            col.distinct_count = Estimate::exact(ndv);
            let nulls = col.null_fraction.or(0.0) * rows as f64 + cs.null_count as f64;
            col.null_fraction = Estimate::exact(if rows > 0 {
                (nulls / rows as f64).min(1.0)
            } else {
                0.0
            });
        }
    }
    TableStatistics {
        row_count: Estimate::exact(rows as f64),
        columns,
    }
}

#[derive(Debug)]
struct RaptorSplit {
    path: PathBuf,
    /// Kept for shard-level diagnostics; routing uses `Split::bucket`.
    #[allow(dead_code)]
    bucket: usize,
}

impl ConnectorMetadata for RaptorConnector {
    fn list_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.metastore.read().tables.keys().cloned().collect();
        names.sort();
        names
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        self.metastore
            .read()
            .tables
            .get(table)
            .map(|t| t.schema.clone())
            .ok_or_else(|| PrestoError::user(format!("table '{table}' does not exist")))
    }

    fn table_statistics(&self, table: &str) -> TableStatistics {
        self.metastore
            .read()
            .tables
            .get(table)
            .map(|t| t.stats.clone())
            .unwrap_or_else(TableStatistics::unknown)
    }

    fn table_layouts(&self, table: &str) -> Vec<DataLayout> {
        let store = self.metastore.read();
        let Some(t) = store.tables.get(table) else {
            return vec![DataLayout::unpartitioned()];
        };
        let partitioning = (!t.bucket_columns.is_empty()).then(|| Partitioning {
            columns: t.bucket_columns.clone(),
            bucket_count: t.bucket_count,
        });
        vec![DataLayout {
            name: "default".into(),
            partitioning,
            sorted_by: vec![],
            indexes: vec![],
            node_local: true,
        }]
    }

    fn create_table(&self, table: &str, schema: &Schema) -> Result<()> {
        self.create_bucketed_table(table, schema, Vec::new(), 0)
    }
}

impl Connector for RaptorConnector {
    fn name(&self) -> &str {
        "raptor"
    }

    fn metadata(&self) -> &dyn ConnectorMetadata {
        self
    }

    fn split_source(
        &self,
        table: &str,
        _layout: &str,
        _predicate: &TupleDomain,
    ) -> Result<Box<dyn SplitSource>> {
        let store = self.metastore.read();
        let t = store
            .tables
            .get(table)
            .ok_or_else(|| PrestoError::user(format!("table '{table}' does not exist")))?;
        let splits = t
            .shards
            .iter()
            .map(|s| Split {
                catalog: "raptor".into(),
                table: table.to_string(),
                payload: Arc::new(RaptorSplit {
                    path: s.path.clone(),
                    bucket: s.bucket,
                }),
                addresses: vec![s.node],
                estimated_rows: s.rows,
                bucket: Some(s.bucket),
                domain: None,
                info: format!("{table}/bucket-{}@{}", s.bucket, s.node),
            })
            .collect();
        Ok(Box::new(FixedSplitSource::new(splits)))
    }

    fn page_source_factory(&self) -> &dyn PageSourceFactory {
        self
    }

    fn page_sink_factory(&self) -> Option<&dyn PageSinkFactory> {
        Some(self)
    }
}

impl PageSourceFactory for RaptorConnector {
    fn create_source(&self, split: &Split, options: &ScanOptions) -> Result<Box<dyn PageSource>> {
        let payload = split
            .payload
            .downcast_ref::<RaptorSplit>()
            .ok_or_else(|| PrestoError::internal("raptor: foreign split"))?;
        let reader = self
            .cache
            .porc_reader(&payload.path, Arc::clone(&self.io), || {})?;
        let stripes = reader.select_stripes(&options.predicate).into_iter();
        Ok(Box::new(RaptorPageSource {
            reader,
            stripes,
            options: options.clone(),
            rows: 0,
        }))
    }
}

struct RaptorPageSource {
    reader: PorcReader,
    stripes: std::vec::IntoIter<usize>,
    options: ScanOptions,
    rows: u64,
}

impl PageSource for RaptorPageSource {
    fn next_page(&mut self) -> Result<Option<Page>> {
        match self.stripes.next() {
            Some(stripe) => {
                let page =
                    self.reader
                        .read_stripe(stripe, &self.options.columns, self.options.lazy)?;
                self.rows += page.row_count() as u64;
                Ok(Some(page))
            }
            None => Ok(None),
        }
    }

    fn rows_read(&self) -> u64 {
        self.rows
    }
}

impl PageSinkFactory for RaptorConnector {
    fn create_sink(&self, table: &str) -> Result<Box<dyn PageSink>> {
        // Sinks buffer pages and route them through load_table on finish so
        // bucketing and statistics stay consistent.
        self.table_schema(table)?;
        let connector = self
            .self_ref
            .upgrade()
            .ok_or_else(|| PrestoError::internal("raptor: connector dropped"))?;
        Ok(Box::new(RaptorSink {
            connector,
            table: table.to_string(),
            buffered: Vec::new(),
            rows: 0,
        }))
    }
}

struct RaptorSink {
    connector: Arc<RaptorConnector>,
    table: String,
    buffered: Vec<Page>,
    rows: u64,
}

impl PageSink for RaptorSink {
    fn append(&mut self, page: &Page) -> Result<()> {
        self.rows += page.row_count() as u64;
        self.buffered.push(page.load_all());
        Ok(())
    }

    fn finish(&mut self) -> Result<u64> {
        let pages = std::mem::take(&mut self.buffered);
        self.connector.load_table(&self.table, &pages)?;
        Ok(self.rows)
    }

    fn buffered_bytes(&self) -> u64 {
        self.buffered.iter().map(|p| p.size_in_bytes() as u64).sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Value};

    fn temp_root(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("raptor-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn bucketed_load_pins_shards_to_nodes() {
        let root = temp_root("bucketed");
        let c = RaptorConnector::new(&root, nodes(4)).unwrap();
        let schema = Schema::of(&[("uid", DataType::Bigint), ("v", DataType::Double)]);
        c.create_bucketed_table("events", &schema, vec![0], 8)
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..1000)
            .map(|i| vec![Value::Bigint(i % 100), Value::Double(i as f64)])
            .collect();
        c.load_table("events", &[Page::from_rows(&schema, &rows)])
            .unwrap();

        let layouts = c.table_layouts("events");
        assert!(layouts[0].node_local);
        assert_eq!(layouts[0].partitioning.as_ref().unwrap().columns, vec![0]);

        let mut src = c
            .split_source("events", "default", &TupleDomain::all())
            .unwrap();
        let splits = src.next_batch(64).unwrap();
        assert!(!splits.is_empty() && splits.len() <= 8);
        // Every split is pinned to exactly one node.
        for s in &splits {
            assert_eq!(s.addresses.len(), 1);
        }
        // All rows come back, each from the bucket its key hashes to.
        let mut total = 0usize;
        for split in &splits {
            let mut source = c
                .create_source(
                    split,
                    &ScanOptions {
                        columns: vec![0],
                        ..Default::default()
                    },
                )
                .unwrap();
            while let Some(page) = source.next_page().unwrap() {
                total += page.row_count();
            }
        }
        assert_eq!(total, 1000);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn same_key_lands_in_same_bucket_across_tables() {
        // Co-located joins depend on identical bucketing for identical keys.
        let root = temp_root("cojoin");
        let c = RaptorConnector::new(&root, nodes(2)).unwrap();
        let schema = Schema::of(&[("k", DataType::Bigint)]);
        c.create_bucketed_table("a", &schema, vec![0], 4).unwrap();
        c.create_bucketed_table("b", &schema, vec![0], 4).unwrap();
        let rows: Vec<Vec<Value>> = (0..50).map(|i| vec![Value::Bigint(i)]).collect();
        c.load_table("a", &[Page::from_rows(&schema, &rows)])
            .unwrap();
        c.load_table("b", &[Page::from_rows(&schema, &rows)])
            .unwrap();
        // Bucket contents must be identical per bucket index.
        let collect = |table: &str| -> HashMap<usize, Vec<i64>> {
            let mut out: HashMap<usize, Vec<i64>> = HashMap::new();
            let mut src = c
                .split_source(table, "default", &TupleDomain::all())
                .unwrap();
            for split in src.next_batch(64).unwrap() {
                let payload = split.payload.downcast_ref::<RaptorSplit>().unwrap();
                let mut source = c
                    .create_source(
                        &split,
                        &ScanOptions {
                            columns: vec![0],
                            ..Default::default()
                        },
                    )
                    .unwrap();
                let mut keys = Vec::new();
                while let Some(page) = source.next_page().unwrap() {
                    for i in 0..page.row_count() {
                        keys.push(page.block(0).i64_at(i));
                    }
                }
                keys.sort();
                out.insert(payload.bucket, keys);
            }
            out
        };
        assert_eq!(collect("a"), collect("b"));
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn statistics_always_available() {
        let root = temp_root("stats");
        let c = RaptorConnector::new(&root, nodes(2)).unwrap();
        let schema = Schema::of(&[("k", DataType::Bigint)]);
        c.create_table("t", &schema).unwrap();
        let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Bigint(i)]).collect();
        c.load_table("t", &[Page::from_rows(&schema, &rows)])
            .unwrap();
        let stats = c.table_statistics("t");
        assert_eq!(stats.row_count.value(), Some(100.0));
        assert_eq!(stats.columns[0].min, Some(Value::Bigint(0)));
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn reload_invalidates_cached_footers() {
        let root = temp_root("reload");
        let c = RaptorConnector::new(&root, nodes(1)).unwrap();
        let schema = Schema::of(&[("k", DataType::Bigint)]);
        c.create_table("t", &schema).unwrap();
        let load = |v: i64| {
            let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Bigint(v + i)]).collect();
            c.load_table("t", &[Page::from_rows(&schema, &rows)]).unwrap();
        };
        let scan_min = || {
            let mut src = c.split_source("t", "default", &TupleDomain::all()).unwrap();
            let mut min = i64::MAX;
            for split in src.next_batch(64).unwrap() {
                let mut source = c
                    .create_source(
                        &split,
                        &ScanOptions {
                            columns: vec![0],
                            ..Default::default()
                        },
                    )
                    .unwrap();
                while let Some(page) = source.next_page().unwrap() {
                    for i in 0..page.row_count() {
                        min = min.min(page.block(0).i64_at(i));
                    }
                }
            }
            min
        };
        load(0);
        assert_eq!(scan_min(), 0);
        // Same row count → same shard file length: only explicit
        // invalidation protects the (path, len) footer key.
        load(1_000);
        assert_eq!(scan_min(), 1_000, "no stale footer after reload");
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn sink_commits_through_connector() {
        let root = temp_root("sink");
        let c = RaptorConnector::new(&root, nodes(2)).unwrap();
        let schema = Schema::of(&[("k", DataType::Bigint)]);
        c.create_table("t", &schema).unwrap();
        let mut sink = c.create_sink("t").unwrap();
        sink.append(&Page::from_rows(&schema, &[vec![Value::Bigint(5)]]))
            .unwrap();
        assert_eq!(sink.finish().unwrap(), 1);
        assert_eq!(c.table_statistics("t").row_count.value(), Some(1.0));
        std::fs::remove_dir_all(root).ok();
    }
}
