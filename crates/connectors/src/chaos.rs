//! Fault-injection wrapper connector.
//!
//! §IV-G: "Presto is able to recover from many transient errors using
//! low-level retries." This wrapper makes any connector unreliable on
//! demand so those retries can be exercised deterministically: every Nth
//! page-source creation (and optionally every Nth page read) fails with a
//! retryable external error.

use presto_common::{PrestoError, Result, Schema, TableStatistics};
use presto_connector::{
    Connector, ConnectorMetadata, DataLayout, IndexSource, PageSinkFactory, PageSource,
    PageSourceFactory, ScanOptions, Split, SplitSource, TupleDomain,
};
use presto_page::Page;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps a connector, injecting transient failures.
pub struct ChaosConnector {
    inner: Arc<dyn Connector>,
    /// Fail every Nth `create_source` (0 = never).
    fail_every_nth_source: u64,
    /// Fail every Nth `next_page` call across all sources (0 = never).
    fail_every_nth_page: u64,
    source_calls: AtomicU64,
    page_calls: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
}

impl ChaosConnector {
    pub fn new(
        inner: Arc<dyn Connector>,
        fail_every_nth_source: u64,
        fail_every_nth_page: u64,
    ) -> Arc<ChaosConnector> {
        Arc::new(ChaosConnector {
            inner,
            fail_every_nth_source,
            fail_every_nth_page,
            source_calls: AtomicU64::new(0),
            page_calls: Arc::new(AtomicU64::new(0)),
            injected: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Number of failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl ConnectorMetadata for ChaosConnector {
    fn list_tables(&self) -> Vec<String> {
        self.inner.metadata().list_tables()
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        self.inner.metadata().table_schema(table)
    }

    fn table_statistics(&self, table: &str) -> TableStatistics {
        self.inner.metadata().table_statistics(table)
    }

    fn table_layouts(&self, table: &str) -> Vec<DataLayout> {
        self.inner.metadata().table_layouts(table)
    }

    fn create_table(&self, table: &str, schema: &Schema) -> Result<()> {
        self.inner.metadata().create_table(table, schema)
    }
}

impl Connector for ChaosConnector {
    fn name(&self) -> &str {
        "chaos"
    }

    fn metadata(&self) -> &dyn ConnectorMetadata {
        self
    }

    fn split_source(
        &self,
        table: &str,
        layout: &str,
        predicate: &TupleDomain,
    ) -> Result<Box<dyn SplitSource>> {
        self.inner.split_source(table, layout, predicate)
    }

    fn page_source_factory(&self) -> &dyn PageSourceFactory {
        self
    }

    fn page_sink_factory(&self) -> Option<&dyn PageSinkFactory> {
        self.inner.page_sink_factory()
    }

    fn index_source(
        &self,
        table: &str,
        key_columns: &[usize],
        output_columns: &[usize],
    ) -> Result<Option<Box<dyn IndexSource>>> {
        self.inner.index_source(table, key_columns, output_columns)
    }
}

impl PageSourceFactory for ChaosConnector {
    fn create_source(&self, split: &Split, options: &ScanOptions) -> Result<Box<dyn PageSource>> {
        let call = self.source_calls.fetch_add(1, Ordering::SeqCst) + 1;
        if self.fail_every_nth_source > 0 && call % self.fail_every_nth_source == 0 {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(PrestoError::transient(format!(
                "chaos: injected source failure for {}",
                split.info
            )));
        }
        let inner = self
            .inner
            .page_source_factory()
            .create_source(split, options)?;
        Ok(Box::new(ChaosPageSource {
            inner,
            fail_every_nth_page: self.fail_every_nth_page,
            page_calls: Arc::clone(&self.page_calls),
            injected: Arc::clone(&self.injected),
        }))
    }
}

struct ChaosPageSource {
    inner: Box<dyn PageSource>,
    fail_every_nth_page: u64,
    page_calls: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
}

impl PageSource for ChaosPageSource {
    fn next_page(&mut self) -> Result<Option<Page>> {
        let call = self.page_calls.fetch_add(1, Ordering::SeqCst) + 1;
        if self.fail_every_nth_page > 0 && call % self.fail_every_nth_page == 0 {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(PrestoError::transient("chaos: injected read failure"));
        }
        self.inner.next_page()
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }

    fn rows_read(&self) -> u64 {
        self.inner.rows_read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryConnector;
    use presto_common::{DataType, Value};

    fn chaotic() -> (Arc<ChaosConnector>, Vec<Split>) {
        let mem = MemoryConnector::new();
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        mem.load_rows(
            "t",
            schema,
            &[vec![Value::Bigint(1)], vec![Value::Bigint(2)]],
        );
        let chaos = ChaosConnector::new(mem, 2, 0);
        let splits = chaos
            .split_source("t", "default", &TupleDomain::all())
            .unwrap()
            .next_batch(10)
            .unwrap();
        (chaos, splits)
    }

    #[test]
    fn injects_every_second_source_creation() {
        let (chaos, splits) = chaotic();
        let opts = ScanOptions {
            columns: vec![0],
            ..Default::default()
        };
        assert!(chaos.create_source(&splits[0], &opts).is_ok());
        let err = match chaos.create_source(&splits[0], &opts) {
            Err(e) => e,
            Ok(_) => panic!("expected injected failure"),
        };
        assert!(err.is_retryable(), "injected failures must be retryable");
        assert!(chaos.create_source(&splits[0], &opts).is_ok());
        assert_eq!(chaos.injected_failures(), 1);
    }

    #[test]
    fn metadata_passes_through() {
        let (chaos, _) = chaotic();
        assert_eq!(chaos.metadata().list_tables(), vec!["t"]);
        assert!(chaos.metadata().table_schema("t").is_ok());
    }
}
