//! Fault-injection wrapper connector.
//!
//! §IV-G: "Presto is able to recover from many transient errors using
//! low-level retries." This wrapper makes any connector unreliable on
//! demand so those retries can be exercised deterministically: every Nth
//! page-source creation (and optionally every Nth page read) fails with a
//! retryable external error, and a seeded [`ChaosPolicy`] adds per-split
//! faults — transient first-attempt failures, permanent failures, page
//! delays, and one-shot hangs — decided by a pure hash of `(seed, split)`,
//! so the same seed reproduces the same faults on the same splits. The seed
//! family is shared with the cluster's `ChaosSchedule`
//! (`presto_common::chaos`), so one number reproduces an entire run.

use parking_lot::Mutex;
use presto_common::chaos::mix;
use presto_common::{PrestoError, Result, Schema, TableStatistics};
use presto_connector::{
    Connector, ConnectorMetadata, DataLayout, IndexSource, PageSinkFactory, PageSource,
    PageSourceFactory, ScanOptions, Split, SplitSource, TupleDomain,
};
use presto_page::Page;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Seeded per-split fault policy. Each split's fate is a pure function of
/// `(seed, split.info)`: re-running the same workload under the same seed
/// injects the same faults into the same splits, which is what makes chaos
/// runs debuggable. Ratios are in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct ChaosPolicy {
    pub seed: u64,
    /// Fraction of splits whose *first* source creation fails with a
    /// retryable error; the engine's low-level retry must recover them.
    pub transient_fail_ratio: f64,
    /// Fraction of splits whose source creation *always* fails
    /// (non-retryable): the query must fail promptly and cleanly.
    pub permanent_fail_ratio: f64,
    /// Fraction of splits whose every page read is delayed by `delay`
    /// (stragglers exercising the adaptive split scheduler).
    pub delay_ratio: f64,
    pub delay: Duration,
    /// Fraction of splits that hang once for `hang` before their first
    /// page (a long I/O stall).
    pub hang_ratio: f64,
    pub hang: Duration,
}

impl Default for ChaosPolicy {
    fn default() -> Self {
        ChaosPolicy {
            seed: 0,
            transient_fail_ratio: 0.0,
            permanent_fail_ratio: 0.0,
            delay_ratio: 0.0,
            delay: Duration::ZERO,
            hang_ratio: 0.0,
            hang: Duration::ZERO,
        }
    }
}

impl ChaosPolicy {
    /// Deterministic uniform draw in `[0, 1)` for a (split, dimension)
    /// pair. Different `salt`s give independent decisions for the same
    /// split.
    fn die(&self, split: &Split, salt: u64) -> f64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in split.info.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        (mix(self.seed ^ h ^ salt) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Wraps a connector, injecting transient failures.
pub struct ChaosConnector {
    inner: Arc<dyn Connector>,
    /// Fail every Nth `create_source` (0 = never).
    fail_every_nth_source: u64,
    /// Fail every Nth `next_page` call across all sources (0 = never).
    fail_every_nth_page: u64,
    /// Seeded per-split faults, layered on top of the Nth counters.
    policy: ChaosPolicy,
    /// Source-creation attempts per split, for first-attempt-only
    /// transient failures.
    attempts: Mutex<HashMap<String, u64>>,
    source_calls: AtomicU64,
    page_calls: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
    delays: Arc<AtomicU64>,
}

impl ChaosConnector {
    pub fn new(
        inner: Arc<dyn Connector>,
        fail_every_nth_source: u64,
        fail_every_nth_page: u64,
    ) -> Arc<ChaosConnector> {
        Self::build(
            inner,
            fail_every_nth_source,
            fail_every_nth_page,
            ChaosPolicy::default(),
        )
    }

    /// A connector whose faults follow the seeded per-split `policy`.
    pub fn with_policy(inner: Arc<dyn Connector>, policy: ChaosPolicy) -> Arc<ChaosConnector> {
        Self::build(inner, 0, 0, policy)
    }

    fn build(
        inner: Arc<dyn Connector>,
        fail_every_nth_source: u64,
        fail_every_nth_page: u64,
        policy: ChaosPolicy,
    ) -> Arc<ChaosConnector> {
        Arc::new(ChaosConnector {
            inner,
            fail_every_nth_source,
            fail_every_nth_page,
            policy,
            attempts: Mutex::new(HashMap::new()),
            source_calls: AtomicU64::new(0),
            page_calls: Arc::new(AtomicU64::new(0)),
            injected: Arc::new(AtomicU64::new(0)),
            delays: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Number of failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Number of delayed or hung page reads injected so far.
    pub fn injected_delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }
}

impl ConnectorMetadata for ChaosConnector {
    fn list_tables(&self) -> Vec<String> {
        self.inner.metadata().list_tables()
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        self.inner.metadata().table_schema(table)
    }

    fn table_statistics(&self, table: &str) -> TableStatistics {
        self.inner.metadata().table_statistics(table)
    }

    fn table_layouts(&self, table: &str) -> Vec<DataLayout> {
        self.inner.metadata().table_layouts(table)
    }

    fn create_table(&self, table: &str, schema: &Schema) -> Result<()> {
        self.inner.metadata().create_table(table, schema)
    }
}

impl Connector for ChaosConnector {
    fn name(&self) -> &str {
        "chaos"
    }

    fn metadata(&self) -> &dyn ConnectorMetadata {
        self
    }

    fn split_source(
        &self,
        table: &str,
        layout: &str,
        predicate: &TupleDomain,
    ) -> Result<Box<dyn SplitSource>> {
        self.inner.split_source(table, layout, predicate)
    }

    fn page_source_factory(&self) -> &dyn PageSourceFactory {
        self
    }

    fn page_sink_factory(&self) -> Option<&dyn PageSinkFactory> {
        self.inner.page_sink_factory()
    }

    fn index_source(
        &self,
        table: &str,
        key_columns: &[usize],
        output_columns: &[usize],
    ) -> Result<Option<Box<dyn IndexSource>>> {
        self.inner.index_source(table, key_columns, output_columns)
    }
}

impl PageSourceFactory for ChaosConnector {
    fn create_source(&self, split: &Split, options: &ScanOptions) -> Result<Box<dyn PageSource>> {
        let call = self.source_calls.fetch_add(1, Ordering::SeqCst) + 1;
        if self.fail_every_nth_source > 0 && call % self.fail_every_nth_source == 0 {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(PrestoError::transient(format!(
                "chaos: injected source failure for {}",
                split.info
            )));
        }
        // Per-split seeded faults. Permanent failures take priority (no
        // amount of retrying helps); a transient draw fails only the first
        // attempt, so a retry observes the fault healed.
        let p = &self.policy;
        if p.permanent_fail_ratio > 0.0 && p.die(split, 1) < p.permanent_fail_ratio {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(PrestoError::external(format!(
                "chaos: injected permanent failure for {}",
                split.info
            )));
        }
        if p.transient_fail_ratio > 0.0 && p.die(split, 2) < p.transient_fail_ratio {
            let attempt = {
                let mut attempts = self.attempts.lock();
                let n = attempts.entry(split.info.clone()).or_insert(0);
                *n += 1;
                *n
            };
            if attempt == 1 {
                self.injected.fetch_add(1, Ordering::SeqCst);
                return Err(PrestoError::transient(format!(
                    "chaos: injected transient failure for {}",
                    split.info
                )));
            }
        }
        let delay = (p.delay_ratio > 0.0 && p.die(split, 3) < p.delay_ratio)
            .then_some(p.delay)
            .unwrap_or(Duration::ZERO);
        let hang = (p.hang_ratio > 0.0 && p.die(split, 4) < p.hang_ratio)
            .then_some(p.hang)
            .unwrap_or(Duration::ZERO);
        let inner = self
            .inner
            .page_source_factory()
            .create_source(split, options)?;
        Ok(Box::new(ChaosPageSource {
            inner,
            fail_every_nth_page: self.fail_every_nth_page,
            delay,
            pending_hang: hang,
            page_calls: Arc::clone(&self.page_calls),
            injected: Arc::clone(&self.injected),
            delays: Arc::clone(&self.delays),
        }))
    }
}

struct ChaosPageSource {
    inner: Box<dyn PageSource>,
    fail_every_nth_page: u64,
    /// Sleep this long before every page read (straggler split).
    delay: Duration,
    /// Sleep this long before the first page read only (one I/O stall).
    pending_hang: Duration,
    page_calls: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
    delays: Arc<AtomicU64>,
}

impl PageSource for ChaosPageSource {
    fn next_page(&mut self) -> Result<Option<Page>> {
        let call = self.page_calls.fetch_add(1, Ordering::SeqCst) + 1;
        if self.fail_every_nth_page > 0 && call % self.fail_every_nth_page == 0 {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(PrestoError::transient("chaos: injected read failure"));
        }
        if self.pending_hang > Duration::ZERO {
            let hang = std::mem::replace(&mut self.pending_hang, Duration::ZERO);
            self.delays.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(hang);
        }
        if self.delay > Duration::ZERO {
            self.delays.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(self.delay);
        }
        self.inner.next_page()
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }

    fn rows_read(&self) -> u64 {
        self.inner.rows_read()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::memory::MemoryConnector;
    use presto_common::{DataType, Value};

    fn chaotic() -> (Arc<ChaosConnector>, Vec<Split>) {
        let mem = MemoryConnector::new();
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        mem.load_rows(
            "t",
            schema,
            &[vec![Value::Bigint(1)], vec![Value::Bigint(2)]],
        );
        let chaos = ChaosConnector::new(mem, 2, 0);
        let splits = chaos
            .split_source("t", "default", &TupleDomain::all())
            .unwrap()
            .next_batch(10)
            .unwrap();
        (chaos, splits)
    }

    #[test]
    fn injects_every_second_source_creation() {
        let (chaos, splits) = chaotic();
        let opts = ScanOptions {
            columns: vec![0],
            ..Default::default()
        };
        assert!(chaos.create_source(&splits[0], &opts).is_ok());
        let err = match chaos.create_source(&splits[0], &opts) {
            Err(e) => e,
            Ok(_) => panic!("expected injected failure"),
        };
        assert!(err.is_retryable(), "injected failures must be retryable");
        assert!(chaos.create_source(&splits[0], &opts).is_ok());
        assert_eq!(chaos.injected_failures(), 1);
    }

    #[test]
    fn metadata_passes_through() {
        let (chaos, _) = chaotic();
        assert_eq!(chaos.metadata().list_tables(), vec!["t"]);
        assert!(chaos.metadata().table_schema("t").is_ok());
    }

    fn policy_fixture(policy: ChaosPolicy) -> (Arc<ChaosConnector>, Vec<Split>) {
        let mem = MemoryConnector::new();
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        // One page per row so the table yields many splits — per-split
        // fault decisions need a population to sample.
        let pages: Vec<presto_page::Page> = (0..64)
            .map(|i| presto_page::Page::from_rows(&schema, &[vec![Value::Bigint(i)]]))
            .collect();
        mem.load_table("t", schema, pages);
        let chaos = ChaosConnector::with_policy(mem, policy);
        let splits = chaos
            .split_source("t", "default", &TupleDomain::all())
            .unwrap()
            .next_batch(1000)
            .unwrap();
        (chaos, splits)
    }

    #[test]
    fn policy_decisions_are_deterministic_per_seed() {
        let policy = ChaosPolicy {
            seed: 99,
            transient_fail_ratio: 0.5,
            ..Default::default()
        };
        let (a, splits_a) = policy_fixture(policy.clone());
        let (b, splits_b) = policy_fixture(policy);
        let opts = ScanOptions {
            columns: vec![0],
            ..Default::default()
        };
        let fates_a: Vec<bool> = splits_a
            .iter()
            .map(|s| a.create_source(s, &opts).is_err())
            .collect();
        let fates_b: Vec<bool> = splits_b
            .iter()
            .map(|s| b.create_source(s, &opts).is_err())
            .collect();
        assert_eq!(fates_a, fates_b, "same seed must doom the same splits");
        assert!(fates_a.iter().any(|f| *f), "ratio 0.5 should doom some");
        assert!(fates_a.iter().any(|f| !*f), "ratio 0.5 should spare some");
    }

    #[test]
    fn transient_policy_failure_heals_on_retry() {
        let (chaos, splits) = policy_fixture(ChaosPolicy {
            seed: 7,
            transient_fail_ratio: 1.0,
            ..Default::default()
        });
        let opts = ScanOptions {
            columns: vec![0],
            ..Default::default()
        };
        let err = match chaos.create_source(&splits[0], &opts) {
            Err(e) => e,
            Ok(_) => panic!("first attempt must fail"),
        };
        assert!(err.is_retryable());
        assert!(
            chaos.create_source(&splits[0], &opts).is_ok(),
            "second attempt on the same split must succeed"
        );
    }

    #[test]
    fn permanent_policy_failure_never_heals() {
        let (chaos, splits) = policy_fixture(ChaosPolicy {
            seed: 7,
            permanent_fail_ratio: 1.0,
            ..Default::default()
        });
        let opts = ScanOptions {
            columns: vec![0],
            ..Default::default()
        };
        for _ in 0..3 {
            let err = match chaos.create_source(&splits[0], &opts) {
                Err(e) => e,
                Ok(_) => panic!("permanent failure must persist"),
            };
            assert!(!err.is_retryable(), "permanent failures are not retryable");
        }
    }

    #[test]
    fn delayed_splits_still_produce_all_rows() {
        let (chaos, splits) = policy_fixture(ChaosPolicy {
            seed: 7,
            delay_ratio: 1.0,
            delay: Duration::from_micros(100),
            hang_ratio: 1.0,
            hang: Duration::from_micros(500),
            ..Default::default()
        });
        let opts = ScanOptions {
            columns: vec![0],
            ..Default::default()
        };
        let mut rows = 0u64;
        for split in &splits {
            let mut src = chaos.create_source(split, &opts).unwrap();
            while let Some(page) = src.next_page().unwrap() {
                rows += page.row_count() as u64;
            }
        }
        assert_eq!(rows, 64);
        assert!(chaos.injected_delays() > 0);
        assert_eq!(chaos.injected_failures(), 0);
    }
}
