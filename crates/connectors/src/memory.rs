//! In-memory connector: tables are vectors of pages.

use parking_lot::RwLock;
use presto_common::{
    ColumnStatistics, Estimate, PrestoError, Result, Schema, TableStatistics, Value,
};
use presto_connector::{
    Connector, ConnectorMetadata, FixedSplitSource, PageSink, PageSinkFactory, PageSource,
    PageSourceFactory, ScanOptions, Split, SplitSource, TupleDomain,
};
use presto_page::Page;
use std::collections::HashMap;
use std::sync::Arc;

/// One table's data plus cached statistics.
#[derive(Debug, Default)]
struct MemoryTable {
    schema: Schema,
    pages: Vec<Page>,
    stats: Option<TableStatistics>,
}

#[derive(Default)]
struct Inner {
    tables: HashMap<String, MemoryTable>,
}

/// An embeddable in-memory catalog.
pub struct MemoryConnector {
    inner: Arc<RwLock<Inner>>,
    /// How many pages each split covers (several splits per table lets the
    /// scheduler parallelize scans).
    pages_per_split: usize,
}

impl MemoryConnector {
    pub fn new() -> Arc<MemoryConnector> {
        Arc::new(MemoryConnector {
            inner: Arc::new(RwLock::new(Inner::default())),
            pages_per_split: 4,
        })
    }

    /// Create a table and load `pages` into it in one call.
    pub fn load_table(&self, name: &str, schema: Schema, pages: Vec<Page>) {
        let mut inner = self.inner.write();
        inner.tables.insert(
            name.to_string(),
            MemoryTable {
                schema,
                pages: pages.into_iter().map(|p| p.load_all()).collect(),
                stats: None,
            },
        );
    }

    /// Convenience: load from row values.
    pub fn load_rows(&self, name: &str, schema: Schema, rows: &[Vec<Value>]) {
        let page = Page::from_rows(&schema, rows);
        self.load_table(name, schema, vec![page]);
    }

    /// Compute and cache table/column statistics (an `ANALYZE` pass).
    /// Without this, the connector reports unknown statistics.
    pub fn analyze(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let table = inner
            .tables
            .get_mut(name)
            .ok_or_else(|| PrestoError::user(format!("table '{name}' does not exist")))?;
        let rows: u64 = table.pages.iter().map(|p| p.row_count() as u64).sum();
        let mut columns = Vec::with_capacity(table.schema.len());
        for c in 0..table.schema.len() {
            let dt = table.schema.data_type(c);
            let mut distinct = std::collections::HashSet::new();
            let mut nulls = 0u64;
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            for page in &table.pages {
                let block = page.block(c);
                for i in 0..block.len() {
                    if block.is_null(i) {
                        nulls += 1;
                        continue;
                    }
                    let v = block.value_at(dt, i);
                    if min
                        .as_ref()
                        .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Less))
                    {
                        min = Some(v.clone());
                    }
                    if max
                        .as_ref()
                        .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
                    {
                        max = Some(v.clone());
                    }
                    distinct.insert(v);
                }
            }
            columns.push(ColumnStatistics {
                distinct_count: Estimate::exact(distinct.len() as f64),
                null_fraction: Estimate::exact(if rows > 0 {
                    nulls as f64 / rows as f64
                } else {
                    0.0
                }),
                min,
                max,
                avg_size: Estimate::unknown(),
            });
        }
        table.stats = Some(TableStatistics {
            row_count: Estimate::exact(rows as f64),
            columns,
        });
        Ok(())
    }

    /// Total rows currently stored in `name` (test helper).
    pub fn row_count(&self, name: &str) -> u64 {
        self.inner
            .read()
            .tables
            .get(name)
            .map(|t| t.pages.iter().map(|p| p.row_count() as u64).sum())
            .unwrap_or(0)
    }
}

impl ConnectorMetadata for MemoryConnector {
    fn list_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().tables.keys().cloned().collect();
        names.sort();
        names
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        self.inner
            .read()
            .tables
            .get(table)
            .map(|t| t.schema.clone())
            .ok_or_else(|| PrestoError::user(format!("table '{table}' does not exist")))
    }

    fn table_statistics(&self, table: &str) -> TableStatistics {
        self.inner
            .read()
            .tables
            .get(table)
            .and_then(|t| t.stats.clone())
            .unwrap_or_else(TableStatistics::unknown)
    }

    fn create_table(&self, table: &str, schema: &Schema) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.tables.contains_key(table) {
            return Err(PrestoError::user(format!("table '{table}' already exists")));
        }
        inner.tables.insert(
            table.to_string(),
            MemoryTable {
                schema: schema.clone(),
                pages: Vec::new(),
                stats: None,
            },
        );
        Ok(())
    }
}

/// Split payload: range of page indices.
#[derive(Debug)]
struct MemorySplit {
    first_page: usize,
    page_count: usize,
}

impl Connector for MemoryConnector {
    fn name(&self) -> &str {
        "memory"
    }

    fn metadata(&self) -> &dyn ConnectorMetadata {
        self
    }

    fn split_source(
        &self,
        table: &str,
        _layout: &str,
        _predicate: &TupleDomain,
    ) -> Result<Box<dyn SplitSource>> {
        let inner = self.inner.read();
        let t = inner
            .tables
            .get(table)
            .ok_or_else(|| PrestoError::user(format!("table '{table}' does not exist")))?;
        let mut splits = Vec::new();
        let mut first = 0usize;
        while first < t.pages.len() {
            let count = self.pages_per_split.min(t.pages.len() - first);
            let rows: u64 = t.pages[first..first + count]
                .iter()
                .map(|p| p.row_count() as u64)
                .sum();
            splits.push(Split {
                catalog: "memory".into(),
                table: table.to_string(),
                payload: Arc::new(MemorySplit {
                    first_page: first,
                    page_count: count,
                }),
                addresses: vec![],
                estimated_rows: rows,
                bucket: None,
                domain: None,
                info: format!("{table}[{first}..{}]", first + count),
            });
            first += count;
        }
        Ok(Box::new(FixedSplitSource::new(splits)))
    }

    fn page_source_factory(&self) -> &dyn PageSourceFactory {
        self
    }

    fn page_sink_factory(&self) -> Option<&dyn PageSinkFactory> {
        Some(self)
    }
}

impl PageSourceFactory for MemoryConnector {
    fn create_source(&self, split: &Split, options: &ScanOptions) -> Result<Box<dyn PageSource>> {
        let payload = split
            .payload
            .downcast_ref::<MemorySplit>()
            .ok_or_else(|| PrestoError::internal("memory: foreign split"))?;
        let inner = self.inner.read();
        let t = inner
            .tables
            .get(&split.table)
            .ok_or_else(|| PrestoError::user(format!("table '{}' does not exist", split.table)))?;
        let pages: Vec<Page> = t.pages[payload.first_page..payload.first_page + payload.page_count]
            .iter()
            .map(|p| p.project(&options.columns))
            .collect();
        Ok(Box::new(presto_connector::source::FixedPageSource::new(
            pages,
        )))
    }
}

impl PageSinkFactory for MemoryConnector {
    fn create_sink(&self, table: &str) -> Result<Box<dyn PageSink>> {
        Ok(Box::new(MemorySink {
            inner: Arc::clone(&self.inner),
            table: table.to_string(),
            buffered: Vec::new(),
            rows: 0,
        }))
    }
}

struct MemorySink {
    inner: Arc<RwLock<Inner>>,
    table: String,
    buffered: Vec<Page>,
    rows: u64,
}

impl PageSink for MemorySink {
    fn append(&mut self, page: &Page) -> Result<()> {
        self.rows += page.row_count() as u64;
        self.buffered.push(page.load_all());
        Ok(())
    }

    fn finish(&mut self) -> Result<u64> {
        let mut inner = self.inner.write();
        let t = inner
            .tables
            .get_mut(&self.table)
            .ok_or_else(|| PrestoError::user(format!("table '{}' does not exist", self.table)))?;
        t.pages.append(&mut self.buffered);
        t.stats = None; // stats invalidated by the write
        Ok(self.rows)
    }

    fn buffered_bytes(&self) -> u64 {
        self.buffered.iter().map(|p| p.size_in_bytes() as u64).sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::DataType;

    fn connector_with_data() -> Arc<MemoryConnector> {
        let c = MemoryConnector::new();
        let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Varchar)]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Bigint(i), Value::varchar(format!("v{i}"))])
            .collect();
        c.load_rows("t", schema, &rows);
        c
    }

    #[test]
    fn scan_round_trip() {
        let c = connector_with_data();
        let mut src = c.split_source("t", "default", &TupleDomain::all()).unwrap();
        let splits = src.next_batch(100).unwrap();
        assert!(!splits.is_empty());
        let mut rows = 0;
        for split in &splits {
            let mut source = c
                .create_source(
                    split,
                    &ScanOptions {
                        columns: vec![1, 0],
                        ..Default::default()
                    },
                )
                .unwrap();
            while let Some(page) = source.next_page().unwrap() {
                assert_eq!(page.column_count(), 2);
                assert!(page.block(0).str_at(0).starts_with('v'));
                rows += page.row_count();
            }
        }
        assert_eq!(rows, 100);
    }

    #[test]
    fn analyze_produces_statistics() {
        let c = connector_with_data();
        assert!(!c.table_statistics("t").row_count.is_known());
        c.analyze("t").unwrap();
        let stats = c.table_statistics("t");
        assert_eq!(stats.row_count.value(), Some(100.0));
        assert_eq!(stats.columns[0].distinct_count.value(), Some(100.0));
        assert_eq!(stats.columns[0].min, Some(Value::Bigint(0)));
    }

    #[test]
    fn insert_via_sink() {
        let c = connector_with_data();
        let schema = c.table_schema("t").unwrap();
        let mut sink = c.create_sink("t").unwrap();
        let page = Page::from_rows(&schema, &[vec![Value::Bigint(999), Value::varchar("new")]]);
        sink.append(&page).unwrap();
        assert_eq!(c.row_count("t"), 100, "no visibility before finish");
        assert_eq!(sink.finish().unwrap(), 1);
        assert_eq!(c.row_count("t"), 101);
    }

    #[test]
    fn unknown_table_errors() {
        let c = MemoryConnector::new();
        assert!(c.table_schema("nope").is_err());
        assert!(c
            .split_source("nope", "default", &TupleDomain::all())
            .is_err());
    }

    #[test]
    fn create_table_conflicts() {
        let c = MemoryConnector::new();
        let s = Schema::of(&[("x", DataType::Bigint)]);
        c.create_table("t", &s).unwrap();
        assert!(c.create_table("t", &s).is_err());
        assert_eq!(c.list_tables(), vec!["t"]);
    }
}
