//! Built-in connectors.
//!
//! Table I of the paper maps each production use case to a connector; this
//! crate provides working equivalents of each:
//!
//! * [`memory::MemoryConnector`] — in-memory tables; the default catalog
//!   for quickstarts and tests.
//! * [`hive::HiveConnector`] — the "Hive/HDFS" shared-storage warehouse:
//!   PORC files under a directory tree, an embedded metastore, lazy batched
//!   split enumeration, stripe pruning, lazy column loads, optional table
//!   statistics (the Fig. 6 stats/no-stats toggle), and a configurable
//!   per-read latency to model remote storage.
//! * [`raptor::RaptorConnector`] — the shared-nothing storage engine built
//!   for Presto (§IV-D2): shards pinned to nodes (`node_local` layouts,
//!   splits with addresses), optional bucketing for co-located joins,
//!   metadata in an embedded store standing in for MySQL.
//! * [`sharded::ShardedSqlConnector`] — the "sharded MySQL" analogue from
//!   the Developer/Advertiser Analytics use case (§IV-B3-2): point/range
//!   predicates are pushed into shards so only matching data is read, and
//!   key columns expose an index for index-nested-loop joins.
//! * [`chaos::ChaosConnector`] — wraps any connector and injects transient
//!   failures, for exercising the §IV-G low-level retry path.

//! * [`system::SystemConnector`] — the engine's own runtime state
//!   (`system.runtime.*`, §VII): queries, tasks, operators, memory pools,
//!   caches, dynamic filters, and the trace timeline as SQL tables, backed
//!   by a [`system::SystemStateProvider`] the cluster implements.

pub mod chaos;
pub mod hive;
pub mod memory;
pub mod raptor;
pub mod sharded;
pub mod system;

pub use chaos::{ChaosConnector, ChaosPolicy};
pub use hive::HiveConnector;
pub use memory::MemoryConnector;
pub use raptor::RaptorConnector;
pub use sharded::ShardedSqlConnector;
pub use system::{SystemConnector, SystemStateProvider, SystemTable};
