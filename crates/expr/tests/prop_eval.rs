//! Property test: the compiled (vectorized) evaluator and the row
//! interpreter agree on every expression and input — the §V-B invariant
//! ("Presto contains an expression interpreter … that we use for tests").

use presto_common::{DataType, Schema, Value};
use presto_expr::interpreter::evaluate_row;
use presto_expr::{ArithOp, CmpOp, CompiledExpr, Expr};
use presto_page::Page;
use proptest::prelude::*;

/// Input schema for generated expressions: two bigints, a double, a
/// varchar, and a boolean.
fn schema() -> Schema {
    Schema::of(&[
        ("a", DataType::Bigint),
        ("b", DataType::Bigint),
        ("x", DataType::Double),
        ("s", DataType::Varchar),
        ("f", DataType::Boolean),
    ])
}

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    (
        prop_oneof![3 => (-100i64..100).prop_map(Value::Bigint), 1 => Just(Value::Null)],
        prop_oneof![3 => (-100i64..100).prop_map(Value::Bigint), 1 => Just(Value::Null)],
        prop_oneof![
            3 => (-100.0f64..100.0).prop_map(Value::Double),
            1 => Just(Value::Null)
        ],
        prop_oneof![3 => "[a-c]{0,4}".prop_map(Value::varchar), 1 => Just(Value::Null)],
        prop_oneof![3 => any::<bool>().prop_map(Value::Boolean), 1 => Just(Value::Null)],
    )
        .prop_map(|(a, b, x, s, f)| vec![a, b, x, s, f])
}

/// Generated numeric (bigint) expressions. Division/modulo are excluded
/// here (their short-circuit error behaviour is covered by unit tests) so
/// every generated expression evaluates without error.
fn arb_numeric(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        Just(Expr::column(0, DataType::Bigint)),
        Just(Expr::column(1, DataType::Bigint)),
        (-50i64..50).prop_map(Expr::literal),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![Just(ArithOp::Add), Just(ArithOp::Sub), Just(ArithOp::Mul)],
        )
            .prop_map(|(l, r, op)| Expr::arith(op, l, r))
    })
    .boxed()
}

/// Generated boolean expressions over the schema.
fn arb_boolean(depth: u32) -> BoxedStrategy<Expr> {
    let cmp_op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge)
    ];
    let leaf = prop_oneof![
        (arb_numeric(2), arb_numeric(2), cmp_op.clone()).prop_map(|(l, r, op)| Expr::cmp(op, l, r)),
        cmp_op.prop_map(|op| Expr::cmp(op, Expr::column(3, DataType::Varchar), Expr::literal("b"))),
        Just(Expr::column(4, DataType::Boolean)),
        Just(Expr::IsNull(Box::new(Expr::column(2, DataType::Double)))),
        proptest::collection::vec(-5i64..5, 1..4).prop_map(|vals| Expr::InList {
            expr: Box::new(Expr::column(0, DataType::Bigint)),
            list: vals.into_iter().map(Value::Bigint).collect(),
        }),
    ];
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::and),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::or),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), arb_numeric(1), arb_numeric(1))
                .prop_map(|(c, t, e)| Expr::Case {
                    branches: vec![(c, t)],
                    otherwise: Some(Box::new(e)),
                    data_type: DataType::Bigint,
                })
                .prop_map(|case| Expr::cmp(CmpOp::Gt, case, Expr::literal(0i64))),
        ]
    })
    .boxed()
}

fn check_agreement(expr: &Expr, rows: Vec<Vec<Value>>) -> Result<(), TestCaseError> {
    if rows.is_empty() {
        return Ok(());
    }
    let page = Page::from_rows(&schema(), &rows);
    let compiled = CompiledExpr::compile(expr);
    let block = compiled.eval(&page).expect("compiled eval");
    for i in 0..page.row_count() {
        let interpreted = evaluate_row(expr, &page, i).expect("interpreted eval");
        let vectorized = block.value_at(expr.data_type(), i);
        prop_assert_eq!(
            &vectorized,
            &interpreted,
            "row {} disagreed for {}",
            i,
            expr
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn compiled_matches_interpreter_on_numeric(
        expr in arb_numeric(3),
        rows in proptest::collection::vec(arb_row(), 0..24),
    ) {
        check_agreement(&expr, rows)?;
    }

    #[test]
    fn compiled_matches_interpreter_on_boolean(
        expr in arb_boolean(3),
        rows in proptest::collection::vec(arb_row(), 0..24),
    ) {
        check_agreement(&expr, rows)?;
    }

    #[test]
    fn selection_equals_interpreted_filter(
        expr in arb_boolean(3),
        rows in proptest::collection::vec(arb_row(), 1..24),
    ) {
        let page = Page::from_rows(&schema(), &rows);
        let compiled = CompiledExpr::compile(&expr);
        let selection = compiled.eval_selection(&page).expect("selection");
        let expected: Vec<u32> = (0..page.row_count())
            .filter(|&i| {
                matches!(evaluate_row(&expr, &page, i), Ok(Value::Boolean(true)))
            })
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(selection, expected, "filter disagreed for {}", expr);
    }
}
