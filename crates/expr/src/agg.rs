//! Aggregate functions with distributed (partial/final) evaluation.
//!
//! Distributed aggregation runs in two phases (Fig. 3 of the paper:
//! `AggregatePartial` → shuffle → `AggregateFinal`). Each function therefore
//! defines an *intermediate* representation that partial accumulators emit
//! as ordinary page columns and final accumulators merge:
//!
//! | function      | intermediate columns            |
//! |---------------|---------------------------------|
//! | count         | count bigint                    |
//! | sum           | sum (input type), empty flag    |
//! | min/max       | value (input type)              |
//! | avg           | sum double, count bigint        |
//! | stddev/var    | count bigint, mean, m2 doubles  |
//! | count_distinct| not decomposable — single phase |
//!
//! Accumulators are *grouped*: state is kept in flat vectors indexed by
//! group id, following the paper's flat-memory guidance (§V-A: "data
//! structures in the critical path of query execution are implemented over
//! flat memory arrays").

use presto_common::{DataType, PrestoError, Result, Value};
use presto_page::{Block, BlockBuilder};
use std::collections::HashSet;

/// Which aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateKind {
    Count,
    /// `COUNT(x)`: counts non-null inputs; `Count` with no argument counts rows.
    CountNonNull,
    Sum,
    Min,
    Max,
    Avg,
    StddevPop,
    StddevSamp,
    VarPop,
    VarSamp,
    CountDistinct,
}

impl AggregateKind {
    /// Resolve by SQL name + argument presence + DISTINCT flag.
    pub fn resolve(name: &str, has_arg: bool, distinct: bool) -> Result<AggregateKind> {
        let lname = name.to_ascii_lowercase();
        if distinct {
            return match lname.as_str() {
                "count" => Ok(AggregateKind::CountDistinct),
                _ => Err(PrestoError::user(format!(
                    "DISTINCT not supported for {name}"
                ))),
            };
        }
        match lname.as_str() {
            "count" if has_arg => Ok(AggregateKind::CountNonNull),
            "count" => Ok(AggregateKind::Count),
            "sum" => Ok(AggregateKind::Sum),
            "min" => Ok(AggregateKind::Min),
            "max" => Ok(AggregateKind::Max),
            "avg" => Ok(AggregateKind::Avg),
            "stddev" | "stddev_samp" => Ok(AggregateKind::StddevSamp),
            "stddev_pop" => Ok(AggregateKind::StddevPop),
            "variance" | "var_samp" => Ok(AggregateKind::VarSamp),
            "var_pop" => Ok(AggregateKind::VarPop),
            _ => Err(PrestoError::user(format!(
                "unknown aggregate function '{name}'"
            ))),
        }
    }

    /// Whether this aggregate supports a partial/final split. Aggregates
    /// that do not (count_distinct) force single-phase aggregation.
    pub fn supports_partial(&self) -> bool {
        !matches!(self, AggregateKind::CountDistinct)
    }
}

/// A fully-resolved aggregate: kind + input type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregateFunction {
    pub kind: AggregateKind,
    /// Input type; `None` only for zero-argument `COUNT(*)`.
    pub input_type: Option<DataType>,
}

impl AggregateFunction {
    pub fn new(kind: AggregateKind, input_type: Option<DataType>) -> Result<AggregateFunction> {
        use AggregateKind::*;
        match kind {
            Count => {}
            CountNonNull | Min | Max | CountDistinct => {
                if input_type.is_none() {
                    return Err(PrestoError::user("aggregate requires an argument"));
                }
            }
            Sum | Avg | StddevPop | StddevSamp | VarPop | VarSamp => match input_type {
                Some(t) if t.is_numeric() => {}
                _ => return Err(PrestoError::user("aggregate requires a numeric argument")),
            },
        }
        Ok(AggregateFunction { kind, input_type })
    }

    /// Final output type.
    pub fn output_type(&self) -> DataType {
        use AggregateKind::*;
        match self.kind {
            Count | CountNonNull | CountDistinct => DataType::Bigint,
            Sum | Min | Max => self.input_type.expect("non-count aggregate carries an input type"),
            Avg | StddevPop | StddevSamp | VarPop | VarSamp => DataType::Double,
        }
    }

    /// Column types of the intermediate (partial) representation.
    pub fn intermediate_types(&self) -> Vec<DataType> {
        use AggregateKind::*;
        match self.kind {
            Count | CountNonNull => vec![DataType::Bigint],
            Sum | Min | Max => vec![self.input_type.expect("non-count aggregate carries an input type")],
            Avg => vec![DataType::Double, DataType::Bigint],
            StddevPop | StddevSamp | VarPop | VarSamp => {
                vec![DataType::Bigint, DataType::Double, DataType::Double]
            }
            CountDistinct => vec![DataType::Bigint],
        }
    }

    /// Create a grouped accumulator for this function.
    pub fn create_accumulator(&self) -> GroupedAccumulator {
        use AggregateKind::*;
        let f = *self;
        match self.kind {
            Count | CountNonNull => GroupedAccumulator::Count {
                f,
                counts: Vec::new(),
            },
            Sum => GroupedAccumulator::Sum {
                f,
                sums: Vec::new(),
                saw_value: Vec::new(),
            },
            Min | Max => GroupedAccumulator::MinMax {
                f,
                values: Vec::new(),
            },
            Avg => GroupedAccumulator::Avg {
                f,
                sums: Vec::new(),
                counts: Vec::new(),
            },
            StddevPop | StddevSamp | VarPop | VarSamp => GroupedAccumulator::Moments {
                f,
                counts: Vec::new(),
                means: Vec::new(),
                m2s: Vec::new(),
            },
            CountDistinct => GroupedAccumulator::Distinct {
                f,
                sets: Vec::new(),
            },
        }
    }
}

/// Grouped aggregation state: one logical accumulator per group id, stored
/// in flat vectors.
#[derive(Debug)]
pub enum GroupedAccumulator {
    Count {
        f: AggregateFunction,
        counts: Vec<i64>,
    },
    Sum {
        f: AggregateFunction,
        sums: Vec<f64>,
        saw_value: Vec<bool>,
    },
    MinMax {
        f: AggregateFunction,
        values: Vec<Option<Value>>,
    },
    Avg {
        f: AggregateFunction,
        sums: Vec<f64>,
        counts: Vec<i64>,
    },
    Moments {
        f: AggregateFunction,
        counts: Vec<i64>,
        means: Vec<f64>,
        m2s: Vec<f64>,
    },
    Distinct {
        f: AggregateFunction,
        sets: Vec<HashSet<Value>>,
    },
}

impl GroupedAccumulator {
    fn function(&self) -> AggregateFunction {
        match self {
            GroupedAccumulator::Count { f, .. }
            | GroupedAccumulator::Sum { f, .. }
            | GroupedAccumulator::MinMax { f, .. }
            | GroupedAccumulator::Avg { f, .. }
            | GroupedAccumulator::Moments { f, .. }
            | GroupedAccumulator::Distinct { f, .. } => *f,
        }
    }

    /// Number of groups currently tracked.
    pub fn group_count(&self) -> usize {
        match self {
            GroupedAccumulator::Count { counts, .. } => counts.len(),
            GroupedAccumulator::Sum { sums, .. } => sums.len(),
            GroupedAccumulator::MinMax { values, .. } => values.len(),
            GroupedAccumulator::Avg { counts, .. } => counts.len(),
            GroupedAccumulator::Moments { counts, .. } => counts.len(),
            GroupedAccumulator::Distinct { sets, .. } => sets.len(),
        }
    }

    /// Approximate retained bytes, for memory accounting. User memory per
    /// §IV-F2: proportional to group cardinality.
    pub fn size_in_bytes(&self) -> usize {
        match self {
            GroupedAccumulator::Count { counts, .. } => counts.len() * 8,
            GroupedAccumulator::Sum { sums, .. } => sums.len() * 9,
            GroupedAccumulator::MinMax { values, .. } => values.len() * 32,
            GroupedAccumulator::Avg { counts, .. } => counts.len() * 16,
            GroupedAccumulator::Moments { counts, .. } => counts.len() * 24,
            GroupedAccumulator::Distinct { sets, .. } => {
                sets.iter().map(|s| 32 + s.len() * 32).sum()
            }
        }
    }

    /// Ensure at least `n` groups exist (used for global aggregations over
    /// empty input: COUNT(*) = 0, SUM = NULL).
    pub fn ensure_group_count(&mut self, n: usize) {
        self.ensure_groups(n);
    }

    fn ensure_groups(&mut self, n: usize) {
        match self {
            GroupedAccumulator::Count { counts, .. } => counts.resize(n, 0),
            GroupedAccumulator::Sum {
                sums, saw_value, ..
            } => {
                sums.resize(n, 0.0);
                saw_value.resize(n, false);
            }
            GroupedAccumulator::MinMax { values, .. } => values.resize(n, None),
            GroupedAccumulator::Avg { sums, counts, .. } => {
                sums.resize(n, 0.0);
                counts.resize(n, 0);
            }
            GroupedAccumulator::Moments {
                counts, means, m2s, ..
            } => {
                counts.resize(n, 0);
                means.resize(n, 0.0);
                m2s.resize(n, 0.0);
            }
            GroupedAccumulator::Distinct { sets, .. } => sets.resize_with(n, HashSet::new),
        }
    }

    /// Accumulate raw input rows. `input` is the argument block (`None` for
    /// `COUNT(*)`), `group_ids[i]` assigns row `i` to a group, and
    /// `max_group + 1` is the group-count watermark.
    pub fn add_input(&mut self, input: Option<&Block>, group_ids: &[u32], max_group: u32) {
        self.ensure_groups(max_group as usize + 1);
        let f = self.function();
        match self {
            GroupedAccumulator::Count { counts, .. } => match (f.kind, input) {
                (AggregateKind::Count, _) => {
                    for &g in group_ids {
                        counts[g as usize] += 1;
                    }
                }
                (_, Some(block)) => {
                    for (i, &g) in group_ids.iter().enumerate() {
                        if !block.is_null(i) {
                            counts[g as usize] += 1;
                        }
                    }
                }
                _ => unreachable!("COUNT(x) requires input"),
            },
            GroupedAccumulator::Sum {
                sums, saw_value, ..
            } => {
                let block = input.expect("sum input");
                let as_double = f.input_type == Some(DataType::Double);
                for (i, &g) in group_ids.iter().enumerate() {
                    if block.is_null(i) {
                        continue;
                    }
                    let v = if as_double {
                        block.f64_at(i)
                    } else {
                        block.i64_at(i) as f64
                    };
                    sums[g as usize] += v;
                    saw_value[g as usize] = true;
                }
            }
            GroupedAccumulator::MinMax { values, .. } => {
                let block = input.expect("min/max input");
                let t = f.input_type.expect("non-count aggregate carries an input type");
                let want_max = f.kind == AggregateKind::Max;
                for (i, &g) in group_ids.iter().enumerate() {
                    if block.is_null(i) {
                        continue;
                    }
                    let v = block.value_at(t, i);
                    let slot = &mut values[g as usize];
                    let replace = match slot {
                        None => true,
                        Some(cur) => match v.sql_cmp(cur) {
                            Some(std::cmp::Ordering::Greater) => want_max,
                            Some(std::cmp::Ordering::Less) => !want_max,
                            _ => false,
                        },
                    };
                    if replace {
                        *slot = Some(v);
                    }
                }
            }
            GroupedAccumulator::Avg { sums, counts, .. } => {
                let block = input.expect("avg input");
                let as_double = f.input_type == Some(DataType::Double);
                for (i, &g) in group_ids.iter().enumerate() {
                    if block.is_null(i) {
                        continue;
                    }
                    let v = if as_double {
                        block.f64_at(i)
                    } else {
                        block.i64_at(i) as f64
                    };
                    sums[g as usize] += v;
                    counts[g as usize] += 1;
                }
            }
            GroupedAccumulator::Moments {
                counts, means, m2s, ..
            } => {
                let block = input.expect("moments input");
                let as_double = f.input_type == Some(DataType::Double);
                for (i, &g) in group_ids.iter().enumerate() {
                    if block.is_null(i) {
                        continue;
                    }
                    let v = if as_double {
                        block.f64_at(i)
                    } else {
                        block.i64_at(i) as f64
                    };
                    // Welford's online update.
                    let g = g as usize;
                    counts[g] += 1;
                    let delta = v - means[g];
                    means[g] += delta / counts[g] as f64;
                    m2s[g] += delta * (v - means[g]);
                }
            }
            GroupedAccumulator::Distinct { sets, .. } => {
                let block = input.expect("count distinct input");
                let t = f.input_type.expect("non-count aggregate carries an input type");
                for (i, &g) in group_ids.iter().enumerate() {
                    if !block.is_null(i) {
                        sets[g as usize].insert(block.value_at(t, i));
                    }
                }
            }
        }
    }

    /// Merge intermediate state produced by [`GroupedAccumulator::write_intermediate`].
    pub fn add_intermediate(&mut self, blocks: &[Block], group_ids: &[u32], max_group: u32) {
        // Min/max intermediates use the input representation verbatim.
        if let GroupedAccumulator::MinMax { .. } = self {
            return self.add_input(Some(&blocks[0]), group_ids, max_group);
        }
        self.ensure_groups(max_group as usize + 1);
        let f = self.function();
        match self {
            GroupedAccumulator::Count { counts, .. } => {
                let b = &blocks[0];
                for (i, &g) in group_ids.iter().enumerate() {
                    counts[g as usize] += b.i64_at(i);
                }
            }
            GroupedAccumulator::Sum {
                sums, saw_value, ..
            } => {
                let b = &blocks[0];
                let as_double = f.input_type == Some(DataType::Double);
                for (i, &g) in group_ids.iter().enumerate() {
                    if b.is_null(i) {
                        continue;
                    }
                    let v = if as_double {
                        b.f64_at(i)
                    } else {
                        b.i64_at(i) as f64
                    };
                    sums[g as usize] += v;
                    saw_value[g as usize] = true;
                }
            }
            GroupedAccumulator::MinMax { .. } => unreachable!("handled above"),
            GroupedAccumulator::Avg { sums, counts, .. } => {
                let (s, c) = (&blocks[0], &blocks[1]);
                for (i, &g) in group_ids.iter().enumerate() {
                    sums[g as usize] += s.f64_at(i);
                    counts[g as usize] += c.i64_at(i);
                }
            }
            GroupedAccumulator::Moments {
                counts, means, m2s, ..
            } => {
                let (cb, mb, m2b) = (&blocks[0], &blocks[1], &blocks[2]);
                for (i, &g) in group_ids.iter().enumerate() {
                    // Chan et al. parallel merge of (count, mean, M2).
                    let g = g as usize;
                    let (n1, n2) = (counts[g] as f64, cb.i64_at(i) as f64);
                    if n2 == 0.0 {
                        continue;
                    }
                    let delta = mb.f64_at(i) - means[g];
                    let n = n1 + n2;
                    means[g] += delta * n2 / n;
                    m2s[g] += m2b.f64_at(i) + delta * delta * n1 * n2 / n;
                    counts[g] = n as i64;
                }
            }
            GroupedAccumulator::Distinct { .. } => {
                unreachable!("count_distinct has no intermediate phase")
            }
        }
    }

    /// Emit intermediate state columns for groups `0..group_count`.
    pub fn write_intermediate(&self) -> Vec<Block> {
        let f = self.function();
        let n = self.group_count();
        match self {
            GroupedAccumulator::Count { counts, .. } => {
                vec![Block::from(presto_page::blocks::LongBlock::from_values(
                    counts.clone(),
                ))]
            }
            GroupedAccumulator::Sum {
                sums, saw_value, ..
            } => {
                let mut b = BlockBuilder::with_capacity(f.input_type.expect("non-count aggregate carries an input type"), n);
                for g in 0..n {
                    if !saw_value[g] {
                        b.push_null();
                    } else if f.input_type == Some(DataType::Double) {
                        b.push_f64(sums[g]);
                    } else {
                        b.push_i64(sums[g] as i64);
                    }
                }
                vec![b.finish()]
            }
            GroupedAccumulator::MinMax { values, .. } => {
                let mut b = BlockBuilder::with_capacity(f.input_type.expect("non-count aggregate carries an input type"), n);
                for v in values {
                    match v {
                        Some(v) => b.push_value(v),
                        None => b.push_null(),
                    }
                }
                vec![b.finish()]
            }
            GroupedAccumulator::Avg { sums, counts, .. } => vec![
                Block::from(presto_page::blocks::DoubleBlock::from_values(sums.clone())),
                Block::from(presto_page::blocks::LongBlock::from_values(counts.clone())),
            ],
            GroupedAccumulator::Moments {
                counts, means, m2s, ..
            } => vec![
                Block::from(presto_page::blocks::LongBlock::from_values(counts.clone())),
                Block::from(presto_page::blocks::DoubleBlock::from_values(means.clone())),
                Block::from(presto_page::blocks::DoubleBlock::from_values(m2s.clone())),
            ],
            GroupedAccumulator::Distinct { .. } => {
                unreachable!("count_distinct has no intermediate phase")
            }
        }
    }

    /// Emit final output values for groups `0..group_count`.
    pub fn write_final(&self) -> Block {
        let f = self.function();
        let n = self.group_count();
        let mut out = BlockBuilder::with_capacity(f.output_type(), n);
        match self {
            GroupedAccumulator::Count { counts, .. } => {
                for &c in counts {
                    out.push_i64(c);
                }
            }
            GroupedAccumulator::Sum {
                sums, saw_value, ..
            } => {
                for g in 0..n {
                    if !saw_value[g] {
                        out.push_null();
                    } else if f.input_type == Some(DataType::Double) {
                        out.push_f64(sums[g]);
                    } else {
                        out.push_i64(sums[g] as i64);
                    }
                }
            }
            GroupedAccumulator::MinMax { values, .. } => {
                for v in values {
                    match v {
                        Some(v) => out.push_value(v),
                        None => out.push_null(),
                    }
                }
            }
            GroupedAccumulator::Avg { sums, counts, .. } => {
                for g in 0..n {
                    if counts[g] == 0 {
                        out.push_null();
                    } else {
                        out.push_f64(sums[g] / counts[g] as f64);
                    }
                }
            }
            GroupedAccumulator::Moments { counts, m2s, .. } => {
                use AggregateKind::*;
                for g in 0..n {
                    let c = counts[g];
                    let value = match f.kind {
                        VarPop if c >= 1 => Some(m2s[g] / c as f64),
                        VarSamp if c >= 2 => Some(m2s[g] / (c - 1) as f64),
                        StddevPop if c >= 1 => Some((m2s[g] / c as f64).sqrt()),
                        StddevSamp if c >= 2 => Some((m2s[g] / (c - 1) as f64).sqrt()),
                        _ => None,
                    };
                    match value {
                        Some(v) => out.push_f64(v),
                        None => out.push_null(),
                    }
                }
            }
            GroupedAccumulator::Distinct { sets, .. } => {
                for s in sets {
                    out.push_i64(s.len() as i64);
                }
            }
        }
        out.finish()
    }
}

/// Convenience: run a single-group (global) aggregation over a page column,
/// used by tests and the scalar-aggregation path.
pub fn aggregate_single(function: AggregateFunction, input: Option<&Block>, rows: usize) -> Value {
    let mut acc = function.create_accumulator();
    let group_ids = vec![0u32; rows];
    acc.add_input(input, &group_ids, 0);
    let out = acc.write_final();
    out.value_at(function.output_type(), 0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_page::blocks::LongBlock;

    fn bigints(vals: &[Option<i64>]) -> Block {
        Block::from_values(
            DataType::Bigint,
            &vals
                .iter()
                .map(|v| v.map(Value::Bigint).unwrap_or(Value::Null))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn count_variants() {
        let block = bigints(&[Some(1), None, Some(3)]);
        let star = AggregateFunction::new(AggregateKind::Count, None).unwrap();
        assert_eq!(aggregate_single(star, None, 3), Value::Bigint(3));
        let non_null =
            AggregateFunction::new(AggregateKind::CountNonNull, Some(DataType::Bigint)).unwrap();
        assert_eq!(
            aggregate_single(non_null, Some(&block), 3),
            Value::Bigint(2)
        );
    }

    #[test]
    fn sum_empty_group_is_null() {
        let f = AggregateFunction::new(AggregateKind::Sum, Some(DataType::Bigint)).unwrap();
        let block = bigints(&[None, None]);
        assert_eq!(aggregate_single(f, Some(&block), 2), Value::Null);
        let block = bigints(&[Some(2), Some(5)]);
        assert_eq!(aggregate_single(f, Some(&block), 2), Value::Bigint(7));
    }

    #[test]
    fn min_max_with_groups() {
        let f = AggregateFunction::new(AggregateKind::Max, Some(DataType::Bigint)).unwrap();
        let mut acc = f.create_accumulator();
        let block = Block::from(LongBlock::from_values(vec![5, 1, 9, 3]));
        acc.add_input(Some(&block), &[0, 1, 0, 1], 1);
        let out = acc.write_final();
        assert_eq!(out.i64_at(0), 9);
        assert_eq!(out.i64_at(1), 3);
    }

    #[test]
    fn avg_partial_final_equals_single_phase() {
        let f = AggregateFunction::new(AggregateKind::Avg, Some(DataType::Bigint)).unwrap();
        // Partial 1 sees [1, 2]; partial 2 sees [3].
        let mut p1 = f.create_accumulator();
        p1.add_input(
            Some(&Block::from(LongBlock::from_values(vec![1, 2]))),
            &[0, 0],
            0,
        );
        let mut p2 = f.create_accumulator();
        p2.add_input(Some(&Block::from(LongBlock::from_values(vec![3]))), &[0], 0);
        // Final merges both intermediates.
        let mut fin = f.create_accumulator();
        fin.add_intermediate(&p1.write_intermediate(), &[0], 0);
        fin.add_intermediate(&p2.write_intermediate(), &[0], 0);
        assert_eq!(fin.write_final().f64_at(0), 2.0);
    }

    #[test]
    fn stddev_merge_matches_single_pass() {
        let data: Vec<i64> = vec![2, 4, 4, 4, 5, 5, 7, 9];
        let f = AggregateFunction::new(AggregateKind::StddevPop, Some(DataType::Bigint)).unwrap();
        // Single phase.
        let block = Block::from(LongBlock::from_values(data.clone()));
        let single = aggregate_single(f, Some(&block), data.len());
        // Two partials split 3/5.
        let mut p1 = f.create_accumulator();
        p1.add_input(
            Some(&Block::from(LongBlock::from_values(data[..3].to_vec()))),
            &[0; 3],
            0,
        );
        let mut p2 = f.create_accumulator();
        p2.add_input(
            Some(&Block::from(LongBlock::from_values(data[3..].to_vec()))),
            &[0; 5],
            0,
        );
        let mut fin = f.create_accumulator();
        fin.add_intermediate(&p1.write_intermediate(), &[0], 0);
        fin.add_intermediate(&p2.write_intermediate(), &[0], 0);
        let merged = fin.write_final().f64_at(0);
        // Known value: stddev_pop of this set is exactly 2.
        assert!((merged - 2.0).abs() < 1e-9);
        assert_eq!(single, Value::Double(merged));
    }

    #[test]
    fn count_distinct() {
        let f =
            AggregateFunction::new(AggregateKind::CountDistinct, Some(DataType::Bigint)).unwrap();
        assert!(!f.kind.supports_partial());
        let block = bigints(&[Some(1), Some(1), Some(2), None]);
        assert_eq!(aggregate_single(f, Some(&block), 4), Value::Bigint(2));
    }

    #[test]
    fn resolve_names() {
        assert_eq!(
            AggregateKind::resolve("SUM", true, false).unwrap(),
            AggregateKind::Sum
        );
        assert_eq!(
            AggregateKind::resolve("count", false, false).unwrap(),
            AggregateKind::Count
        );
        assert_eq!(
            AggregateKind::resolve("count", true, true).unwrap(),
            AggregateKind::CountDistinct
        );
        assert!(AggregateKind::resolve("sum", true, true).is_err());
        assert!(AggregateKind::resolve("median", true, false).is_err());
    }

    #[test]
    fn type_checking() {
        assert!(AggregateFunction::new(AggregateKind::Sum, Some(DataType::Varchar)).is_err());
        assert!(AggregateFunction::new(AggregateKind::Min, Some(DataType::Varchar)).is_ok());
        assert!(AggregateFunction::new(AggregateKind::CountNonNull, None).is_err());
    }
}
