//! The page processor: fused filter + projections with §V-E compressed-data
//! processing.
//!
//! "When a page processor evaluating a transformation or filter encounters a
//! dictionary block, it processes all of the values in the dictionary (or
//! the single value in a run-length-encoded block) … The page processor
//! keeps track of the number of real rows produced and the size of the
//! dictionary, which helps measure the effectiveness of processing the
//! dictionary as compared to processing all of the indices."

use presto_common::{DataType, Result, Session};
use presto_page::blocks::DictionaryBlock;
use presto_page::{Block, Page};
use std::sync::Arc;

use crate::compiled::CompiledExpr;
use crate::expr::Expr;
use crate::interpreter::evaluate_row;

/// Counters exposed for tests and the §V-E benchmark.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProcessorStats {
    /// Projections evaluated via the dictionary fast path.
    pub dictionary_projections: usize,
    /// Projections evaluated via the RLE fast path.
    pub rle_projections: usize,
    /// Projections evaluated position-by-position.
    pub flat_projections: usize,
    /// Rows produced so far.
    pub rows_produced: u64,
    /// Dictionary entries processed so far.
    pub dict_entries_processed: u64,
}

/// A compiled filter + projection pipeline, page in / page out.
pub struct PageProcessor {
    filter: Option<CompiledExpr>,
    projections: Vec<Projection>,
    /// Whether dictionary/RLE-aware processing is enabled (§V-E;
    /// the `compressed` bench disables it for the baseline).
    process_compressed: bool,
    /// Speculation state per the paper's heuristic.
    speculate: bool,
    /// When the session disables compiled expressions (§V-B ablation),
    /// fall back to the row interpreter using these originals.
    interpreted: Option<(Option<Expr>, Vec<Expr>)>,
    /// Selection buffer reused across pages (one allocation per split
    /// instead of one per page).
    sel_buf: Vec<u32>,
    stats: ProcessorStats,
}

struct Projection {
    compiled: CompiledExpr,
    /// When the projection reads exactly one input column it is eligible for
    /// the dictionary/RLE fast path; this is that column's index.
    single_input: Option<usize>,
    /// The same expression remapped so its single input is channel 0 — the
    /// form evaluated against a bare dictionary.
    on_channel_zero: Option<CompiledExpr>,
}

impl PageProcessor {
    /// Build from optional filter and projection expressions. Expressions
    /// are compiled once per task, like the paper's per-task bytecode
    /// classes (§V-B3).
    pub fn new(filter: Option<&Expr>, projections: &[Expr], session: &Session) -> PageProcessor {
        PageProcessor {
            filter: filter.map(CompiledExpr::compile),
            projections: projections
                .iter()
                .map(|e| {
                    let cols = e.referenced_columns();
                    let single_input = match cols.as_slice() {
                        [only] => Some(*only),
                        _ => None,
                    };
                    let on_channel_zero =
                        single_input.map(|_| CompiledExpr::compile(&e.remap_columns(&|_| 0)));
                    Projection {
                        compiled: CompiledExpr::compile(e),
                        single_input,
                        on_channel_zero,
                    }
                })
                .collect(),
            process_compressed: session.process_compressed,
            speculate: true,
            interpreted: (!session.compiled_expressions)
                .then(|| (filter.cloned(), projections.to_vec())),
            sel_buf: Vec::new(),
            stats: ProcessorStats::default(),
        }
    }

    /// Output column types.
    pub fn output_types(&self) -> Vec<DataType> {
        self.projections
            .iter()
            .map(|p| p.compiled.data_type())
            .collect()
    }

    pub fn stats(&self) -> ProcessorStats {
        self.stats
    }

    /// Process one page: filter, then project.
    pub fn process(&mut self, page: &Page) -> Result<Page> {
        if let Some((filter, projections)) = &self.interpreted {
            let out = process_interpreted(filter.as_ref(), projections, page)?;
            self.stats.rows_produced += out.row_count() as u64;
            self.stats.flat_projections += projections.len();
            return Ok(out);
        }
        let filtered_storage;
        let filtered = match &self.filter {
            Some(f) => {
                f.eval_selection_into(page, &mut self.sel_buf)?;
                if self.sel_buf.len() == page.row_count() {
                    page
                } else {
                    filtered_storage = page.filter(&self.sel_buf);
                    &filtered_storage
                }
            }
            None => page,
        };
        let rows = filtered.row_count();
        if rows == 0 {
            return Ok(Page::empty());
        }
        if self.projections.is_empty() {
            // Cardinality-only output (COUNT(*)-style plans).
            self.stats.rows_produced += rows as u64;
            return Ok(Page::zero_column(rows));
        }
        let mut out = Vec::with_capacity(self.projections.len());
        // Split borrows: iterate indices so stats can update.
        for idx in 0..self.projections.len() {
            let block = self.project_one(idx, filtered)?;
            out.push(block);
        }
        self.stats.rows_produced += rows as u64;
        // Heuristic from the paper: speculation stays on while processing
        // dictionaries has produced more rows than dictionary entries.
        self.speculate = self.stats.dict_entries_processed <= self.stats.rows_produced;
        Ok(Page::new(out))
    }

    fn project_one(&mut self, idx: usize, page: &Page) -> Result<Block> {
        let rows = page.row_count();
        let p = &self.projections[idx];
        if self.process_compressed {
            if let (Some(col), Some(zero_expr)) = (p.single_input, &p.on_channel_zero) {
                match page.block(col).loaded() {
                    Block::Rle(rle) => {
                        // Evaluate once on the single value; re-wrap as RLE.
                        let single = Page::new(vec![rle.value.as_ref().clone()]);
                        let result = zero_expr.eval(&single)?;
                        self.stats.rle_projections += 1;
                        return Ok(Block::rle(result, rows));
                    }
                    Block::Dictionary(d) if self.speculate || d.dictionary.len() <= rows => {
                        // Evaluate once per distinct entry; re-use the ids.
                        let dict_page = Page::new(vec![d.dictionary.as_ref().clone()]);
                        let result = zero_expr.eval(&dict_page)?;
                        self.stats.dictionary_projections += 1;
                        self.stats.dict_entries_processed += d.dictionary.len() as u64;
                        return Ok(Block::Dictionary(DictionaryBlock::new(
                            Arc::new(result),
                            d.ids.clone(),
                        )));
                    }
                    _ => {}
                }
            }
        }
        self.stats.flat_projections += 1;
        self.projections[idx].compiled.eval(page)
    }
}

/// Reference (interpreted) filter + project used by the §V-B benchmark and
/// for differential testing: identical semantics, row-at-a-time execution.
pub fn process_interpreted(
    filter: Option<&Expr>,
    projections: &[Expr],
    page: &Page,
) -> Result<Page> {
    use presto_page::BlockBuilder;
    let mut builders: Vec<BlockBuilder> = projections
        .iter()
        .map(|e| BlockBuilder::new(e.data_type()))
        .collect();
    let mut rows = 0usize;
    for i in 0..page.row_count() {
        if let Some(f) = filter {
            match evaluate_row(f, page, i)? {
                presto_common::Value::Boolean(true) => {}
                _ => continue,
            }
        }
        rows += 1;
        for (e, b) in projections.iter().zip(&mut builders) {
            b.push_value(&evaluate_row(e, page, i)?);
        }
    }
    if builders.is_empty() {
        return Ok(Page::zero_column(rows));
    }
    Ok(Page::new(
        builders.into_iter().map(BlockBuilder::finish).collect(),
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use presto_common::{Schema, Value};
    use presto_page::blocks::{LazyBlock, LongBlock, VarcharBlock};

    fn session() -> Session {
        Session::default()
    }

    #[test]
    fn filter_and_project() {
        let schema = Schema::of(&[("a", DataType::Bigint), ("b", DataType::Bigint)]);
        let page = Page::from_rows(
            &schema,
            &[
                vec![Value::Bigint(1), Value::Bigint(10)],
                vec![Value::Bigint(2), Value::Bigint(20)],
                vec![Value::Bigint(3), Value::Bigint(30)],
            ],
        );
        let filter = Expr::cmp(
            CmpOp::Gt,
            Expr::column(0, DataType::Bigint),
            Expr::literal(1i64),
        );
        let proj = vec![Expr::column(1, DataType::Bigint)];
        let mut p = PageProcessor::new(Some(&filter), &proj, &session());
        let out = p.process(&page).unwrap();
        assert_eq!(out.row_count(), 2);
        assert_eq!(out.block(0).i64_at(0), 20);
        // Same result interpreted.
        let ref_out = process_interpreted(Some(&filter), &proj, &page).unwrap();
        assert_eq!(
            ref_out.to_rows(&Schema::of(&[("b", DataType::Bigint)])),
            out.to_rows(&Schema::of(&[("b", DataType::Bigint)]))
        );
    }

    #[test]
    fn dictionary_projection_fast_path() {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["in person", "cod"])));
        let ids: Vec<u32> = (0..100).map(|i| i % 2).collect();
        let page = Page::new(vec![Block::Dictionary(DictionaryBlock::new(dict, ids))]);
        let (f, t) = crate::functions::ScalarFn::resolve("upper", &[DataType::Varchar]).unwrap();
        let proj = vec![Expr::Call {
            function: f,
            args: vec![Expr::column(0, DataType::Varchar)],
            data_type: t,
        }];
        let mut p = PageProcessor::new(None, &proj, &session());
        let out = p.process(&page).unwrap();
        assert!(
            matches!(out.block(0), Block::Dictionary(_)),
            "output stays dictionary-encoded"
        );
        assert_eq!(out.block(0).str_at(0), "IN PERSON");
        assert_eq!(out.block(0).str_at(1), "COD");
        let stats = p.stats();
        assert_eq!(stats.dictionary_projections, 1);
        // Only 2 entries were processed for 100 rows.
        assert_eq!(stats.dict_entries_processed, 2);
    }

    #[test]
    fn rle_projection_fast_path() {
        let page = Page::new(vec![Block::rle(
            Block::from(LongBlock::from_values(vec![21])),
            50,
        )]);
        let proj = vec![Expr::arith(
            crate::expr::ArithOp::Mul,
            Expr::column(0, DataType::Bigint),
            Expr::literal(2i64),
        )];
        let mut p = PageProcessor::new(None, &proj, &session());
        let out = p.process(&page).unwrap();
        assert!(matches!(out.block(0), Block::Rle(_)));
        assert_eq!(out.block(0).i64_at(49), 42);
        assert_eq!(p.stats().rle_projections, 1);
    }

    #[test]
    fn compressed_processing_can_be_disabled() {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["x"])));
        let page = Page::new(vec![Block::Dictionary(DictionaryBlock::new(
            dict,
            vec![0, 0, 0],
        ))]);
        let proj = vec![Expr::column(0, DataType::Varchar)];
        let mut session = session();
        session.process_compressed = false;
        let mut p = PageProcessor::new(None, &proj, &session);
        p.process(&page).unwrap();
        assert_eq!(p.stats().dictionary_projections, 0);
        assert_eq!(p.stats().flat_projections, 1);
    }

    #[test]
    fn selective_filter_keeps_unreferenced_lazy_column_unloaded() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let loads = Arc::new(AtomicUsize::new(0));
        let loads2 = Arc::clone(&loads);
        let lazy = Block::Lazy(LazyBlock::new(3, move || {
            loads2.fetch_add(1, Ordering::SeqCst);
            Block::from(LongBlock::from_values(vec![7, 8, 9]))
        }));
        let page = Page::new(vec![
            Block::from(LongBlock::from_values(vec![1, 2, 3])),
            lazy,
        ]);
        // Filter on column 0 selects nothing; lazy column 1 never loads.
        let filter = Expr::cmp(
            CmpOp::Gt,
            Expr::column(0, DataType::Bigint),
            Expr::literal(100i64),
        );
        let proj = vec![Expr::column(1, DataType::Bigint)];
        let mut p = PageProcessor::new(Some(&filter), &proj, &session());
        let out = p.process(&page).unwrap();
        assert_eq!(out.row_count(), 0);
        assert_eq!(loads.load(Ordering::SeqCst), 0, "lazy column must not load");
    }

    #[test]
    fn speculation_heuristic_tracks_effectiveness() {
        // A dictionary larger than the data: after processing it once, the
        // processor should stop speculating.
        let entries: Vec<String> = (0..1000).map(|i| format!("v{i}")).collect();
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&entries)));
        let page = Page::new(vec![Block::Dictionary(DictionaryBlock::new(
            dict,
            vec![1, 2],
        ))]);
        let proj = vec![Expr::column(0, DataType::Varchar)];
        let mut p = PageProcessor::new(None, &proj, &session());
        p.process(&page).unwrap();
        // 1000 entries processed for 2 rows → speculation off.
        assert!(!p.speculate);
        p.process(&page).unwrap();
        // Second page is processed flat (dict len 1000 > rows 2).
        assert_eq!(p.stats().flat_projections, 1);
    }
}
