//! Window function definitions.
//!
//! The Developer/Advertiser Analytics use case (§II-D) relies on window
//! functions ("Most query shapes contain joins, aggregations or window
//! functions"). We implement the ranking family plus aggregate-over-window
//! with the standard default frame (range between unbounded preceding and
//! current row). Evaluation lives in the window operator in `presto-exec`;
//! this module defines signatures and per-partition computation.

use presto_common::{DataType, PrestoError, Result};
use presto_page::{Block, BlockBuilder};

use crate::agg::{AggregateFunction, AggregateKind};

/// A resolved window function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowFunction {
    RowNumber,
    Rank,
    DenseRank,
    /// An aggregate evaluated cumulatively over the default frame.
    Aggregate(AggregateFunction),
}

impl WindowFunction {
    /// Resolve by SQL name; aggregates fall through to the aggregate registry.
    pub fn resolve(name: &str, arg_type: Option<DataType>) -> Result<WindowFunction> {
        match name.to_ascii_lowercase().as_str() {
            "row_number" => Ok(WindowFunction::RowNumber),
            "rank" => Ok(WindowFunction::Rank),
            "dense_rank" => Ok(WindowFunction::DenseRank),
            other => {
                let kind = AggregateKind::resolve(other, arg_type.is_some(), false)?;
                Ok(WindowFunction::Aggregate(AggregateFunction::new(
                    kind, arg_type,
                )?))
            }
        }
    }

    pub fn output_type(&self) -> DataType {
        match self {
            WindowFunction::RowNumber | WindowFunction::Rank | WindowFunction::DenseRank => {
                DataType::Bigint
            }
            WindowFunction::Aggregate(f) => f.output_type(),
        }
    }

    /// Whether the function needs an ORDER BY to be meaningful. Ranking
    /// functions without ORDER BY are a user error in the analyzer.
    pub fn requires_order(&self) -> bool {
        matches!(self, WindowFunction::Rank | WindowFunction::DenseRank)
    }

    /// Evaluate this function over one partition.
    ///
    /// `rows` are partition-local row indices of the *sorted* partition in
    /// the source page; `peer_groups[i]` is the index of the ORDER BY peer
    /// group row `i` belongs to (rows with equal sort keys are peers);
    /// `input` is the argument column for aggregates.
    pub fn evaluate_partition(
        &self,
        rows: usize,
        peer_groups: &[u32],
        input: Option<&Block>,
    ) -> Result<Block> {
        if peer_groups.len() != rows {
            return Err(PrestoError::internal(
                "window: peer group vector length mismatch",
            ));
        }
        let mut out = BlockBuilder::with_capacity(self.output_type(), rows);
        match self {
            WindowFunction::RowNumber => {
                for i in 0..rows {
                    out.push_i64(i as i64 + 1);
                }
            }
            WindowFunction::Rank => {
                // Rank = 1 + number of rows strictly before this peer group.
                let mut rank = 1i64;
                let mut group_start = 0usize;
                for i in 0..rows {
                    if i > 0 && peer_groups[i] != peer_groups[i - 1] {
                        rank += (i - group_start) as i64;
                        group_start = i;
                    }
                    out.push_i64(rank);
                }
            }
            WindowFunction::DenseRank => {
                let mut rank = 0i64;
                for i in 0..rows {
                    if i == 0 || peer_groups[i] != peer_groups[i - 1] {
                        rank += 1;
                    }
                    out.push_i64(rank);
                }
            }
            WindowFunction::Aggregate(f) => {
                // Default frame: cumulative up to the end of the current peer
                // group. Compute per-peer-group prefixes by accumulating rows
                // group by group and emitting the running result.
                let mut acc = f.create_accumulator();
                let mut i = 0usize;
                let mut results: Vec<(usize, usize)> = Vec::new(); // (start, end) of group
                while i < rows {
                    let mut j = i;
                    while j < rows && peer_groups[j] == peer_groups[i] {
                        j += 1;
                    }
                    results.push((i, j));
                    i = j;
                }
                for &(start, end) in &results {
                    // Add this group's rows to the running accumulator...
                    let ids: Vec<u32> = vec![0; end - start];
                    match input {
                        Some(block) => {
                            let positions: Vec<u32> = (start as u32..end as u32).collect();
                            let slice = block.filter(&positions);
                            acc.add_input(Some(&slice), &ids, 0);
                        }
                        None => acc.add_input(None, &ids, 0),
                    }
                    // ...then every row in the group sees the cumulative value.
                    let value_block = acc.write_final();
                    for _ in start..end {
                        out.append_from(&value_block, 0);
                    }
                }
            }
        }
        Ok(out.finish())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_page::blocks::LongBlock;

    #[test]
    fn resolve_names() {
        assert_eq!(
            WindowFunction::resolve("ROW_NUMBER", None).unwrap(),
            WindowFunction::RowNumber
        );
        assert!(matches!(
            WindowFunction::resolve("sum", Some(DataType::Bigint)).unwrap(),
            WindowFunction::Aggregate(_)
        ));
        assert!(WindowFunction::resolve("no_such", None).is_err());
    }

    #[test]
    fn ranking_functions() {
        // Sorted partition with peer groups: [a, a, b, c, c, c]
        let peers = vec![0, 0, 1, 2, 2, 2];
        let rn = WindowFunction::RowNumber
            .evaluate_partition(6, &peers, None)
            .unwrap();
        assert_eq!(
            (0..6).map(|i| rn.i64_at(i)).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6]
        );
        let rank = WindowFunction::Rank
            .evaluate_partition(6, &peers, None)
            .unwrap();
        assert_eq!(
            (0..6).map(|i| rank.i64_at(i)).collect::<Vec<_>>(),
            vec![1, 1, 3, 4, 4, 4]
        );
        let dense = WindowFunction::DenseRank
            .evaluate_partition(6, &peers, None)
            .unwrap();
        assert_eq!(
            (0..6).map(|i| dense.i64_at(i)).collect::<Vec<_>>(),
            vec![1, 1, 2, 3, 3, 3]
        );
    }

    #[test]
    fn cumulative_sum_respects_peer_groups() {
        let f = AggregateFunction::new(AggregateKind::Sum, Some(DataType::Bigint)).unwrap();
        let w = WindowFunction::Aggregate(f);
        let input = Block::from(LongBlock::from_values(vec![10, 20, 30, 40]));
        // Two middle rows are peers: they share the cumulative value.
        let peers = vec![0, 1, 1, 2];
        let out = w.evaluate_partition(4, &peers, Some(&input)).unwrap();
        assert_eq!(
            (0..4).map(|i| out.i64_at(i)).collect::<Vec<_>>(),
            vec![10, 60, 60, 100]
        );
    }

    #[test]
    fn row_number_needs_no_order() {
        assert!(!WindowFunction::RowNumber.requires_order());
        assert!(WindowFunction::Rank.requires_order());
    }
}
