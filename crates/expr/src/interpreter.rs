//! The row-at-a-time expression interpreter.
//!
//! This is the reference implementation of expression semantics: simple,
//! obviously correct, and — exactly as §V-B says of Presto's interpreter —
//! "much too slow for production use evaluating billions of rows". The
//! compiled evaluator in [`crate::compiled`] must agree with it on every
//! input; the property tests in that module enforce the equivalence.

use presto_common::{DataType, PrestoError, Result, Value};
use presto_page::Page;

use crate::expr::{ArithOp, Expr};

/// Evaluate `expr` against row `row` of `page`.
pub fn evaluate_row(expr: &Expr, page: &Page, row: usize) -> Result<Value> {
    match expr {
        Expr::Column { index, data_type } => Ok(page.block(*index).value_at(*data_type, row)),
        Expr::Literal { value, .. } => Ok(value.clone()),
        Expr::Arith {
            op,
            left,
            right,
            data_type,
        } => {
            let l = evaluate_row(left, page, row)?;
            let r = evaluate_row(right, page, row)?;
            eval_arith(*op, &l, &r, *data_type)
        }
        Expr::Cmp { op, left, right } => {
            let l = evaluate_row(left, page, row)?;
            let r = evaluate_row(right, page, row)?;
            Ok(match l.sql_cmp(&r) {
                None => Value::Null,
                Some(ord) => Value::Boolean(op.matches(ord)),
            })
        }
        Expr::And(exprs) => {
            // Three-valued AND with short-circuit on FALSE.
            let mut saw_null = false;
            for e in exprs {
                match evaluate_row(e, page, row)? {
                    Value::Boolean(false) => return Ok(Value::Boolean(false)),
                    Value::Boolean(true) => {}
                    Value::Null => saw_null = true,
                    other => {
                        return Err(PrestoError::internal(format!(
                            "AND operand evaluated to non-boolean {other}"
                        )))
                    }
                }
            }
            Ok(if saw_null {
                Value::Null
            } else {
                Value::Boolean(true)
            })
        }
        Expr::Or(exprs) => {
            let mut saw_null = false;
            for e in exprs {
                match evaluate_row(e, page, row)? {
                    Value::Boolean(true) => return Ok(Value::Boolean(true)),
                    Value::Boolean(false) => {}
                    Value::Null => saw_null = true,
                    other => {
                        return Err(PrestoError::internal(format!(
                            "OR operand evaluated to non-boolean {other}"
                        )))
                    }
                }
            }
            Ok(if saw_null {
                Value::Null
            } else {
                Value::Boolean(false)
            })
        }
        Expr::Not(e) => Ok(match evaluate_row(e, page, row)? {
            Value::Boolean(b) => Value::Boolean(!b),
            Value::Null => Value::Null,
            other => {
                return Err(PrestoError::internal(format!(
                    "NOT operand evaluated to non-boolean {other}"
                )))
            }
        }),
        Expr::IsNull(e) => Ok(Value::Boolean(evaluate_row(e, page, row)?.is_null())),
        Expr::Case {
            branches,
            otherwise,
            ..
        } => {
            for (cond, result) in branches {
                if evaluate_row(cond, page, row)? == Value::Boolean(true) {
                    return evaluate_row(result, page, row);
                }
            }
            match otherwise {
                Some(e) => evaluate_row(e, page, row),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, data_type } => {
            let v = evaluate_row(expr, page, row)?;
            cast_value(&v, *data_type)
        }
        Expr::InList { expr, list } => {
            let v = evaluate_row(expr, page, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                match v.sql_cmp(item) {
                    Some(std::cmp::Ordering::Equal) => return Ok(Value::Boolean(true)),
                    Some(_) => {}
                    None => saw_null = true,
                }
            }
            Ok(if saw_null {
                Value::Null
            } else {
                Value::Boolean(false)
            })
        }
        Expr::Call { function, args, .. } => {
            let values: Result<Vec<Value>> =
                args.iter().map(|a| evaluate_row(a, page, row)).collect();
            function.eval(&values?)
        }
    }
}

/// Arithmetic with SQL semantics: NULL propagation, division-by-zero as a
/// user error, bigint overflow wrapping (matching the compiled kernels).
pub fn eval_arith(op: ArithOp, l: &Value, r: &Value, result: DataType) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match result {
        DataType::Bigint => {
            let (a, b) = (l.as_i64().expect("bigint operand"), r.as_i64().expect("bigint operand"));
            Ok(Value::Bigint(match op {
                ArithOp::Add => a.wrapping_add(b),
                ArithOp::Sub => a.wrapping_sub(b),
                ArithOp::Mul => a.wrapping_mul(b),
                ArithOp::Div => {
                    if b == 0 {
                        return Err(PrestoError::user("division by zero"));
                    }
                    a.wrapping_div(b)
                }
                ArithOp::Mod => {
                    if b == 0 {
                        return Err(PrestoError::user("division by zero"));
                    }
                    a.wrapping_rem(b)
                }
            }))
        }
        DataType::Double => {
            let (a, b) = (l.as_f64().expect("numeric operand"), r.as_f64().expect("numeric operand"));
            Ok(Value::Double(match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => a / b,
                ArithOp::Mod => a % b,
            }))
        }
        other => Err(PrestoError::internal(format!(
            "arithmetic with result type {other}"
        ))),
    }
}

/// Explicit CAST semantics.
pub fn cast_value(v: &Value, target: DataType) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    if v.data_type() == Some(target) {
        return Ok(v.clone());
    }
    match (v, target) {
        (Value::Bigint(x), DataType::Double) => Ok(Value::Double(*x as f64)),
        (Value::Double(x), DataType::Bigint) => {
            if x.is_finite() {
                Ok(Value::Bigint(*x as i64))
            } else {
                Err(PrestoError::user(format!("cannot cast {x} to bigint")))
            }
        }
        (Value::Boolean(b), DataType::Bigint) => Ok(Value::Bigint(*b as i64)),
        (Value::Bigint(x), DataType::Boolean) => Ok(Value::Boolean(*x != 0)),
        (Value::Varchar(s), DataType::Bigint) => s
            .trim()
            .parse::<i64>()
            .map(Value::Bigint)
            .map_err(|_| PrestoError::user(format!("cannot cast '{s}' to bigint"))),
        (Value::Varchar(s), DataType::Double) => s
            .trim()
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| PrestoError::user(format!("cannot cast '{s}' to double"))),
        (Value::Varchar(s), DataType::Boolean) => match s.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Ok(Value::Boolean(true)),
            "false" | "f" | "0" => Ok(Value::Boolean(false)),
            _ => Err(PrestoError::user(format!("cannot cast '{s}' to boolean"))),
        },
        (v, DataType::Varchar) => Ok(Value::varchar(v.to_string())),
        (Value::Date(d), DataType::Timestamp) => Ok(Value::Timestamp(d * 86_400_000)),
        (Value::Timestamp(ms), DataType::Date) => Ok(Value::Date(ms.div_euclid(86_400_000))),
        (Value::Bigint(x), DataType::Date) => Ok(Value::Date(*x)),
        (Value::Bigint(x), DataType::Timestamp) => Ok(Value::Timestamp(*x)),
        (Value::Date(d), DataType::Bigint) => Ok(Value::Bigint(*d)),
        (Value::Timestamp(ms), DataType::Bigint) => Ok(Value::Bigint(*ms)),
        (v, t) => Err(PrestoError::user(format!("cannot cast {v} to {t}"))),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use presto_common::Schema;
    use presto_page::Page;

    fn test_page() -> (Schema, Page) {
        let schema = Schema::of(&[
            ("a", DataType::Bigint),
            ("b", DataType::Double),
            ("s", DataType::Varchar),
        ]);
        let page = Page::from_rows(
            &schema,
            &[
                vec![Value::Bigint(10), Value::Double(0.5), Value::varchar("hi")],
                vec![Value::Null, Value::Double(2.0), Value::Null],
            ],
        );
        (schema, page)
    }

    #[test]
    fn column_and_literal() {
        let (_, page) = test_page();
        let e = Expr::column(0, DataType::Bigint);
        assert_eq!(evaluate_row(&e, &page, 0).unwrap(), Value::Bigint(10));
        assert_eq!(evaluate_row(&e, &page, 1).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let (_, page) = test_page();
        let null_cmp = Expr::cmp(
            CmpOp::Eq,
            Expr::column(0, DataType::Bigint),
            Expr::literal(1i64),
        );
        // row 1: a is NULL → comparison is NULL
        assert_eq!(evaluate_row(&null_cmp, &page, 1).unwrap(), Value::Null);
        // NULL AND FALSE = FALSE
        let e = Expr::and(vec![null_cmp.clone(), Expr::literal(false)]);
        assert_eq!(evaluate_row(&e, &page, 1).unwrap(), Value::Boolean(false));
        // NULL AND TRUE = NULL
        let e = Expr::and(vec![null_cmp.clone(), Expr::literal(true)]);
        assert_eq!(evaluate_row(&e, &page, 1).unwrap(), Value::Null);
        // NULL OR TRUE = TRUE
        let e = Expr::or(vec![null_cmp, Expr::literal(true)]);
        assert_eq!(evaluate_row(&e, &page, 1).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn division_by_zero_is_user_error() {
        let (_, page) = test_page();
        let e = Expr::arith(
            ArithOp::Div,
            Expr::column(0, DataType::Bigint),
            Expr::literal(0i64),
        );
        let err = evaluate_row(&e, &page, 0).unwrap_err();
        assert_eq!(err.code, presto_common::ErrorCode::User);
        // Double division by zero is IEEE infinity, not an error.
        let e = Expr::arith(
            ArithOp::Div,
            Expr::column(1, DataType::Double),
            Expr::literal(0.0f64),
        );
        assert_eq!(
            evaluate_row(&e, &page, 0).unwrap(),
            Value::Double(f64::INFINITY)
        );
    }

    #[test]
    fn case_expression() {
        let (_, page) = test_page();
        let e = Expr::Case {
            branches: vec![(
                Expr::cmp(
                    CmpOp::Gt,
                    Expr::column(0, DataType::Bigint),
                    Expr::literal(5i64),
                ),
                Expr::literal("big"),
            )],
            otherwise: Some(Box::new(Expr::literal("small"))),
            data_type: DataType::Varchar,
        };
        assert_eq!(evaluate_row(&e, &page, 0).unwrap(), Value::varchar("big"));
        // NULL condition falls through to ELSE.
        assert_eq!(evaluate_row(&e, &page, 1).unwrap(), Value::varchar("small"));
    }

    #[test]
    fn in_list_with_null_semantics() {
        let (_, page) = test_page();
        let e = Expr::InList {
            expr: Box::new(Expr::column(0, DataType::Bigint)),
            list: vec![Value::Bigint(1), Value::Bigint(10)],
        };
        assert_eq!(evaluate_row(&e, &page, 0).unwrap(), Value::Boolean(true));
        assert_eq!(evaluate_row(&e, &page, 1).unwrap(), Value::Null);
        // Value not in list, but list contains NULL → NULL (unknown).
        let e = Expr::InList {
            expr: Box::new(Expr::column(0, DataType::Bigint)),
            list: vec![Value::Bigint(1), Value::Null],
        };
        assert_eq!(evaluate_row(&e, &page, 0).unwrap(), Value::Null);
    }

    #[test]
    fn casts() {
        assert_eq!(
            cast_value(&Value::varchar("42"), DataType::Bigint).unwrap(),
            Value::Bigint(42)
        );
        assert_eq!(
            cast_value(&Value::Bigint(42), DataType::Varchar).unwrap(),
            Value::varchar("42")
        );
        assert!(cast_value(&Value::varchar("x"), DataType::Bigint).is_err());
        assert!(cast_value(&Value::Double(f64::NAN), DataType::Bigint).is_err());
    }

    #[test]
    fn is_null() {
        let (_, page) = test_page();
        let e = Expr::IsNull(Box::new(Expr::column(2, DataType::Varchar)));
        assert_eq!(evaluate_row(&e, &page, 0).unwrap(), Value::Boolean(false));
        assert_eq!(evaluate_row(&e, &page, 1).unwrap(), Value::Boolean(true));
    }
}
