//! The typed scalar expression IR.
//!
//! Expressions are produced by the analyzer (which resolves names to input
//! channel indices and checks types) and consumed by the two evaluators and
//! the optimizer. Every node knows its result [`DataType`].

use presto_common::{DataType, Value};
use std::fmt;

use crate::functions::ScalarFn;

/// Binary arithmetic operators over numeric types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

/// Comparison operators; result is boolean (three-valued under NULL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluate against an [`std::cmp::Ordering`].
    pub fn matches(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// A typed scalar expression over the channels of an input page.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to input column `index`.
    Column {
        index: usize,
        data_type: DataType,
    },
    /// A constant.
    Literal {
        value: Value,
        data_type: DataType,
    },
    /// Binary arithmetic; operands are already coerced to `data_type`
    /// (bigint or double) by the analyzer.
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
        data_type: DataType,
    },
    /// Comparison; operands share a comparable type.
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// N-ary conjunction with SQL three-valued logic and short-circuiting.
    And(Vec<Expr>),
    /// N-ary disjunction.
    Or(Vec<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
    /// Searched CASE: the first branch whose condition is true wins.
    Case {
        branches: Vec<(Expr, Expr)>,
        otherwise: Option<Box<Expr>>,
        data_type: DataType,
    },
    /// Explicit cast.
    Cast {
        expr: Box<Expr>,
        data_type: DataType,
    },
    /// `expr IN (v1, v2, ...)` against a literal list.
    InList {
        expr: Box<Expr>,
        list: Vec<Value>,
    },
    /// Scalar function call.
    Call {
        function: ScalarFn,
        args: Vec<Expr>,
        data_type: DataType,
    },
}

impl Expr {
    pub fn column(index: usize, data_type: DataType) -> Expr {
        Expr::Column { index, data_type }
    }

    pub fn literal(value: impl Into<Value>) -> Expr {
        let value = value.into();
        let data_type = value.data_type().unwrap_or(DataType::Boolean);
        Expr::Literal { value, data_type }
    }

    pub fn typed_literal(value: Value, data_type: DataType) -> Expr {
        Expr::Literal { value, data_type }
    }

    pub fn cmp(op: CmpOp, left: Expr, right: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn arith(op: ArithOp, left: Expr, right: Expr) -> Expr {
        let data_type =
            if left.data_type() == DataType::Double || right.data_type() == DataType::Double {
                DataType::Double
            } else {
                DataType::Bigint
            };
        Expr::Arith {
            op,
            left: Box::new(left),
            right: Box::new(right),
            data_type,
        }
    }

    pub fn and(exprs: Vec<Expr>) -> Expr {
        match exprs.len() {
            0 => Expr::literal(true),
            1 => match exprs.into_iter().next() {
                Some(e) => e,
                None => unreachable!("len checked"),
            },
            _ => Expr::And(exprs),
        }
    }

    pub fn or(exprs: Vec<Expr>) -> Expr {
        match exprs.len() {
            0 => Expr::literal(false),
            1 => match exprs.into_iter().next() {
                Some(e) => e,
                None => unreachable!("len checked"),
            },
            _ => Expr::Or(exprs),
        }
    }

    /// The result type of this expression.
    pub fn data_type(&self) -> DataType {
        match self {
            Expr::Column { data_type, .. }
            | Expr::Literal { data_type, .. }
            | Expr::Arith { data_type, .. }
            | Expr::Case { data_type, .. }
            | Expr::Cast { data_type, .. }
            | Expr::Call { data_type, .. } => *data_type,
            Expr::Cmp { .. }
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::IsNull(_)
            | Expr::InList { .. } => DataType::Boolean,
        }
    }

    /// All input channels referenced by this expression, deduplicated.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column { index, .. } => out.push(*index),
            Expr::Literal { .. } => {}
            Expr::Arith { left, right, .. } | Expr::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(es) | Expr::Or(es) => es.iter().for_each(|e| e.collect_columns(out)),
            Expr::Not(e) | Expr::IsNull(e) | Expr::Cast { expr: e, .. } => e.collect_columns(out),
            Expr::Case {
                branches,
                otherwise,
                ..
            } => {
                for (c, v) in branches {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = otherwise {
                    e.collect_columns(out);
                }
            }
            Expr::InList { expr, .. } => expr.collect_columns(out),
            Expr::Call { args, .. } => args.iter().for_each(|e| e.collect_columns(out)),
        }
    }

    /// Rewrite column references through `mapping` (old index → new index).
    /// Used when projections reorder/prune channels. Panics on unmapped
    /// columns — that is a planner bug.
    pub fn remap_columns(&self, mapping: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column { index, data_type } => Expr::Column {
                index: mapping(*index),
                data_type: *data_type,
            },
            Expr::Literal { .. } => self.clone(),
            Expr::Arith {
                op,
                left,
                right,
                data_type,
            } => Expr::Arith {
                op: *op,
                left: Box::new(left.remap_columns(mapping)),
                right: Box::new(right.remap_columns(mapping)),
                data_type: *data_type,
            },
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(left.remap_columns(mapping)),
                right: Box::new(right.remap_columns(mapping)),
            },
            Expr::And(es) => Expr::And(es.iter().map(|e| e.remap_columns(mapping)).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(|e| e.remap_columns(mapping)).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(mapping))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.remap_columns(mapping))),
            Expr::Case {
                branches,
                otherwise,
                data_type,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.remap_columns(mapping), v.remap_columns(mapping)))
                    .collect(),
                otherwise: otherwise
                    .as_ref()
                    .map(|e| Box::new(e.remap_columns(mapping))),
                data_type: *data_type,
            },
            Expr::Cast { expr, data_type } => Expr::Cast {
                expr: Box::new(expr.remap_columns(mapping)),
                data_type: *data_type,
            },
            Expr::InList { expr, list } => Expr::InList {
                expr: Box::new(expr.remap_columns(mapping)),
                list: list.clone(),
            },
            Expr::Call {
                function,
                args,
                data_type,
            } => Expr::Call {
                function: *function,
                args: args.iter().map(|e| e.remap_columns(mapping)).collect(),
                data_type: *data_type,
            },
        }
    }

    /// Whether this expression is free of column references (a constant
    /// expression foldable at plan time).
    pub fn is_constant(&self) -> bool {
        self.referenced_columns().is_empty()
    }

    /// Whether the expression is deterministic. All built-in functions here
    /// are; the hook matches Presto's optimizer guard for pushdown rules.
    pub fn is_deterministic(&self) -> bool {
        true
    }

    /// Split a conjunction into its factors (`a AND b AND c` → `[a, b, c]`).
    pub fn conjuncts(&self) -> Vec<Expr> {
        match self {
            Expr::And(es) => es.iter().flat_map(|e| e.conjuncts()).collect(),
            other => vec![other.clone()],
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { index, .. } => write!(f, "${index}"),
            Expr::Literal { value, .. } => match value {
                Value::Varchar(s) => write!(f, "'{s}'"),
                v => write!(f, "{v}"),
            },
            Expr::Arith {
                op, left, right, ..
            } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Cmp { op, left, right } => write!(f, "({left} {} {right})", op.symbol()),
            Expr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::Case {
                branches,
                otherwise,
                ..
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, data_type } => write!(f, "CAST({expr} AS {data_type})"),
            Expr::InList { expr, list } => {
                write!(f, "({expr} IN (")?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            Expr::Call { function, args, .. } => {
                write!(f, "{}(", function.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn data_type_inference() {
        let e = Expr::arith(
            ArithOp::Add,
            Expr::column(0, DataType::Bigint),
            Expr::column(1, DataType::Double),
        );
        assert_eq!(e.data_type(), DataType::Double);
        let e = Expr::cmp(CmpOp::Lt, Expr::literal(1i64), Expr::literal(2i64));
        assert_eq!(e.data_type(), DataType::Boolean);
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::and(vec![
            Expr::cmp(
                CmpOp::Eq,
                Expr::column(3, DataType::Bigint),
                Expr::literal(1i64),
            ),
            Expr::cmp(
                CmpOp::Eq,
                Expr::column(1, DataType::Bigint),
                Expr::column(3, DataType::Bigint),
            ),
        ]);
        assert_eq!(e.referenced_columns(), vec![1, 3]);
    }

    #[test]
    fn remap_columns() {
        let e = Expr::column(2, DataType::Bigint);
        let r = e.remap_columns(&|i| i + 10);
        assert_eq!(r.referenced_columns(), vec![12]);
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let a = Expr::cmp(
            CmpOp::Eq,
            Expr::column(0, DataType::Bigint),
            Expr::literal(1i64),
        );
        let b = Expr::IsNull(Box::new(Expr::column(1, DataType::Bigint)));
        let c = Expr::literal(true);
        let e = Expr::and(vec![a.clone(), Expr::and(vec![b.clone(), c.clone()])]);
        assert_eq!(e.conjuncts(), vec![a, b, c]);
    }

    #[test]
    fn and_or_collapse_trivial_cases() {
        assert_eq!(Expr::and(vec![]), Expr::literal(true));
        let single = Expr::literal(false);
        assert_eq!(Expr::or(vec![single.clone()]), single);
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert!(CmpOp::Le.matches(std::cmp::Ordering::Equal));
        assert!(!CmpOp::Ne.matches(std::cmp::Ordering::Equal));
    }

    #[test]
    fn display_round_readable() {
        let e = Expr::cmp(
            CmpOp::Eq,
            Expr::column(0, DataType::Varchar),
            Expr::literal("x"),
        );
        assert_eq!(e.to_string(), "($0 = 'x')");
    }
}
