//! Built-in scalar functions.
//!
//! The registry maps SQL names and argument types to a [`ScalarFn`] plus a
//! return type; both evaluators dispatch on the same enum so semantics stay
//! identical. Functions are deliberately a plain `Copy` enum rather than
//! trait objects: the compiled evaluator monomorphizes on them, matching the
//! "no virtual calls in tight loops" guidance of §V-C.

use presto_common::{DataType, PrestoError, Result, Value};

/// A built-in scalar function identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFn {
    // numeric
    Abs,
    Sqrt,
    Ln,
    Exp,
    Power,
    Floor,
    Ceil,
    Round,
    // varchar
    Lower,
    Upper,
    Length,
    Substr,
    Concat,
    Trim,
    Like,
    StrPos,
    // generic
    Coalesce,
    Greatest,
    Least,
    // temporal (date = days since epoch, timestamp = millis since epoch)
    Year,
    Month,
    Day,
    DateDiffDays,
}

impl ScalarFn {
    pub fn name(&self) -> &'static str {
        match self {
            ScalarFn::Abs => "abs",
            ScalarFn::Sqrt => "sqrt",
            ScalarFn::Ln => "ln",
            ScalarFn::Exp => "exp",
            ScalarFn::Power => "power",
            ScalarFn::Floor => "floor",
            ScalarFn::Ceil => "ceil",
            ScalarFn::Round => "round",
            ScalarFn::Lower => "lower",
            ScalarFn::Upper => "upper",
            ScalarFn::Length => "length",
            ScalarFn::Substr => "substr",
            ScalarFn::Concat => "concat",
            ScalarFn::Trim => "trim",
            ScalarFn::Like => "like",
            ScalarFn::StrPos => "strpos",
            ScalarFn::Coalesce => "coalesce",
            ScalarFn::Greatest => "greatest",
            ScalarFn::Least => "least",
            ScalarFn::Year => "year",
            ScalarFn::Month => "month",
            ScalarFn::Day => "day",
            ScalarFn::DateDiffDays => "date_diff_days",
        }
    }

    /// Resolve a function by name and argument types, producing the function
    /// and its return type. This is the analyzer's entry point.
    pub fn resolve(name: &str, args: &[DataType]) -> Result<(ScalarFn, DataType)> {
        use DataType::*;
        let lname = name.to_ascii_lowercase();
        let f = match lname.as_str() {
            "abs" => ScalarFn::Abs,
            "sqrt" => ScalarFn::Sqrt,
            "ln" => ScalarFn::Ln,
            "exp" => ScalarFn::Exp,
            "power" | "pow" => ScalarFn::Power,
            "floor" => ScalarFn::Floor,
            "ceil" | "ceiling" => ScalarFn::Ceil,
            "round" => ScalarFn::Round,
            "lower" => ScalarFn::Lower,
            "upper" => ScalarFn::Upper,
            "length" => ScalarFn::Length,
            "substr" | "substring" => ScalarFn::Substr,
            "concat" => ScalarFn::Concat,
            "trim" => ScalarFn::Trim,
            "like" => ScalarFn::Like,
            "strpos" => ScalarFn::StrPos,
            "coalesce" => ScalarFn::Coalesce,
            "greatest" => ScalarFn::Greatest,
            "least" => ScalarFn::Least,
            "year" => ScalarFn::Year,
            "month" => ScalarFn::Month,
            "day" => ScalarFn::Day,
            "date_diff_days" => ScalarFn::DateDiffDays,
            _ => return Err(PrestoError::user(format!("unknown function '{name}'"))),
        };
        let check = |ok: bool, expected: &str| -> Result<()> {
            if ok {
                Ok(())
            } else {
                Err(PrestoError::user(format!(
                    "function {lname} expects {expected}, got ({})",
                    args.iter().map(|t| t.name()).collect::<Vec<_>>().join(", ")
                )))
            }
        };
        let ret = match f {
            ScalarFn::Abs => {
                check(
                    args.len() == 1 && args[0].is_numeric(),
                    "one numeric argument",
                )?;
                args[0]
            }
            ScalarFn::Sqrt | ScalarFn::Ln | ScalarFn::Exp => {
                check(
                    args.len() == 1 && args[0].is_numeric(),
                    "one numeric argument",
                )?;
                Double
            }
            ScalarFn::Power => {
                check(
                    args.len() == 2 && args.iter().all(|t| t.is_numeric()),
                    "two numeric arguments",
                )?;
                Double
            }
            ScalarFn::Floor | ScalarFn::Ceil | ScalarFn::Round => {
                check(
                    args.len() == 1 && args[0].is_numeric(),
                    "one numeric argument",
                )?;
                match args[0] {
                    Bigint => Bigint,
                    _ => Double,
                }
            }
            ScalarFn::Lower | ScalarFn::Upper | ScalarFn::Trim => {
                check(
                    args.len() == 1 && args[0] == Varchar,
                    "one varchar argument",
                )?;
                Varchar
            }
            ScalarFn::Length => {
                check(
                    args.len() == 1 && args[0] == Varchar,
                    "one varchar argument",
                )?;
                Bigint
            }
            ScalarFn::Substr => {
                check(
                    (args.len() == 2 || args.len() == 3)
                        && args[0] == Varchar
                        && args[1..].iter().all(|t| *t == Bigint),
                    "(varchar, bigint[, bigint])",
                )?;
                Varchar
            }
            ScalarFn::Concat => {
                check(
                    !args.is_empty() && args.iter().all(|t| *t == Varchar),
                    "varchar arguments",
                )?;
                Varchar
            }
            ScalarFn::Like => {
                check(
                    args.len() == 2 && args.iter().all(|t| *t == Varchar),
                    "(varchar, varchar)",
                )?;
                Boolean
            }
            ScalarFn::StrPos => {
                check(
                    args.len() == 2 && args.iter().all(|t| *t == Varchar),
                    "(varchar, varchar)",
                )?;
                Bigint
            }
            ScalarFn::Coalesce | ScalarFn::Greatest | ScalarFn::Least => {
                check(!args.is_empty(), "at least one argument")?;
                let mut t = args[0];
                for &a in &args[1..] {
                    t = DataType::common_super_type(t, a).ok_or_else(|| {
                        PrestoError::user(format!("function {lname}: incompatible argument types"))
                    })?;
                }
                t
            }
            ScalarFn::Year | ScalarFn::Month | ScalarFn::Day => {
                check(
                    args.len() == 1 && matches!(args[0], Date | Timestamp),
                    "one date/timestamp argument",
                )?;
                Bigint
            }
            ScalarFn::DateDiffDays => {
                check(
                    args.len() == 2 && args.iter().all(|t| matches!(t, Date | Timestamp)),
                    "two date/timestamp arguments",
                )?;
                Bigint
            }
        };
        Ok((f, ret))
    }

    /// Row-at-a-time evaluation over [`Value`]s (interpreter semantics, also
    /// the scalar kernel used by the compiled evaluator for varchar paths).
    /// NULL arguments yield NULL except for `coalesce`.
    pub fn eval(&self, args: &[Value]) -> Result<Value> {
        if *self == ScalarFn::Coalesce {
            return Ok(args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null));
        }
        if args.iter().any(Value::is_null) {
            return Ok(Value::Null);
        }
        Ok(match self {
            ScalarFn::Abs => match &args[0] {
                Value::Bigint(v) => Value::Bigint(v.wrapping_abs()),
                v => Value::Double(v.as_f64().expect("numeric argument").abs()),
            },
            ScalarFn::Sqrt => Value::Double(args[0].as_f64().expect("numeric argument").sqrt()),
            ScalarFn::Ln => Value::Double(args[0].as_f64().expect("numeric argument").ln()),
            ScalarFn::Exp => Value::Double(args[0].as_f64().expect("numeric argument").exp()),
            ScalarFn::Power => {
                Value::Double(args[0].as_f64().expect("numeric argument").powf(args[1].as_f64().expect("numeric argument")))
            }
            ScalarFn::Floor => match &args[0] {
                Value::Bigint(v) => Value::Bigint(*v),
                v => Value::Double(v.as_f64().expect("numeric argument").floor()),
            },
            ScalarFn::Ceil => match &args[0] {
                Value::Bigint(v) => Value::Bigint(*v),
                v => Value::Double(v.as_f64().expect("numeric argument").ceil()),
            },
            ScalarFn::Round => match &args[0] {
                Value::Bigint(v) => Value::Bigint(*v),
                v => Value::Double(v.as_f64().expect("numeric argument").round()),
            },
            ScalarFn::Lower => Value::varchar(args[0].as_str().expect("varchar argument").to_lowercase()),
            ScalarFn::Upper => Value::varchar(args[0].as_str().expect("varchar argument").to_uppercase()),
            ScalarFn::Length => Value::Bigint(args[0].as_str().expect("varchar argument").chars().count() as i64),
            ScalarFn::Substr => {
                let s = args[0].as_str().expect("varchar argument");
                let start = args[1].as_i64().expect("bigint argument");
                let len = args.get(2).map(|v| v.as_i64().expect("bigint argument").max(0) as usize);
                Value::varchar(substr(s, start, len))
            }
            ScalarFn::Concat => {
                let mut out = String::new();
                for a in args {
                    out.push_str(a.as_str().expect("varchar argument"));
                }
                Value::varchar(out)
            }
            ScalarFn::Trim => Value::varchar(args[0].as_str().expect("varchar argument").trim()),
            ScalarFn::Like => Value::Boolean(like_match(
                args[0].as_str().expect("varchar argument"),
                args[1].as_str().expect("varchar argument"),
            )),
            ScalarFn::StrPos => {
                let hay = args[0].as_str().expect("varchar argument");
                let needle = args[1].as_str().expect("varchar argument");
                Value::Bigint(match hay.find(needle) {
                    Some(byte_pos) => (hay[..byte_pos].chars().count() + 1) as i64,
                    None => 0,
                })
            }
            ScalarFn::Coalesce => unreachable!("handled above"),
            ScalarFn::Greatest => args
                .iter()
                .max_by(|a, b| a.sql_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .cloned()
                .expect("non-empty argument list"),
            ScalarFn::Least => args
                .iter()
                .min_by(|a, b| a.sql_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .cloned()
                .expect("non-empty argument list"),
            ScalarFn::Year => Value::Bigint(civil_from_value(&args[0]).0),
            ScalarFn::Month => Value::Bigint(civil_from_value(&args[0]).1),
            ScalarFn::Day => Value::Bigint(civil_from_value(&args[0]).2),
            ScalarFn::DateDiffDays => {
                let a = days_of(&args[0]);
                let b = days_of(&args[1]);
                Value::Bigint(b - a)
            }
        })
    }
}

/// SQL `substr` semantics: 1-based start, negative counts from the end.
fn substr(s: &str, start: i64, len: Option<usize>) -> String {
    let chars: Vec<char> = s.chars().collect();
    let n = chars.len() as i64;
    let begin = if start > 0 {
        start - 1
    } else if start < 0 {
        (n + start).max(0)
    } else {
        return String::new();
    };
    if begin >= n {
        return String::new();
    }
    let begin = begin as usize;
    let end = match len {
        Some(l) => (begin + l).min(chars.len()),
        None => chars.len(),
    };
    chars[begin..end].iter().collect()
}

/// SQL LIKE matcher: `%` matches any run, `_` matches one char. Iterative
/// two-pointer algorithm with backtracking on the last `%`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            pi = star_p + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

fn days_of(v: &Value) -> i64 {
    match v {
        Value::Date(d) => *d,
        Value::Timestamp(ms) => ms.div_euclid(86_400_000),
        _ => 0,
    }
}

pub use presto_common::time::{civil_from_days, days_from_civil};

fn civil_from_value(v: &Value) -> (i64, i64, i64) {
    civil_from_days(days_of(v))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn resolve_checks_types() {
        assert!(ScalarFn::resolve("lower", &[DataType::Varchar]).is_ok());
        assert!(ScalarFn::resolve("lower", &[DataType::Bigint]).is_err());
        assert!(ScalarFn::resolve("no_such_fn", &[]).is_err());
        let (_, t) = ScalarFn::resolve("sqrt", &[DataType::Bigint]).unwrap();
        assert_eq!(t, DataType::Double);
        let (_, t) = ScalarFn::resolve("coalesce", &[DataType::Bigint, DataType::Double]).unwrap();
        assert_eq!(t, DataType::Double);
    }

    #[test]
    fn null_propagation() {
        assert_eq!(ScalarFn::Abs.eval(&[Value::Null]).unwrap(), Value::Null);
        assert_eq!(
            ScalarFn::Coalesce
                .eval(&[Value::Null, Value::Bigint(2), Value::Bigint(3)])
                .unwrap(),
            Value::Bigint(2)
        );
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            ScalarFn::Substr
                .eval(&[Value::varchar("hello"), Value::Bigint(2), Value::Bigint(3)])
                .unwrap(),
            Value::varchar("ell")
        );
        assert_eq!(
            ScalarFn::Substr
                .eval(&[Value::varchar("hello"), Value::Bigint(-3)])
                .unwrap(),
            Value::varchar("llo")
        );
        assert_eq!(
            ScalarFn::StrPos
                .eval(&[Value::varchar("abcdef"), Value::varchar("cd")])
                .unwrap(),
            Value::Bigint(3)
        );
        assert_eq!(
            ScalarFn::Concat
                .eval(&[Value::varchar("a"), Value::varchar("b")])
                .unwrap(),
            Value::varchar("ab")
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%l%"));
        assert!(!like_match("hello", "h_l"));
        assert!(!like_match("hello", "%x%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%%abc%%"));
    }

    #[test]
    fn civil_calendar_round_trip() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(days_from_civil(2000, 2, 29)), (2000, 2, 29));
        for days in [-1000, 0, 365, 10_000, 20_000] {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days);
        }
    }

    #[test]
    fn temporal_functions() {
        let date = Value::Date(days_from_civil(1995, 3, 17));
        assert_eq!(
            ScalarFn::Year.eval(&[date.clone()]).unwrap(),
            Value::Bigint(1995)
        );
        assert_eq!(
            ScalarFn::Month.eval(&[date.clone()]).unwrap(),
            Value::Bigint(3)
        );
        assert_eq!(ScalarFn::Day.eval(&[date]).unwrap(), Value::Bigint(17));
    }

    #[test]
    fn greatest_least() {
        assert_eq!(
            ScalarFn::Greatest
                .eval(&[Value::Bigint(1), Value::Bigint(5)])
                .unwrap(),
            Value::Bigint(5)
        );
        assert_eq!(
            ScalarFn::Least
                .eval(&[Value::Double(1.5), Value::Bigint(2)])
                .unwrap(),
            Value::Double(1.5)
        );
    }
}
