//! The table-writer operator (Data Sink API, §IV-E3).

use presto_common::{DataType, Result, Schema, Value};
use presto_connector::PageSink;
use presto_page::Page;

use crate::operator::Operator;

/// Streams its input into a connector [`PageSink`]; on finish, emits a
/// single-row page with the rows written (summed across writers by the
/// coordinator fragment).
pub struct TableWriterOperator {
    sink: Option<Box<dyn PageSink>>,
    input_done: bool,
    emitted: bool,
    rows: u64,
}

impl TableWriterOperator {
    pub fn new(sink: Box<dyn PageSink>) -> TableWriterOperator {
        TableWriterOperator {
            sink: Some(sink),
            input_done: false,
            emitted: false,
            rows: 0,
        }
    }

    pub fn output_schema() -> Schema {
        Schema::of(&[("rows", DataType::Bigint)])
    }
}

impl Operator for TableWriterOperator {
    fn name(&self) -> &'static str {
        "TableWriter"
    }

    fn needs_input(&self) -> bool {
        !self.input_done
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        let sink = self.sink.as_mut().expect("writer already finished");
        sink.append(&page)?;
        self.rows += page.row_count() as u64;
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        if !self.input_done || self.emitted {
            return Ok(None);
        }
        // Commit exactly once, then emit the row count.
        if let Some(mut sink) = self.sink.take() {
            let written = sink.finish()?;
            debug_assert_eq!(written, self.rows);
        }
        self.emitted = true;
        Ok(Some(Page::from_rows(
            &Self::output_schema(),
            &[vec![Value::Bigint(self.rows as i64)]],
        )))
    }

    fn is_finished(&self) -> bool {
        self.emitted
    }

    fn system_memory_bytes(&self) -> usize {
        self.sink
            .as_ref()
            .map_or(0, |s| s.buffered_bytes() as usize)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_connector::{ConnectorMetadata, PageSinkFactory};
    use presto_connectors::MemoryConnector;

    #[test]
    fn writes_and_reports_count() {
        let mem = MemoryConnector::new();
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        mem.create_table("t", &schema).unwrap();
        let sink = mem.create_sink("t").unwrap();
        let mut w = TableWriterOperator::new(sink);
        let page = Page::from_rows(&schema, &[vec![Value::Bigint(1)], vec![Value::Bigint(2)]]);
        w.add_input(page).unwrap();
        w.finish();
        let out = w.output().unwrap().unwrap();
        assert_eq!(out.block(0).i64_at(0), 2);
        assert!(w.is_finished());
        assert_eq!(mem.row_count("t"), 2);
    }
}
