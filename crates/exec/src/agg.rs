//! Hash aggregation: grouping hash table + the aggregation operator with
//! partial/final phases and spill support (§IV-F2).

use presto_common::{DataType, PrestoError, Result};
use presto_expr::GroupedAccumulator;
use presto_page::{deserialize_page, serialize_page, Block, BlockBuilder, Page};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::path::PathBuf;

use crate::operator::Operator;

/// Aggregation phase (mirrors the planner's `AggregateStep`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggPhase {
    Single,
    Partial,
    Final,
}

/// One aggregate's runtime wiring.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub function: presto_expr::AggregateFunction,
    /// For Single/Partial: the argument channel. For Final: the first
    /// intermediate channel (the function's intermediate columns are
    /// consecutive from here).
    pub input: Option<usize>,
}

/// Hash table assigning group ids to distinct key combinations.
///
/// Keys are canonicalized to a byte encoding for hashing/equality; the key
/// *values* are appended once to flat per-column builders (§V-A: flat
/// memory arrays, no per-group objects) for output reconstruction.
pub struct GroupByHash {
    key_channels: Vec<usize>,
    key_types: Vec<DataType>,
    map: HashMap<Vec<u8>, u32>,
    key_builders: Vec<BlockBuilder>,
    key_bytes: usize,
    /// §V-E: "As the indices are processed, the operator records hash
    /// table locations for every dictionary entry in an array … When
    /// successive blocks share the same dictionary, the page processor
    /// retains the array." Cached (dictionary id, entry → group id).
    dict_cache: Option<(u64, Vec<i64>)>,
    /// Rows resolved through the dictionary cache (observability).
    dict_cache_hits: u64,
}

impl GroupByHash {
    pub fn new(key_channels: Vec<usize>, key_types: Vec<DataType>) -> GroupByHash {
        let key_builders = key_types.iter().map(|&t| BlockBuilder::new(t)).collect();
        GroupByHash {
            key_channels,
            key_types,
            map: HashMap::new(),
            key_builders,
            key_bytes: 0,
            dict_cache: None,
            dict_cache_hits: 0,
        }
    }

    pub fn group_count(&self) -> usize {
        self.map.len()
    }

    pub fn dict_cache_hits(&self) -> u64 {
        self.dict_cache_hits
    }

    /// Assign a group id to every row of `page`.
    pub fn group_ids(&mut self, page: &Page) -> Vec<u32> {
        // Dictionary fast path for single-key grouping (§V-E).
        if let [channel] = self.key_channels[..] {
            if let presto_page::Block::Dictionary(d) = page.block(channel).loaded() {
                let dictionary = std::sync::Arc::clone(&d.dictionary);
                let dict_id = d.dictionary_id;
                let dict_ids = d.ids.clone();
                return self.group_ids_via_dictionary(dict_id, &dictionary, &dict_ids);
            }
        }
        let mut ids = Vec::with_capacity(page.row_count());
        let mut key = Vec::with_capacity(16);
        for row in 0..page.row_count() {
            key.clear();
            for (&c, &t) in self.key_channels.iter().zip(&self.key_types) {
                encode_cell(page.block(c), t, row, &mut key);
            }
            ids.push(self.group_of(&key, page, row));
        }
        ids
    }

    fn group_of(&mut self, key: &[u8], page: &Page, row: usize) -> u32 {
        match self.map.get(key) {
            Some(&id) => id,
            None => {
                let id = self.map.len() as u32;
                self.map.insert(key.to_vec(), id);
                self.key_bytes += key.len() + 24;
                for (builder, &c) in self.key_builders.iter_mut().zip(&self.key_channels) {
                    builder.append_from(page.block(c), row);
                }
                id
            }
        }
    }

    /// Resolve group ids entry-wise through the dictionary, reusing the
    /// entry → group array across blocks that share a dictionary.
    fn group_ids_via_dictionary(
        &mut self,
        dict_id: u64,
        dictionary: &presto_page::Block,
        ids: &[u32],
    ) -> Vec<u32> {
        let t = self.key_types[0];
        let valid = matches!(&self.dict_cache, Some((cached, _)) if *cached == dict_id);
        if !valid {
            self.dict_cache = Some((dict_id, vec![-1; dictionary.len()]));
        }
        let mut out = Vec::with_capacity(ids.len());
        let mut key = Vec::with_capacity(16);
        for &entry in ids {
            let cached = self.dict_cache.as_ref().unwrap().1[entry as usize];
            if cached >= 0 {
                self.dict_cache_hits += 1;
                out.push(cached as u32);
                continue;
            }
            key.clear();
            encode_cell(dictionary, t, entry as usize, &mut key);
            // The key-builder append needs a page view of the dictionary.
            let group = match self.map.get(key.as_slice()) {
                Some(&id) => id,
                None => {
                    let id = self.map.len() as u32;
                    self.map.insert(key.clone(), id);
                    self.key_bytes += key.len() + 24;
                    for builder in self.key_builders.iter_mut() {
                        builder.append_from(dictionary, entry as usize);
                    }
                    id
                }
            };
            self.dict_cache.as_mut().unwrap().1[entry as usize] = group as i64;
            out.push(group);
        }
        out
    }

    /// Consume the hash, producing key columns in group-id order.
    pub fn take_key_blocks(self) -> Vec<Block> {
        self.key_builders
            .into_iter()
            .map(BlockBuilder::finish)
            .collect()
    }

    pub fn memory_bytes(&self) -> usize {
        self.key_bytes
            + self
                .key_builders
                .iter()
                .map(|b| b.size_in_bytes())
                .sum::<usize>()
    }
}

/// Canonical byte encoding of one cell for grouping equality.
fn encode_cell(block: &Block, t: DataType, row: usize, out: &mut Vec<u8>) {
    if block.is_null(row) {
        out.push(0);
        return;
    }
    out.push(1);
    match presto_page::PhysicalType::of(t) {
        presto_page::PhysicalType::Long => out.extend_from_slice(&block.i64_at(row).to_le_bytes()),
        presto_page::PhysicalType::Double => {
            // Normalize -0.0 so it groups with 0.0 (SQL equality).
            let v = block.f64_at(row);
            let v = if v == 0.0 { 0.0 } else { v };
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        presto_page::PhysicalType::Bool => out.push(block.bool_at(row) as u8),
        presto_page::PhysicalType::Varchar => {
            let s = block.str_at(row);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// The hash-aggregation operator.
pub struct HashAggregationOperator {
    phase: AggPhase,
    group_channels: Vec<usize>,
    group_types: Vec<DataType>,
    aggs: Vec<AggSpec>,
    hash: GroupByHash,
    accumulators: Vec<GroupedAccumulator>,
    input_done: bool,
    outputs: VecDeque<Page>,
    produced: bool,
    /// Partial aggregations flush early when they grow past this, keeping
    /// memory bounded without spilling (adaptive flush).
    partial_flush_bytes: usize,
    spill_enabled: bool,
    spill_files: Vec<PathBuf>,
    spill_seq: u64,
    rows_in: u64,
}

impl HashAggregationOperator {
    pub fn new(
        phase: AggPhase,
        group_channels: Vec<usize>,
        group_types: Vec<DataType>,
        aggs: Vec<AggSpec>,
        spill_enabled: bool,
    ) -> HashAggregationOperator {
        let hash = GroupByHash::new(group_channels.clone(), group_types.clone());
        let accumulators = aggs
            .iter()
            .map(|a| a.function.create_accumulator())
            .collect();
        HashAggregationOperator {
            phase,
            group_channels,
            group_types,
            aggs,
            hash,
            accumulators,
            input_done: false,
            outputs: VecDeque::new(),
            produced: false,
            partial_flush_bytes: 16 << 20,
            spill_enabled,
            spill_files: Vec::new(),
            spill_seq: 0,
            rows_in: 0,
        }
    }

    fn accumulate(&mut self, page: &Page) -> Result<()> {
        self.rows_in += page.row_count() as u64;
        let ids = self.hash.group_ids(page);
        let max_group = self.hash.group_count().saturating_sub(1) as u32;
        for (acc, spec) in self.accumulators.iter_mut().zip(&self.aggs) {
            match self.phase {
                AggPhase::Single | AggPhase::Partial => {
                    let block = spec.input.map(|c| page.block(c));
                    acc.add_input(block, &ids, max_group);
                }
                AggPhase::Final => {
                    let start = spec.input.expect("final aggregation input channel");
                    let arity = spec.function.intermediate_types().len();
                    let blocks: Vec<Block> = (start..start + arity)
                        .map(|c| page.block(c).clone())
                        .collect();
                    acc.add_intermediate(&blocks, &ids, max_group);
                }
            }
        }
        Ok(())
    }

    /// Build output pages from the current state and reset it.
    fn flush(&mut self, as_intermediate: bool) -> Result<Vec<Page>> {
        let groups = self.hash.group_count();
        if groups == 0 && !self.group_channels.is_empty() {
            return Ok(vec![]);
        }
        let hash = std::mem::replace(
            &mut self.hash,
            GroupByHash::new(self.group_channels.clone(), self.group_types.clone()),
        );
        let accumulators: Vec<GroupedAccumulator> = std::mem::replace(
            &mut self.accumulators,
            self.aggs
                .iter()
                .map(|a| a.function.create_accumulator())
                .collect(),
        );
        let mut blocks = hash.take_key_blocks();
        for mut acc in accumulators {
            // Global aggregations have one implicit group even with no
            // input (COUNT(*) over nothing = 0, SUM = NULL).
            if self.group_channels.is_empty() && acc.group_count() == 0 {
                acc.ensure_group_count(1);
            }
            if as_intermediate {
                blocks.extend(acc.write_intermediate());
            } else {
                blocks.push(acc.write_final());
            }
        }
        // All blocks must agree on length; global aggregates produce one row.
        let rows = blocks.first().map(Block::len).unwrap_or(0);
        debug_assert!(blocks.iter().all(|b| b.len() == rows));
        // Chunk large outputs into page-sized pieces.
        let page = Page::new(blocks);
        let mut out = Vec::new();
        let chunk = 8192usize;
        if page.row_count() <= chunk {
            out.push(page);
        } else {
            let mut start = 0;
            while start < page.row_count() {
                let end = (start + chunk).min(page.row_count());
                let positions: Vec<u32> = (start as u32..end as u32).collect();
                out.push(page.filter(&positions));
                start = end;
            }
        }
        Ok(out)
    }

    fn spill_path(&mut self) -> PathBuf {
        self.spill_seq += 1;
        std::env::temp_dir().join(format!(
            "presto-agg-spill-{}-{:p}-{}.bin",
            std::process::id(),
            self as *const _,
            self.spill_seq
        ))
    }

    pub fn spilled_bytes(&self) -> u64 {
        self.spill_files
            .iter()
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }
}

impl Operator for HashAggregationOperator {
    fn name(&self) -> &'static str {
        match self.phase {
            AggPhase::Single => "Aggregate",
            AggPhase::Partial => "AggregatePartial",
            AggPhase::Final => "AggregateFinal",
        }
    }

    fn needs_input(&self) -> bool {
        !self.input_done
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        self.accumulate(&page)?;
        // Adaptive partial flush keeps partial aggregations bounded.
        if self.phase == AggPhase::Partial && self.user_memory_bytes() > self.partial_flush_bytes {
            let pages = self.flush(true)?;
            self.outputs.extend(pages);
        }
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        if let Some(p) = self.outputs.pop_front() {
            return Ok(Some(p));
        }
        if !self.input_done || self.produced {
            return Ok(None);
        }
        self.produced = true;
        // Re-ingest any spilled runs before producing results.
        let spill_files = std::mem::take(&mut self.spill_files);
        for path in spill_files {
            let mut file = std::fs::File::open(&path)?;
            let mut len_buf = [0u8; 4];
            loop {
                match file.read_exact(&mut len_buf) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                    Err(e) => return Err(e.into()),
                }
                let len = u32::from_le_bytes(len_buf) as usize;
                let mut buf = vec![0u8; len];
                file.read_exact(&mut buf)?;
                let page = deserialize_page(&buf)?;
                // Spilled pages are in intermediate form: merge them.
                let ids = self.hash.group_ids(&page);
                let max_group = self.hash.group_count().saturating_sub(1) as u32;
                let group_count = self.group_channels.len();
                let mut channel = group_count;
                for (acc, spec) in self.accumulators.iter_mut().zip(&self.aggs) {
                    let arity = spec.function.intermediate_types().len();
                    let blocks: Vec<Block> = (channel..channel + arity)
                        .map(|c| page.block(c).clone())
                        .collect();
                    acc.add_intermediate(&blocks, &ids, max_group);
                    channel += arity;
                }
            }
            std::fs::remove_file(&path).ok();
        }
        let pages = self.flush(self.phase == AggPhase::Partial)?;
        self.outputs.extend(pages);
        Ok(self.outputs.pop_front())
    }

    fn is_finished(&self) -> bool {
        self.input_done && self.produced && self.outputs.is_empty()
    }

    fn user_memory_bytes(&self) -> usize {
        self.hash.memory_bytes()
            + self
                .accumulators
                .iter()
                .map(|a| a.size_in_bytes())
                .sum::<usize>()
    }

    fn can_revoke_memory(&self) -> bool {
        self.spill_enabled
            && self.phase != AggPhase::Partial
            && self.hash.group_count() > 0
            // Spilled runs are re-merged in intermediate form, so every
            // function must support it.
            && self.aggs.iter().all(|a| a.function.kind.supports_partial())
    }

    fn revoke_memory(&mut self) -> Result<u64> {
        if !self.can_revoke_memory() {
            return Ok(0);
        }
        let before = self.user_memory_bytes() as u64;
        // Spill current state in intermediate form, grouped-keys first.
        // NOTE: spilled rows are keyed, so re-ingesting them groups
        // correctly; group ids are not stable across the spill.
        let pages = self.flush(true)?;
        let path = self.spill_path();
        let mut file = std::fs::File::create(&path)?;
        for page in &pages {
            let bytes = serialize_page(page);
            file.write_all(&(bytes.len() as u32).to_le_bytes())?;
            file.write_all(&bytes)?;
        }
        file.flush()?;
        self.spill_files.push(path);
        Ok(before)
    }
}

/// Helper: map a planner aggregate channel layout into [`AggSpec`]s.
pub fn specs_from_planner(
    aggregates: &[presto_planner::plan::AggregateSpec],
) -> Result<Vec<AggSpec>> {
    aggregates
        .iter()
        .map(|a| {
            if a.input.is_none() && !matches!(a.function.kind, presto_expr::AggregateKind::Count) {
                return Err(PrestoError::internal("aggregate missing input channel"));
            }
            Ok(AggSpec {
                function: a.function,
                input: a.input,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{Schema, Value};
    use presto_expr::{AggregateFunction, AggregateKind};

    fn page(rows: &[(i64, i64)]) -> Page {
        let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)]);
        Page::from_rows(
            &schema,
            &rows
                .iter()
                .map(|&(k, v)| vec![Value::Bigint(k), Value::Bigint(v)])
                .collect::<Vec<_>>(),
        )
    }

    fn sum_agg() -> AggSpec {
        AggSpec {
            function: AggregateFunction::new(AggregateKind::Sum, Some(DataType::Bigint)).unwrap(),
            input: Some(1),
        }
    }

    fn drain(op: &mut HashAggregationOperator) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        while let Some(p) = op.output().unwrap() {
            for i in 0..p.row_count() {
                out.push((p.block(0).i64_at(i), p.block(1).i64_at(i)));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn grouped_sum() {
        let mut op = HashAggregationOperator::new(
            AggPhase::Single,
            vec![0],
            vec![DataType::Bigint],
            vec![sum_agg()],
            false,
        );
        op.add_input(page(&[(1, 10), (2, 20), (1, 5)])).unwrap();
        op.add_input(page(&[(2, 2), (3, 7)])).unwrap();
        op.finish();
        assert_eq!(drain(&mut op), vec![(1, 15), (2, 22), (3, 7)]);
        assert!(op.is_finished());
    }

    #[test]
    fn global_aggregate_with_no_rows() {
        let count = AggSpec {
            function: AggregateFunction::new(AggregateKind::Count, None).unwrap(),
            input: None,
        };
        let mut op =
            HashAggregationOperator::new(AggPhase::Single, vec![], vec![], vec![count], false);
        op.finish();
        let p = op.output().unwrap().expect("one row");
        assert_eq!(p.row_count(), 1);
        assert_eq!(p.block(0).i64_at(0), 0, "COUNT(*) of empty input is 0");
    }

    #[test]
    fn partial_then_final_round_trip() {
        let mut partial = HashAggregationOperator::new(
            AggPhase::Partial,
            vec![0],
            vec![DataType::Bigint],
            vec![AggSpec {
                function: AggregateFunction::new(AggregateKind::Avg, Some(DataType::Bigint))
                    .unwrap(),
                input: Some(1),
            }],
            false,
        );
        partial
            .add_input(page(&[(1, 10), (1, 20), (2, 5)]))
            .unwrap();
        partial.finish();
        let mut intermediate_pages = Vec::new();
        while let Some(p) = partial.output().unwrap() {
            intermediate_pages.push(p);
        }
        // avg intermediate = (sum double, count bigint): 1 group col + 2.
        assert_eq!(intermediate_pages[0].column_count(), 3);
        let mut fin = HashAggregationOperator::new(
            AggPhase::Final,
            vec![0],
            vec![DataType::Bigint],
            vec![AggSpec {
                function: AggregateFunction::new(AggregateKind::Avg, Some(DataType::Bigint))
                    .unwrap(),
                input: Some(1),
            }],
            false,
        );
        for p in intermediate_pages {
            fin.add_input(p).unwrap();
        }
        fin.finish();
        let p = fin.output().unwrap().unwrap();
        let mut rows: Vec<(i64, f64)> = (0..p.row_count())
            .map(|i| (p.block(0).i64_at(i), p.block(1).f64_at(i)))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(rows, vec![(1, 15.0), (2, 5.0)]);
    }

    #[test]
    fn spill_and_restore_matches_in_memory() {
        let run = |spill: bool| -> Vec<(i64, i64)> {
            let mut op = HashAggregationOperator::new(
                AggPhase::Single,
                vec![0],
                vec![DataType::Bigint],
                vec![sum_agg()],
                spill,
            );
            let rows: Vec<(i64, i64)> = (0..500).map(|i| (i % 50, i)).collect();
            op.add_input(page(&rows[..250])).unwrap();
            if spill {
                assert!(op.can_revoke_memory());
                let freed = op.revoke_memory().unwrap();
                assert!(freed > 0);
                assert!(op.spilled_bytes() > 0);
                assert_eq!(op.hash.group_count(), 0, "state cleared after spill");
            }
            op.add_input(page(&rows[250..])).unwrap();
            op.finish();
            drain(&mut op)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn null_keys_group_together() {
        let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)]);
        let p = Page::from_rows(
            &schema,
            &[
                vec![Value::Null, Value::Bigint(1)],
                vec![Value::Null, Value::Bigint(2)],
                vec![Value::Bigint(0), Value::Bigint(4)],
            ],
        );
        let mut op = HashAggregationOperator::new(
            AggPhase::Single,
            vec![0],
            vec![DataType::Bigint],
            vec![sum_agg()],
            false,
        );
        op.add_input(p).unwrap();
        op.finish();
        let out = op.output().unwrap().unwrap();
        assert_eq!(out.row_count(), 2, "NULL is one group, 0 is another");
    }

    #[test]
    fn distinct_via_empty_aggregates() {
        let mut op = HashAggregationOperator::new(
            AggPhase::Single,
            vec![0],
            vec![DataType::Bigint],
            vec![],
            false,
        );
        op.add_input(page(&[(1, 0), (1, 0), (2, 0)])).unwrap();
        op.finish();
        let p = op.output().unwrap().unwrap();
        assert_eq!(p.row_count(), 2);
    }
}

#[cfg(test)]
mod dict_cache_tests {
    use super::*;
    use presto_page::blocks::{DictionaryBlock, VarcharBlock};
    use presto_page::Block;
    use std::sync::Arc;

    #[test]
    fn dictionary_grouping_uses_entry_cache() {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["a", "b", "c"])));
        let mut hash = GroupByHash::new(vec![0], vec![DataType::Varchar]);
        // First block: 6 rows over 3 entries — at most 3 slow lookups.
        let p1 = Page::new(vec![Block::Dictionary(DictionaryBlock::new(
            Arc::clone(&dict),
            vec![0, 1, 2, 0, 1, 2],
        ))]);
        let ids1 = hash.group_ids(&p1);
        assert_eq!(ids1, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(
            hash.dict_cache_hits(),
            3,
            "repeat entries served by the cache"
        );
        // Second block shares the dictionary: every row is a cache hit.
        let p2 = Page::new(vec![Block::Dictionary(DictionaryBlock::new(
            Arc::clone(&dict),
            vec![2, 2, 0],
        ))]);
        let ids2 = hash.group_ids(&p2);
        assert_eq!(ids2, vec![2, 2, 0]);
        assert_eq!(hash.dict_cache_hits(), 6);
        assert_eq!(hash.group_count(), 3);
    }

    #[test]
    fn dictionary_and_flat_blocks_agree_on_groups() {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["x", "y"])));
        let mut hash = GroupByHash::new(vec![0], vec![DataType::Varchar]);
        let encoded = Page::new(vec![Block::Dictionary(DictionaryBlock::new(
            dict,
            vec![0, 1],
        ))]);
        let flat = Page::new(vec![Block::from(VarcharBlock::from_strs(&["y", "x"]))]);
        assert_eq!(hash.group_ids(&encoded), vec![0, 1]);
        // Flat rows for the same values must land in the same groups.
        assert_eq!(hash.group_ids(&flat), vec![1, 0]);
        assert_eq!(hash.group_count(), 2);
    }
}
