//! Hash aggregation: grouping hash table + the aggregation operator with
//! partial/final phases and spill support (§IV-F2).

use presto_common::{DataType, PrestoError, Result};
use presto_expr::GroupedAccumulator;
use presto_page::{Block, BlockBuilder, Page};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::flathash::{FlatHashTable, KeyArena};
use crate::operator::Operator;
use crate::spill::{SpillManager, SpillRun};

/// Aggregation phase (mirrors the planner's `AggregateStep`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggPhase {
    Single,
    Partial,
    Final,
}

/// One aggregate's runtime wiring.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub function: presto_expr::AggregateFunction,
    /// For Single/Partial: the argument channel. For Final: the first
    /// intermediate channel (the function's intermediate columns are
    /// consecutive from here).
    pub input: Option<usize>,
}

/// Hash table assigning group ids to distinct key combinations.
///
/// Keys are canonicalized to a byte encoding for hashing/equality and live
/// in a contiguous [`KeyArena`] indexed by group id; lookups go through a
/// [`FlatHashTable`] whose dense entry index *is* the group id (§V-A/§V-E:
/// flat memory arrays, no per-group objects or per-key `Vec<u8>`
/// allocations). The key *values* are appended once to flat per-column
/// builders for output reconstruction.
pub struct GroupByHash {
    key_channels: Vec<usize>,
    key_types: Vec<DataType>,
    table: FlatHashTable,
    arena: KeyArena,
    key_builders: Vec<BlockBuilder>,
    /// §V-E: "As the indices are processed, the operator records hash
    /// table locations for every dictionary entry in an array … When
    /// successive blocks share the same dictionary, the page processor
    /// retains the array." Cached (dictionary id, entry → group id).
    dict_cache: Option<(u64, Vec<i64>)>,
    /// Rows resolved through the dictionary cache (observability).
    dict_cache_hits: u64,
    /// Rows resolved through the RLE one-lookup-per-page fast path.
    rle_hits: u64,
    /// Dictionary-entry hash memo for the vectorized hash pass.
    hash_cache: presto_page::hash::DictionaryHashCache,
}

impl GroupByHash {
    pub fn new(key_channels: Vec<usize>, key_types: Vec<DataType>) -> GroupByHash {
        let key_builders = key_types.iter().map(|&t| BlockBuilder::new(t)).collect();
        GroupByHash {
            key_channels,
            key_types,
            table: FlatHashTable::new(),
            arena: KeyArena::new(),
            key_builders,
            dict_cache: None,
            dict_cache_hits: 0,
            rle_hits: 0,
            hash_cache: presto_page::hash::DictionaryHashCache::new(),
        }
    }

    pub fn group_count(&self) -> usize {
        self.arena.len()
    }

    pub fn dict_cache_hits(&self) -> u64 {
        self.dict_cache_hits
    }

    pub fn rle_hits(&self) -> u64 {
        self.rle_hits
    }

    /// Assign a group id to every row of `page`.
    pub fn group_ids(&mut self, page: &Page) -> Vec<u32> {
        let rows = page.row_count();
        // RLE fast path (§V-E): a page whose key columns are all single
        // runs has exactly one key — resolve it once for the whole page.
        if rows > 0
            && !self.key_channels.is_empty()
            && self
                .key_channels
                .iter()
                .all(|&c| matches!(page.block(c).loaded(), presto_page::Block::Rle(_)))
        {
            let mut key = Vec::with_capacity(16);
            let mut hash = 0u64;
            for (&c, &t) in self.key_channels.iter().zip(&self.key_types) {
                let block = page.block(c);
                encode_cell(block, t, 0, &mut key);
                hash = presto_page::hash::combine_hashes(
                    hash,
                    presto_page::hash::hash_cell(block, 0),
                );
            }
            let group = self.group_of(hash, &key, page, 0);
            self.rle_hits += rows as u64;
            return vec![group; rows];
        }
        // Dictionary fast path for single-key grouping (§V-E).
        if let [channel] = self.key_channels[..] {
            if let presto_page::Block::Dictionary(d) = page.block(channel).loaded() {
                let dictionary = std::sync::Arc::clone(&d.dictionary);
                let dict_id = d.dictionary_id;
                let dict_ids = d.ids.clone();
                return self.group_ids_via_dictionary(dict_id, &dictionary, &dict_ids);
            }
        }
        // Vectorized path (§V-E): one dictionary/RLE-aware hash sweep over
        // the key columns, one encoding sweep into a page-local arena, then
        // a batched breadth-first table walk. Each stage issues independent
        // memory accesses per row, so lookup cache misses overlap instead of
        // chaining serially. Grouping hashes stay identical to the
        // shuffle/join row hashes across encodings.
        let hashes =
            presto_page::hash::hash_columns_cached(page, &self.key_channels, &mut self.hash_cache);
        self.group_ids_vectorized(page, &hashes)
    }

    /// [`group_ids`](Self::group_ids) with the per-row key hashes already
    /// computed — the fused pipeline hashes key values while they are still
    /// hot in registers during its gather loop. The hashes must be the same
    /// function [`hash_columns_cached`](presto_page::hash::hash_columns_cached)
    /// computes (combine in key-channel order), or lookups will miss groups
    /// created through the unhashed paths.
    pub fn group_ids_prehashed(&mut self, page: &Page, hashes: &[u64]) -> Vec<u32> {
        debug_assert_eq!(hashes.len(), page.row_count());
        self.group_ids_vectorized(page, hashes)
    }

    /// Stages 1-4 of the vectorized path, with hashes supplied.
    fn group_ids_vectorized(&mut self, page: &Page, hashes: &[u64]) -> Vec<u32> {
        let rows = page.row_count();
        let mut scratch_bytes: Vec<u8> = Vec::with_capacity(rows * 9);
        let mut scratch_offsets: Vec<u32> = Vec::with_capacity(rows + 1);
        scratch_offsets.push(0);
        for row in 0..rows {
            for (&c, &t) in self.key_channels.iter().zip(&self.key_types) {
                encode_cell(page.block(c), t, row, &mut scratch_bytes);
            }
            scratch_offsets.push(scratch_bytes.len() as u32);
        }
        let key_of = |row: usize| {
            &scratch_bytes[scratch_offsets[row] as usize..scratch_offsets[row + 1] as usize]
        };
        const EMPTY: u32 = FlatHashTable::EMPTY;
        const UNRESOLVED: u32 = u32::MAX;
        let mut ids = vec![UNRESOLVED; rows];
        // Stage 1: bucket heads (read-only against the pre-page table).
        let mut cursors: Vec<(u32, u32)> = Vec::with_capacity(rows);
        for (row, &hash) in hashes.iter().enumerate() {
            let head = self.table.head(hash);
            if head != EMPTY {
                cursors.push((row as u32, head));
            }
        }
        // Stage 2: walk all live chains one step per round.
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        let mut next_round: Vec<(u32, u32)> = Vec::with_capacity(cursors.len() / 4 + 1);
        while !cursors.is_empty() {
            next_round.clear();
            for &(row, e) in &cursors {
                let (stored, next) = self.table.entry_at(e);
                if stored == hashes[row as usize] {
                    candidates.push((row, e));
                }
                if next != EMPTY {
                    next_round.push((row, next));
                }
            }
            std::mem::swap(&mut cursors, &mut next_round);
        }
        // Stage 3: byte-verify candidates; a row matches at most one group.
        for &(row, e) in &candidates {
            if self.arena.get(e) == key_of(row as usize) {
                ids[row as usize] = e;
            }
        }
        // Stage 4: rows whose key predates this page are resolved; the rest
        // insert (or find keys first seen earlier in this page) in row
        // order, preserving first-seen group numbering.
        for (row, id) in ids.iter_mut().enumerate() {
            if *id == UNRESOLVED {
                *id = self.group_of(hashes[row], key_of(row), page, row);
            }
        }
        ids
    }

    /// Flat-table lookup: one chain walk with stored-hash prefilter, arena
    /// compare only on full hash match.
    fn find_group(&self, hash: u64, key: &[u8]) -> Option<u32> {
        let arena = &self.arena;
        self.table.find(hash, |e| arena.get(e) == key)
    }

    fn group_of(&mut self, hash: u64, key: &[u8], page: &Page, row: usize) -> u32 {
        if let Some(id) = self.find_group(hash, key) {
            return id;
        }
        let id = self.table.insert(hash);
        debug_assert_eq!(id, self.arena.len() as u32);
        self.arena.push(key);
        for (builder, &c) in self.key_builders.iter_mut().zip(&self.key_channels) {
            builder.append_from(page.block(c), row);
        }
        id
    }

    /// Resolve group ids entry-wise through the dictionary, reusing the
    /// entry → group array across blocks that share a dictionary.
    fn group_ids_via_dictionary(
        &mut self,
        dict_id: u64,
        dictionary: &presto_page::Block,
        ids: &[u32],
    ) -> Vec<u32> {
        let t = self.key_types[0];
        let valid = matches!(&self.dict_cache, Some((cached, _)) if *cached == dict_id);
        if !valid {
            self.dict_cache = Some((dict_id, vec![-1; dictionary.len()]));
        }
        let mut out = Vec::with_capacity(ids.len());
        let mut key = Vec::with_capacity(16);
        for &entry in ids {
            let cached = match &self.dict_cache {
                Some((_, groups)) => groups[entry as usize],
                None => -1,
            };
            if cached >= 0 {
                self.dict_cache_hits += 1;
                out.push(cached as u32);
                continue;
            }
            key.clear();
            encode_cell(dictionary, t, entry as usize, &mut key);
            // Matches what hash_columns computes for a single-channel row.
            let hash = presto_page::hash::combine_hashes(
                0,
                presto_page::hash::hash_cell(dictionary, entry as usize),
            );
            let group = match self.find_group(hash, &key) {
                Some(id) => id,
                None => {
                    let id = self.table.insert(hash);
                    self.arena.push(&key);
                    for builder in self.key_builders.iter_mut() {
                        builder.append_from(dictionary, entry as usize);
                    }
                    id
                }
            };
            if let Some((_, groups)) = &mut self.dict_cache {
                groups[entry as usize] = group as i64;
            }
            out.push(group);
        }
        out
    }

    /// Consume the hash, producing key columns in group-id order.
    pub fn take_key_blocks(self) -> Vec<Block> {
        self.key_builders
            .into_iter()
            .map(BlockBuilder::finish)
            .collect()
    }

    /// Exact retained bytes: flat table arrays + key arena + key builders.
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes()
            + self.arena.memory_bytes()
            + self
                .key_builders
                .iter()
                .map(|b| b.size_in_bytes())
                .sum::<usize>()
    }
}

/// Canonical byte encoding of one cell for grouping equality.
fn encode_cell(block: &Block, t: DataType, row: usize, out: &mut Vec<u8>) {
    if block.is_null(row) {
        out.push(0);
        return;
    }
    out.push(1);
    match presto_page::PhysicalType::of(t) {
        presto_page::PhysicalType::Long => out.extend_from_slice(&block.i64_at(row).to_le_bytes()),
        presto_page::PhysicalType::Double => {
            // Normalize -0.0 so it groups with 0.0 (SQL equality).
            let v = block.f64_at(row);
            let v = if v == 0.0 { 0.0 } else { v };
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        presto_page::PhysicalType::Bool => out.push(block.bool_at(row) as u8),
        presto_page::PhysicalType::Varchar => {
            let s = block.str_at(row);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// The hash-aggregation operator.
pub struct HashAggregationOperator {
    phase: AggPhase,
    group_channels: Vec<usize>,
    group_types: Vec<DataType>,
    aggs: Vec<AggSpec>,
    hash: GroupByHash,
    accumulators: Vec<GroupedAccumulator>,
    input_done: bool,
    outputs: VecDeque<Page>,
    produced: bool,
    /// Partial aggregations flush early when they grow past this, keeping
    /// memory bounded without spilling (adaptive flush).
    partial_flush_bytes: usize,
    spill_enabled: bool,
    spill: Arc<SpillManager>,
    spill_runs: Vec<SpillRun>,
    rows_in: u64,
    /// Cumulative bytes written to spill files (spilled files are deleted
    /// after re-ingest, so this cannot be derived from live metadata).
    spilled_bytes_total: u64,
    /// Revocations that actually wrote a run.
    spill_events: u64,
    /// Flathash counters carried over from hashes consumed by `flush`.
    rle_hits_flushed: u64,
    dict_cache_hits_flushed: u64,
}

impl HashAggregationOperator {
    pub fn new(
        phase: AggPhase,
        group_channels: Vec<usize>,
        group_types: Vec<DataType>,
        aggs: Vec<AggSpec>,
        spill_enabled: bool,
    ) -> HashAggregationOperator {
        let hash = GroupByHash::new(group_channels.clone(), group_types.clone());
        let accumulators = aggs
            .iter()
            .map(|a| a.function.create_accumulator())
            .collect();
        HashAggregationOperator {
            phase,
            group_channels,
            group_types,
            aggs,
            hash,
            accumulators,
            input_done: false,
            outputs: VecDeque::new(),
            produced: false,
            partial_flush_bytes: 16 << 20,
            spill_enabled,
            spill: SpillManager::new(None, 0),
            spill_runs: Vec::new(),
            rows_in: 0,
            spilled_bytes_total: 0,
            spill_events: 0,
            rle_hits_flushed: 0,
            dict_cache_hits_flushed: 0,
        }
    }

    /// Spill through the task's shared [`SpillManager`] (directory, disk
    /// budget, abort cleanup) instead of a private default one.
    pub fn with_spill_manager(mut self, spill: Arc<SpillManager>) -> HashAggregationOperator {
        self.spill = spill;
        self
    }

    fn accumulate(&mut self, page: &Page) -> Result<()> {
        let ids = self.hash.group_ids(page);
        self.accumulate_grouped(page, &ids)
    }

    fn accumulate_grouped(&mut self, page: &Page, ids: &[u32]) -> Result<()> {
        self.rows_in += page.row_count() as u64;
        let max_group = self.hash.group_count().saturating_sub(1) as u32;
        for (acc, spec) in self.accumulators.iter_mut().zip(&self.aggs) {
            match self.phase {
                AggPhase::Single | AggPhase::Partial => {
                    let block = spec.input.map(|c| page.block(c));
                    acc.add_input(block, ids, max_group);
                }
                AggPhase::Final => {
                    let start = spec.input.expect("final aggregation input channel");
                    let arity = spec.function.intermediate_types().len();
                    let blocks: Vec<Block> = (start..start + arity)
                        .map(|c| page.block(c).clone())
                        .collect();
                    acc.add_intermediate(&blocks, ids, max_group);
                }
            }
        }
        Ok(())
    }

    /// Build output pages from the current state and reset it.
    fn flush(&mut self, as_intermediate: bool) -> Result<Vec<Page>> {
        let groups = self.hash.group_count();
        if groups == 0 && !self.group_channels.is_empty() {
            return Ok(vec![]);
        }
        let hash = std::mem::replace(
            &mut self.hash,
            GroupByHash::new(self.group_channels.clone(), self.group_types.clone()),
        );
        self.rle_hits_flushed += hash.rle_hits();
        self.dict_cache_hits_flushed += hash.dict_cache_hits();
        let accumulators: Vec<GroupedAccumulator> = std::mem::replace(
            &mut self.accumulators,
            self.aggs
                .iter()
                .map(|a| a.function.create_accumulator())
                .collect(),
        );
        let mut blocks = hash.take_key_blocks();
        for mut acc in accumulators {
            // Global aggregations have one implicit group even with no
            // input (COUNT(*) over nothing = 0, SUM = NULL).
            if self.group_channels.is_empty() && acc.group_count() == 0 {
                acc.ensure_group_count(1);
            }
            if as_intermediate {
                blocks.extend(acc.write_intermediate());
            } else {
                blocks.push(acc.write_final());
            }
        }
        // All blocks must agree on length; global aggregates produce one row.
        let rows = blocks.first().map(Block::len).unwrap_or(0);
        debug_assert!(blocks.iter().all(|b| b.len() == rows));
        // Chunk large outputs into page-sized pieces.
        let page = Page::new(blocks);
        let mut out = Vec::new();
        let chunk = 8192usize;
        if page.row_count() <= chunk {
            out.push(page);
        } else {
            let mut start = 0;
            while start < page.row_count() {
                let end = (start + chunk).min(page.row_count());
                let positions: Vec<u32> = (start as u32..end as u32).collect();
                out.push(page.filter(&positions));
                start = end;
            }
        }
        Ok(out)
    }

    /// [`Operator::add_input`] with key hashes supplied by the caller (see
    /// [`GroupByHash::group_ids_prehashed`]). Used by the fused pipeline,
    /// which hashes keys during its gather loop instead of re-reading the
    /// key columns. Applies the same adaptive partial flush.
    pub fn add_input_prehashed(&mut self, page: &Page, hashes: &[u64]) -> Result<()> {
        let ids = self.hash.group_ids_prehashed(page, hashes);
        self.accumulate_grouped(page, &ids)?;
        self.maybe_partial_flush()
    }

    /// Feed a page whose group ids are already known. Used by the fused
    /// pipeline's global-aggregation fast path (no keys → every row is
    /// group 0, the hash table is never touched).
    pub(crate) fn add_input_grouped(&mut self, page: &Page, ids: &[u32]) -> Result<()> {
        self.accumulate_grouped(page, ids)?;
        self.maybe_partial_flush()
    }

    /// Adaptive partial flush keeps partial aggregations bounded.
    fn maybe_partial_flush(&mut self) -> Result<()> {
        if self.phase == AggPhase::Partial && self.user_memory_bytes() > self.partial_flush_bytes {
            let pages = self.flush(true)?;
            self.outputs.extend(pages);
        }
        Ok(())
    }

    /// Bytes currently held in this operator's live spill runs.
    pub fn spilled_bytes(&self) -> u64 {
        self.spill_runs.iter().map(SpillRun::bytes).sum()
    }
}

impl Operator for HashAggregationOperator {
    fn name(&self) -> &'static str {
        match self.phase {
            AggPhase::Single => "Aggregate",
            AggPhase::Partial => "AggregatePartial",
            AggPhase::Final => "AggregateFinal",
        }
    }

    fn needs_input(&self) -> bool {
        !self.input_done
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        self.accumulate(&page)?;
        self.maybe_partial_flush()
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        if let Some(p) = self.outputs.pop_front() {
            return Ok(Some(p));
        }
        if !self.input_done || self.produced {
            return Ok(None);
        }
        self.produced = true;
        // Re-ingest any spilled runs before producing results. `into_pages`
        // verifies each record's frame checksum and deletes the file; runs
        // left behind by an error drop (and delete themselves) on unwind.
        let spill_runs = std::mem::take(&mut self.spill_runs);
        for run in spill_runs {
            for page in run.into_pages()? {
                // Spilled pages are in intermediate form: merge them.
                let ids = self.hash.group_ids(&page);
                let max_group = self.hash.group_count().saturating_sub(1) as u32;
                let group_count = self.group_channels.len();
                let mut channel = group_count;
                for (acc, spec) in self.accumulators.iter_mut().zip(&self.aggs) {
                    let arity = spec.function.intermediate_types().len();
                    let blocks: Vec<Block> = (channel..channel + arity)
                        .map(|c| page.block(c).clone())
                        .collect();
                    acc.add_intermediate(&blocks, &ids, max_group);
                    channel += arity;
                }
            }
        }
        let pages = self.flush(self.phase == AggPhase::Partial)?;
        self.outputs.extend(pages);
        Ok(self.outputs.pop_front())
    }

    fn is_finished(&self) -> bool {
        self.input_done && self.produced && self.outputs.is_empty()
    }

    fn user_memory_bytes(&self) -> usize {
        self.hash.memory_bytes()
            + self
                .accumulators
                .iter()
                .map(|a| a.size_in_bytes())
                .sum::<usize>()
    }

    fn can_revoke_memory(&self) -> bool {
        self.spill_enabled
            && self.phase != AggPhase::Partial
            && self.hash.group_count() > 0
            // Spilled runs are re-merged in intermediate form, so every
            // function must support it.
            && self.aggs.iter().all(|a| a.function.kind.supports_partial())
    }

    fn revoke_memory(&mut self) -> Result<u64> {
        if !self.can_revoke_memory() {
            return Ok(0);
        }
        let before = self.user_memory_bytes() as u64;
        // Spill current state in intermediate form, grouped-keys first.
        // NOTE: spilled rows are keyed, so re-ingesting them groups
        // correctly; group ids are not stable across the spill.
        let pages = self.flush(true)?;
        let mut run = self.spill.create_run("agg");
        for page in &pages {
            self.spilled_bytes_total += run.append(page)?;
        }
        self.spill_events += 1;
        self.spill_runs.push(run);
        Ok(before)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rle_hits", self.rle_hits_flushed + self.hash.rle_hits()),
            (
                "dict_cache_hits",
                self.dict_cache_hits_flushed + self.hash.dict_cache_hits(),
            ),
            ("spilled_bytes", self.spilled_bytes_total),
            ("spill_events", self.spill_events),
        ]
    }
}

/// Helper: map a planner aggregate channel layout into [`AggSpec`]s.
pub fn specs_from_planner(
    aggregates: &[presto_planner::plan::AggregateSpec],
) -> Result<Vec<AggSpec>> {
    aggregates
        .iter()
        .map(|a| {
            if a.input.is_none() && !matches!(a.function.kind, presto_expr::AggregateKind::Count) {
                return Err(PrestoError::internal("aggregate missing input channel"));
            }
            Ok(AggSpec {
                function: a.function,
                input: a.input,
            })
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{Schema, Value};
    use presto_expr::{AggregateFunction, AggregateKind};

    fn page(rows: &[(i64, i64)]) -> Page {
        let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)]);
        Page::from_rows(
            &schema,
            &rows
                .iter()
                .map(|&(k, v)| vec![Value::Bigint(k), Value::Bigint(v)])
                .collect::<Vec<_>>(),
        )
    }

    fn sum_agg() -> AggSpec {
        AggSpec {
            function: AggregateFunction::new(AggregateKind::Sum, Some(DataType::Bigint)).unwrap(),
            input: Some(1),
        }
    }

    fn drain(op: &mut HashAggregationOperator) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        while let Some(p) = op.output().unwrap() {
            for i in 0..p.row_count() {
                out.push((p.block(0).i64_at(i), p.block(1).i64_at(i)));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn grouped_sum() {
        let mut op = HashAggregationOperator::new(
            AggPhase::Single,
            vec![0],
            vec![DataType::Bigint],
            vec![sum_agg()],
            false,
        );
        op.add_input(page(&[(1, 10), (2, 20), (1, 5)])).unwrap();
        op.add_input(page(&[(2, 2), (3, 7)])).unwrap();
        op.finish();
        assert_eq!(drain(&mut op), vec![(1, 15), (2, 22), (3, 7)]);
        assert!(op.is_finished());
    }

    #[test]
    fn global_aggregate_with_no_rows() {
        let count = AggSpec {
            function: AggregateFunction::new(AggregateKind::Count, None).unwrap(),
            input: None,
        };
        let mut op =
            HashAggregationOperator::new(AggPhase::Single, vec![], vec![], vec![count], false);
        op.finish();
        let p = op.output().unwrap().expect("one row");
        assert_eq!(p.row_count(), 1);
        assert_eq!(p.block(0).i64_at(0), 0, "COUNT(*) of empty input is 0");
    }

    #[test]
    fn partial_then_final_round_trip() {
        let mut partial = HashAggregationOperator::new(
            AggPhase::Partial,
            vec![0],
            vec![DataType::Bigint],
            vec![AggSpec {
                function: AggregateFunction::new(AggregateKind::Avg, Some(DataType::Bigint))
                    .unwrap(),
                input: Some(1),
            }],
            false,
        );
        partial
            .add_input(page(&[(1, 10), (1, 20), (2, 5)]))
            .unwrap();
        partial.finish();
        let mut intermediate_pages = Vec::new();
        while let Some(p) = partial.output().unwrap() {
            intermediate_pages.push(p);
        }
        // avg intermediate = (sum double, count bigint): 1 group col + 2.
        assert_eq!(intermediate_pages[0].column_count(), 3);
        let mut fin = HashAggregationOperator::new(
            AggPhase::Final,
            vec![0],
            vec![DataType::Bigint],
            vec![AggSpec {
                function: AggregateFunction::new(AggregateKind::Avg, Some(DataType::Bigint))
                    .unwrap(),
                input: Some(1),
            }],
            false,
        );
        for p in intermediate_pages {
            fin.add_input(p).unwrap();
        }
        fin.finish();
        let p = fin.output().unwrap().unwrap();
        let mut rows: Vec<(i64, f64)> = (0..p.row_count())
            .map(|i| (p.block(0).i64_at(i), p.block(1).f64_at(i)))
            .collect();
        rows.sort_by_key(|r| r.0);
        assert_eq!(rows, vec![(1, 15.0), (2, 5.0)]);
    }

    #[test]
    fn spill_and_restore_matches_in_memory() {
        let run = |spill: bool| -> Vec<(i64, i64)> {
            let mut op = HashAggregationOperator::new(
                AggPhase::Single,
                vec![0],
                vec![DataType::Bigint],
                vec![sum_agg()],
                spill,
            );
            let rows: Vec<(i64, i64)> = (0..500).map(|i| (i % 50, i)).collect();
            op.add_input(page(&rows[..250])).unwrap();
            if spill {
                assert!(op.can_revoke_memory());
                let freed = op.revoke_memory().unwrap();
                assert!(freed > 0);
                assert!(op.spilled_bytes() > 0);
                assert_eq!(op.hash.group_count(), 0, "state cleared after spill");
            }
            op.add_input(page(&rows[250..])).unwrap();
            op.finish();
            drain(&mut op)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn null_keys_group_together() {
        let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)]);
        let p = Page::from_rows(
            &schema,
            &[
                vec![Value::Null, Value::Bigint(1)],
                vec![Value::Null, Value::Bigint(2)],
                vec![Value::Bigint(0), Value::Bigint(4)],
            ],
        );
        let mut op = HashAggregationOperator::new(
            AggPhase::Single,
            vec![0],
            vec![DataType::Bigint],
            vec![sum_agg()],
            false,
        );
        op.add_input(p).unwrap();
        op.finish();
        let out = op.output().unwrap().unwrap();
        assert_eq!(out.row_count(), 2, "NULL is one group, 0 is another");
    }

    #[test]
    fn distinct_via_empty_aggregates() {
        let mut op = HashAggregationOperator::new(
            AggPhase::Single,
            vec![0],
            vec![DataType::Bigint],
            vec![],
            false,
        );
        op.add_input(page(&[(1, 0), (1, 0), (2, 0)])).unwrap();
        op.finish();
        let p = op.output().unwrap().unwrap();
        assert_eq!(p.row_count(), 2);
    }
}

#[cfg(test)]
mod dict_cache_tests {
    use super::*;
    use presto_page::blocks::{DictionaryBlock, VarcharBlock};
    use presto_page::Block;
    use std::sync::Arc;

    #[test]
    fn dictionary_grouping_uses_entry_cache() {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["a", "b", "c"])));
        let mut hash = GroupByHash::new(vec![0], vec![DataType::Varchar]);
        // First block: 6 rows over 3 entries — at most 3 slow lookups.
        let p1 = Page::new(vec![Block::Dictionary(DictionaryBlock::new(
            Arc::clone(&dict),
            vec![0, 1, 2, 0, 1, 2],
        ))]);
        let ids1 = hash.group_ids(&p1);
        assert_eq!(ids1, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(
            hash.dict_cache_hits(),
            3,
            "repeat entries served by the cache"
        );
        // Second block shares the dictionary: every row is a cache hit.
        let p2 = Page::new(vec![Block::Dictionary(DictionaryBlock::new(
            Arc::clone(&dict),
            vec![2, 2, 0],
        ))]);
        let ids2 = hash.group_ids(&p2);
        assert_eq!(ids2, vec![2, 2, 0]);
        assert_eq!(hash.dict_cache_hits(), 6);
        assert_eq!(hash.group_count(), 3);
    }

    #[test]
    fn dictionary_and_flat_blocks_agree_on_groups() {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["x", "y"])));
        let mut hash = GroupByHash::new(vec![0], vec![DataType::Varchar]);
        let encoded = Page::new(vec![Block::Dictionary(DictionaryBlock::new(
            dict,
            vec![0, 1],
        ))]);
        let flat = Page::new(vec![Block::from(VarcharBlock::from_strs(&["y", "x"]))]);
        assert_eq!(hash.group_ids(&encoded), vec![0, 1]);
        // Flat rows for the same values must land in the same groups.
        assert_eq!(hash.group_ids(&flat), vec![1, 0]);
        assert_eq!(hash.group_count(), 2);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod flat_hash_tests {
    use super::*;
    use presto_common::Value;
    use presto_page::blocks::LongBlock;
    use presto_page::Block;

    #[test]
    fn rle_keys_resolve_once_per_page() {
        let mut hash = GroupByHash::new(vec![0], vec![DataType::Bigint]);
        let run = |v: i64, n: usize| {
            Page::new(vec![
                Block::rle(Block::single(DataType::Bigint, &Value::Bigint(v)), n),
                Block::rle(Block::single(DataType::Bigint, &Value::Bigint(0)), n),
            ])
        };
        assert_eq!(hash.group_ids(&run(7, 4)), vec![0, 0, 0, 0]);
        assert_eq!(hash.rle_hits(), 4, "whole page served by one lookup");
        assert_eq!(hash.group_ids(&run(8, 2)), vec![1, 1]);
        assert_eq!(hash.rle_hits(), 6);
        // A flat page with the same key lands in the same group.
        let flat = Page::new(vec![
            Block::from(LongBlock::from_values(vec![7, 8])),
            Block::from(LongBlock::from_values(vec![0, 0])),
        ]);
        assert_eq!(hash.group_ids(&flat), vec![0, 1]);
        assert_eq!(hash.rle_hits(), 6, "flat pages bypass the RLE path");
        assert_eq!(hash.group_count(), 2);
    }

    #[test]
    fn rle_null_keys_form_a_group() {
        let mut hash = GroupByHash::new(vec![0], vec![DataType::Bigint]);
        let nulls = Page::new(vec![Block::rle(
            Block::single(DataType::Bigint, &Value::Null),
            3,
        )]);
        assert_eq!(hash.group_ids(&nulls), vec![0, 0, 0]);
        let vals = Page::new(vec![Block::from(LongBlock::from_values(vec![1]))]);
        assert_eq!(hash.group_ids(&vals), vec![1]);
        assert_eq!(hash.group_count(), 2, "NULL groups separately from 1");
    }

    #[test]
    fn memory_bytes_is_exact_flat_layout() {
        let mut hash = GroupByHash::new(vec![0], vec![DataType::Bigint]);
        let keys: Vec<Vec<Value>> = (0..300).map(|i| vec![Value::Bigint(i % 100)]).collect();
        let schema = presto_common::Schema::of(&[("k", DataType::Bigint)]);
        hash.group_ids(&Page::from_rows(&schema, &keys));
        assert_eq!(hash.group_count(), 100);
        // No estimate constants: the total is the sum of the component
        // layouts, each an exact capacity accounting.
        let expected = hash.table.memory_bytes()
            + hash.arena.memory_bytes()
            + hash
                .key_builders
                .iter()
                .map(|b| b.size_in_bytes())
                .sum::<usize>();
        assert_eq!(hash.memory_bytes(), expected);
        assert!(hash.memory_bytes() > 0);
    }

    #[test]
    fn colliding_hash_keys_stay_distinct_groups() {
        // Force two distinct keys through the same table chain by using the
        // arena equality check: varchar keys that FNV-collide are hard to
        // construct, so instead verify via many keys that all groups stay
        // distinct and stable under growth/rehash.
        let mut hash = GroupByHash::new(vec![0], vec![DataType::Varchar]);
        let schema = presto_common::Schema::of(&[("s", DataType::Varchar)]);
        let rows: Vec<Vec<Value>> = (0..2000).map(|i| vec![Value::varchar(format!("key-{i}"))]).collect();
        let first = hash.group_ids(&Page::from_rows(&schema, &rows));
        assert_eq!(hash.group_count(), 2000);
        // Replaying the same input yields identical ids (lookup, no insert).
        let second = hash.group_ids(&Page::from_rows(&schema, &rows));
        assert_eq!(first, second);
        assert_eq!(hash.group_count(), 2000);
    }
}
