//! Statistics rollup: driver → pipeline → task → stage → query (§VII).
//!
//! "Presto collects and stores operator level statistics … for every
//! query" — every [`crate::driver::Driver`] keeps uniform
//! [`OperatorStats`] per operator; when a driver completes (or is
//! cancelled) the worker records its [`DriverStatsReport`] into the
//! task's [`TaskStatsCollector`]. The coordinator snapshots tasks into
//! an immutable [`QueryStats`] tree that EXPLAIN ANALYZE renders.

use parking_lot::Mutex;
use presto_common::{QueryId, TaskId};
use std::time::Duration;

use crate::operator::OperatorStats;

/// One operator's merged statistics, tagged with its telemetry name.
#[derive(Debug, Clone)]
pub struct OperatorStatsEntry {
    pub name: &'static str,
    pub stats: OperatorStats,
}

/// What one driver contributes when it finishes: which pipeline it ran,
/// the thread time it consumed, and its per-operator counters.
#[derive(Debug, Clone)]
pub struct DriverStatsReport {
    pub pipeline: usize,
    pub cpu_time: Duration,
    pub operators: Vec<OperatorStatsEntry>,
}

/// All drivers of one pipeline, merged. Sibling drivers run identical
/// operator chains, so operators merge positionally.
#[derive(Debug, Clone)]
pub struct PipelineStats {
    pub pipeline: usize,
    pub description: String,
    pub driver_count: usize,
    /// Drivers that have completed and reported; equals `driver_count`
    /// once the pipeline fully drains.
    pub drivers_reported: usize,
    pub cpu_time: Duration,
    pub operators: Vec<OperatorStatsEntry>,
}

/// One task's statistics: its pipelines plus the task-level data-plane
/// counters (kept here, not per-driver, because the output buffer and
/// exchange clients are shared across all of the task's drivers).
#[derive(Debug, Clone)]
pub struct TaskStats {
    pub task: TaskId,
    pub cpu_time: Duration,
    pub pipelines: Vec<PipelineStats>,
    /// Pages enqueued into the task's output buffer.
    pub output_pages: u64,
    /// Serialized (possibly compressed) bytes handed to consumers.
    pub output_wire_bytes: u64,
    /// Uncompressed logical bytes of the same pages.
    pub output_logical_bytes: u64,
    /// Bytes this task's exchange clients pulled from upstream tasks.
    pub exchange_bytes_received: u64,
}

/// All tasks of one stage (plan fragment).
#[derive(Debug, Clone)]
pub struct StageStats {
    pub stage: u32,
    pub tasks: Vec<TaskStats>,
}

impl StageStats {
    pub fn cpu_time(&self) -> Duration {
        self.tasks.iter().map(|t| t.cpu_time).sum()
    }

    pub fn output_wire_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.output_wire_bytes).sum()
    }

    pub fn output_logical_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.output_logical_bytes).sum()
    }

    /// Merge pipelines across tasks (all tasks of a fragment compile to
    /// the same pipeline structure), positionally by pipeline index.
    pub fn pipelines_merged(&self) -> Vec<PipelineStats> {
        let mut merged: Vec<PipelineStats> = Vec::new();
        for task in &self.tasks {
            for pipeline in &task.pipelines {
                match merged.iter_mut().find(|p| p.pipeline == pipeline.pipeline) {
                    Some(existing) => {
                        existing.driver_count += pipeline.driver_count;
                        existing.drivers_reported += pipeline.drivers_reported;
                        existing.cpu_time += pipeline.cpu_time;
                        for (slot, entry) in
                            existing.operators.iter_mut().zip(pipeline.operators.iter())
                        {
                            slot.stats.merge(&entry.stats);
                        }
                    }
                    None => merged.push(pipeline.clone()),
                }
            }
        }
        merged.sort_by_key(|p| p.pipeline);
        merged
    }

    /// Find the merged stats of the first operator with `name` (e.g.
    /// "LookupJoin") across every task of the stage.
    pub fn operator(&self, name: &str) -> Option<OperatorStats> {
        let mut found: Option<OperatorStats> = None;
        for pipeline in self.pipelines_merged() {
            for entry in &pipeline.operators {
                if entry.name == name {
                    match &mut found {
                        Some(acc) => acc.merge(&entry.stats),
                        None => found = Some(entry.stats.clone()),
                    }
                }
            }
        }
        found
    }
}

/// Explicit wall-time phase measurements for one query, recorded on the
/// coordinator (§VII): time spent waiting for admission, planning, and
/// executing. For retried queries planning/execution sum over attempts,
/// while queued time covers only the admission wait — retry backoff is
/// execution-side, so retries no longer masquerade as queueing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryPhases {
    pub queued: Duration,
    pub planning: Duration,
    pub execution: Duration,
    /// 1 + retries; 0 when phases were never measured.
    pub attempts: u32,
}

/// The immutable per-query statistics tree assembled on the coordinator
/// when the query completes (or fails).
#[derive(Debug, Clone)]
pub struct QueryStats {
    pub query: QueryId,
    pub stages: Vec<StageStats>,
    /// Total thread time across every driver of every task.
    pub total_cpu: Duration,
    /// Coordinator-observed wall time (admission to completion).
    pub wall_time: Duration,
    /// Coordinator-measured wall-time phases.
    pub phases: QueryPhases,
}

impl QueryStats {
    pub fn stage(&self, id: u32) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.stage == id)
    }
}

/// Per-pipeline metadata the collector needs up front.
#[derive(Debug, Clone)]
pub struct PipelineMeta {
    pub description: String,
    pub driver_count: usize,
}

/// Accumulates [`DriverStatsReport`]s as the worker retires drivers.
/// Lives on [`crate::task::Task`]; safe to snapshot mid-flight.
pub struct TaskStatsCollector {
    pipelines: Vec<PipelineMeta>,
    reports: Mutex<Vec<DriverStatsReport>>,
}

impl TaskStatsCollector {
    pub fn new(pipelines: Vec<PipelineMeta>) -> TaskStatsCollector {
        TaskStatsCollector {
            pipelines,
            reports: Mutex::new(Vec::new()),
        }
    }

    pub fn record(&self, report: DriverStatsReport) {
        self.reports.lock().push(report);
    }

    pub fn drivers_reported(&self) -> usize {
        self.reports.lock().len()
    }

    /// Merge everything recorded so far into per-pipeline rollups.
    pub fn pipelines(&self) -> Vec<PipelineStats> {
        let mut out: Vec<PipelineStats> = self
            .pipelines
            .iter()
            .enumerate()
            .map(|(i, meta)| PipelineStats {
                pipeline: i,
                description: meta.description.clone(),
                driver_count: meta.driver_count,
                drivers_reported: 0,
                cpu_time: Duration::ZERO,
                operators: Vec::new(),
            })
            .collect();
        for report in self.reports.lock().iter() {
            let Some(pipeline) = out.get_mut(report.pipeline) else {
                continue;
            };
            pipeline.drivers_reported += 1;
            pipeline.cpu_time += report.cpu_time;
            if pipeline.operators.is_empty() {
                pipeline.operators = report.operators.clone();
            } else {
                for (slot, entry) in pipeline.operators.iter_mut().zip(report.operators.iter()) {
                    slot.stats.merge(&entry.stats);
                }
            }
        }
        out
    }
}

/// `1234567` → `"1.23M"`; keeps EXPLAIN ANALYZE lines short.
pub fn fmt_count(n: u64) -> String {
    match n {
        0..=9_999 => n.to_string(),
        10_000..=9_999_999 => format!("{:.2}K", n as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2}M", n as f64 / 1e6),
        _ => format!("{:.2}B", n as f64 / 1e9),
    }
}

/// `1536` → `"1.50KB"`.
pub fn fmt_bytes(n: u64) -> String {
    const KB: f64 = 1024.0;
    let n = n as f64;
    if n < KB {
        format!("{n:.0}B")
    } else if n < KB * KB {
        format!("{:.2}KB", n / KB)
    } else if n < KB * KB * KB {
        format!("{:.2}MB", n / (KB * KB))
    } else {
        format!("{:.2}GB", n / (KB * KB * KB))
    }
}

/// `Duration` → `"12.34ms"` with a unit that keeps 2 decimals meaningful.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn entry(name: &'static str, rows: u64) -> OperatorStatsEntry {
        let mut stats = OperatorStats::default();
        stats.output_rows = rows;
        stats.add_counter("hits", rows);
        OperatorStatsEntry { name, stats }
    }

    #[test]
    fn collector_merges_sibling_drivers() {
        let collector = TaskStatsCollector::new(vec![PipelineMeta {
            description: "Scan -> Output".to_string(),
            driver_count: 2,
        }]);
        for rows in [3, 4] {
            collector.record(DriverStatsReport {
                pipeline: 0,
                cpu_time: Duration::from_millis(5),
                operators: vec![entry("ScanFilterProject", rows)],
            });
        }
        let pipelines = collector.pipelines();
        assert_eq!(pipelines.len(), 1);
        assert_eq!(pipelines[0].drivers_reported, 2);
        assert_eq!(pipelines[0].cpu_time, Duration::from_millis(10));
        assert_eq!(pipelines[0].operators[0].stats.output_rows, 7);
        assert_eq!(pipelines[0].operators[0].stats.counter("hits"), Some(7));
    }

    #[test]
    fn stage_merges_across_tasks() {
        use presto_common::{StageId, TaskId};
        let task = |t: u32, rows: u64| TaskStats {
            task: TaskId {
                stage: StageId {
                    query: QueryId(1),
                    stage: 0,
                },
                task: t,
            },
            cpu_time: Duration::from_millis(1),
            pipelines: vec![PipelineStats {
                pipeline: 0,
                description: "p".to_string(),
                driver_count: 1,
                drivers_reported: 1,
                cpu_time: Duration::from_millis(1),
                operators: vec![entry("Aggregate", rows)],
            }],
            output_pages: 1,
            output_wire_bytes: 10,
            output_logical_bytes: 20,
            exchange_bytes_received: 0,
        };
        let stage = StageStats {
            stage: 0,
            tasks: vec![task(0, 5), task(1, 6)],
        };
        assert_eq!(stage.operator("Aggregate").unwrap().output_rows, 11);
        assert_eq!(stage.output_wire_bytes(), 20);
        let merged = stage.pipelines_merged();
        assert_eq!(merged[0].driver_count, 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_count(950), "950");
        assert_eq!(fmt_count(12_345), "12.35K");
        assert_eq!(fmt_bytes(1536), "1.50KB");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
    }
}
