//! Runtime dynamic filtering: push join build-side key domains into
//! probe-side table scans.
//!
//! A hash join's build side, once fully consumed, knows the exact set of
//! key values any probe row must carry to survive the join. For selective
//! joins (a dimension table filtered to a few rows joining a large fact
//! table) that domain is a far stronger predicate than anything the
//! optimizer could derive statically, so the engine collects it at runtime
//! and feeds it back into the probe-side scans (§IV-B3 pushdown applied at
//! execution time):
//!
//! 1. **Collection** — each [`crate::join::HashBuilderOperator`] folds its
//!    build rows into a [`DomainCollector`] (exact value set, overflowing
//!    to min/max, escalating to "no constraint"), reusing the row hashes
//!    the build already computed for the eventual Bloom filter.
//! 2. **Publication** — when the last builder finishes, the merged domains
//!    are reported to the query's [`DynamicFilterRegistry`]. Partitioned
//!    builds merge one report per task; replicated (broadcast) builds
//!    complete on the first report, short-circuiting locally.
//! 3. **Consumption** — probe-side scans hold a [`ScanDynamicFilter`]:
//!    unassigned splits are re-pruned against their min/max summaries,
//!    open readers re-check stripes (via [`presto_connector::DynamicFilter`]),
//!    and surviving pages pass a cheap row-level membership filter before
//!    leaving the scan. Scans wait at most `session.dynamic_filter_wait`
//!    for filters; an expired deadline simply scans unpruned — dynamic
//!    filtering is an optimization, never a correctness dependency.

use parking_lot::{Condvar, Mutex};
use presto_common::{DataType, PlanNodeId, Value};
use presto_connector::{Domain, TupleDomain};
use presto_page::hash::hash_columns;
use presto_page::Page;
use presto_planner::DynamicFilterSpec;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Row hashes retained for the probe-side Bloom filter are capped; a build
/// side past this size publishes domains only.
const MAX_BLOOM_HASHES: usize = 1 << 20;

/// Value sets larger than this are not checked per-row (the Bloom filter
/// covers large sets); ranges and small sets are always checked.
const MAX_ROW_CHECK_SET: usize = 64;

/// Accumulated domain of one build-side join key: an exact value set until
/// `max_values` distinct values, then a min/max range, escalating to `All`
/// (no constraint) for values that are not self-comparable (NaN), which
/// min/max statistics cannot soundly summarize.
#[derive(Debug, Clone)]
pub enum KeyDomain {
    Values(HashSet<Value>),
    Range { min: Value, max: Value },
    All,
}

impl KeyDomain {
    fn new() -> KeyDomain {
        KeyDomain::Values(HashSet::new())
    }

    fn add(&mut self, v: Value, max_values: usize) {
        if v.is_null() {
            return; // NULL keys never join
        }
        if v.sql_cmp(&v) != Some(std::cmp::Ordering::Equal) {
            *self = KeyDomain::All;
            return;
        }
        match self {
            KeyDomain::All => {}
            KeyDomain::Values(set) => {
                set.insert(v);
                if set.len() > max_values {
                    *self = range_of(set.drain());
                }
            }
            KeyDomain::Range { min, max } => {
                if v.sql_cmp(min) == Some(std::cmp::Ordering::Less) {
                    *min = v;
                } else if v.sql_cmp(max) == Some(std::cmp::Ordering::Greater) {
                    *max = v;
                }
            }
        }
    }

    fn merge(self, other: KeyDomain) -> KeyDomain {
        match (self, other) {
            (KeyDomain::All, _) | (_, KeyDomain::All) => KeyDomain::All,
            (KeyDomain::Values(mut a), KeyDomain::Values(b)) => {
                a.extend(b);
                KeyDomain::Values(a)
            }
            (KeyDomain::Values(set), KeyDomain::Range { min, max })
            | (KeyDomain::Range { min, max }, KeyDomain::Values(set)) => {
                let mut r = KeyDomain::Range { min, max };
                for v in set {
                    r.add(v, 0);
                }
                r
            }
            (KeyDomain::Range { min: a0, max: a1 }, KeyDomain::Range { min: b0, max: b1 }) => {
                let mut r = KeyDomain::Range { min: a0, max: a1 };
                r.add(b0, 0);
                r.add(b1, 0);
                r
            }
        }
    }

    /// The pushdown [`Domain`], `None` when unconstrained. The caller is
    /// expected to have normalized an overflowed set via `add`.
    fn to_domain(&self, max_values: usize) -> Option<Domain> {
        match self {
            KeyDomain::All => None,
            KeyDomain::Values(set) if set.len() > max_values => {
                match range_of(set.iter().cloned()) {
                    KeyDomain::Range { min, max } => Some(Domain::Range {
                        min: Some(min),
                        max: Some(max),
                    }),
                    _ => None,
                }
            }
            KeyDomain::Values(set) => {
                let mut values: Vec<Value> = set.iter().cloned().collect();
                values.sort(); // deterministic explain / pruning order
                Some(Domain::Set(values))
            }
            KeyDomain::Range { min, max } => Some(Domain::Range {
                min: Some(min.clone()),
                max: Some(max.clone()),
            }),
        }
    }
}

fn range_of(values: impl Iterator<Item = Value>) -> KeyDomain {
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    for v in values {
        if min
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Less))
        {
            min = Some(v.clone());
        }
        if max
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
        {
            max = Some(v);
        }
    }
    match (min, max) {
        (Some(min), Some(max)) => KeyDomain::Range { min, max },
        _ => KeyDomain::All, // empty input: caller keeps the empty set instead
    }
}

/// Bloom filter over combined build-key row hashes (three probes via
/// double hashing). Sized at ~12 bits/key for a low false-positive rate.
#[derive(Debug, Clone)]
pub struct DfBloom {
    bits: Vec<u64>,
    mask: u64,
}

impl DfBloom {
    pub fn build(hashes: &[u64]) -> DfBloom {
        let nbits = (hashes.len().max(64) * 12).next_power_of_two();
        let mut bits = vec![0u64; nbits / 64];
        let mask = (nbits - 1) as u64;
        for &h in hashes {
            let step = (h >> 32) | 1;
            for k in 0..3u64 {
                let bit = h.wrapping_add(k.wrapping_mul(step)) & mask;
                bits[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        DfBloom { bits, mask }
    }

    #[inline]
    pub fn may_contain(&self, h: u64) -> bool {
        let step = (h >> 32) | 1;
        (0..3u64).all(|k| {
            let bit = h.wrapping_add(k.wrapping_mul(step)) & self.mask;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// One builder's (or one task's) raw contribution: per-key domains plus the
/// combined row hashes, mergeable across builders and tasks.
#[derive(Debug)]
pub struct CollectedDomains {
    pub keys: Vec<KeyDomain>,
    /// `None` once the hash count overflowed [`MAX_BLOOM_HASHES`].
    pub hashes: Option<Vec<u64>>,
    pub rows: u64,
    max_values: usize,
}

impl CollectedDomains {
    pub fn empty(key_count: usize, max_values: usize) -> CollectedDomains {
        CollectedDomains {
            keys: (0..key_count).map(|_| KeyDomain::new()).collect(),
            hashes: Some(Vec::new()),
            rows: 0,
            max_values,
        }
    }

    pub fn merge(mut self, other: CollectedDomains) -> CollectedDomains {
        self.keys = self
            .keys
            .into_iter()
            .zip(other.keys)
            .map(|(a, b)| a.merge(b))
            .collect();
        self.hashes = match (self.hashes, other.hashes) {
            (Some(mut a), Some(b)) if a.len() + b.len() <= MAX_BLOOM_HASHES => {
                a.extend(b);
                Some(a)
            }
            _ => None,
        };
        self.rows += other.rows;
        self
    }

    fn publish(self) -> PublishedFilter {
        let bloom = match &self.hashes {
            Some(h) if !h.is_empty() => Some(DfBloom::build(h)),
            _ => None,
        };
        PublishedFilter {
            domains: self
                .keys
                .iter()
                .map(|k| k.to_domain(self.max_values))
                .collect(),
            bloom,
            rows: self.rows,
        }
    }
}

/// Per-builder collector, filled off the bridge lock as build pages arrive.
#[derive(Debug)]
pub struct DomainCollector {
    key_channels: Vec<usize>,
    key_types: Vec<DataType>,
    collected: CollectedDomains,
}

impl DomainCollector {
    pub fn new(
        key_channels: Vec<usize>,
        key_types: Vec<DataType>,
        max_values: usize,
    ) -> DomainCollector {
        let n = key_channels.len();
        DomainCollector {
            key_channels,
            key_types,
            collected: CollectedDomains::empty(n, max_values),
        }
    }

    /// Fold one non-null-key build row in. `hash` is the row's combined
    /// key hash, exactly as the join build computed it.
    pub fn add_row(&mut self, page: &Page, row: usize, hash: u64) {
        self.collected.rows += 1;
        match &mut self.collected.hashes {
            Some(h) if h.len() < MAX_BLOOM_HASHES => h.push(hash),
            slot => *slot = None,
        }
        let max_values = self.collected.max_values;
        for (slot, (&ch, &dt)) in self
            .collected
            .keys
            .iter_mut()
            .zip(self.key_channels.iter().zip(&self.key_types))
        {
            slot.add(page.block(ch).value_at(dt, row), max_values);
        }
    }

    pub fn finish(self) -> CollectedDomains {
        self.collected
    }
}

/// A completed, merged dynamic filter for one join.
#[derive(Debug)]
pub struct PublishedFilter {
    /// Per build-key domain, aligned with the join's key order; `None`
    /// means that key is unconstrained.
    pub domains: Vec<Option<Domain>>,
    /// Membership filter over combined key hashes in key order.
    pub bloom: Option<DfBloom>,
    /// Build rows with fully non-null keys. Zero proves the join — and so
    /// the probe scan — produces nothing.
    pub rows: u64,
}

/// Cumulative dynamic-filtering counters for a query, rolled into cluster
/// telemetry by the coordinator.
#[derive(Debug, Default)]
pub struct DfTotals {
    pub filters_published: AtomicU64,
    pub splits_pruned: AtomicU64,
    pub stripes_pruned: AtomicU64,
    pub rows_filtered: AtomicU64,
    pub wait_nanos: AtomicU64,
}

struct FilterSlot {
    expected: usize,
    received: usize,
    pending: Option<CollectedDomains>,
    done: Option<Arc<PublishedFilter>>,
}

/// Coordinator-routed rendezvous between join builds (producers) and scans
/// (consumers). One registry serves a whole query; joins are keyed by plan
/// node id.
#[derive(Default)]
pub struct DynamicFilterRegistry {
    slots: Mutex<HashMap<PlanNodeId, FilterSlot>>,
    cond: Condvar,
    totals: DfTotals,
}

impl DynamicFilterRegistry {
    pub fn new() -> Arc<DynamicFilterRegistry> {
        Arc::new(DynamicFilterRegistry::default())
    }

    pub fn totals(&self) -> &DfTotals {
        &self.totals
    }

    /// Declare how many build-side reports complete `join`'s filter: the
    /// join stage's task count for partitioned builds, 1 for replicated
    /// builds (every task sees the full build side, the first wins).
    pub fn register(&self, join: PlanNodeId, expected: usize) {
        let mut slots = self.slots.lock();
        slots.entry(join).or_insert(FilterSlot {
            expected: expected.max(1),
            received: 0,
            pending: None,
            done: None,
        });
    }

    /// Merge one build side's domains in; the report completing the filter
    /// publishes it and wakes waiters. Reports to an unregistered join
    /// complete immediately (single-task execution).
    pub fn report(&self, join: PlanNodeId, collected: CollectedDomains) {
        let mut slots = self.slots.lock();
        let slot = slots.entry(join).or_insert(FilterSlot {
            expected: 1,
            received: 0,
            pending: None,
            done: None,
        });
        if slot.done.is_some() {
            return; // replicated build: later tasks re-report the same domain
        }
        slot.received += 1;
        slot.pending = Some(match slot.pending.take() {
            Some(prev) => prev.merge(collected),
            None => collected,
        });
        if slot.received >= slot.expected {
            let merged = slot.pending.take().expect("just stored");
            slot.done = Some(Arc::new(merged.publish()));
            self.totals.filters_published.fetch_add(1, Ordering::Relaxed);
            drop(slots);
            self.cond.notify_all();
        }
    }

    pub fn completed(&self, join: PlanNodeId) -> Option<Arc<PublishedFilter>> {
        self.slots.lock().get(&join).and_then(|s| s.done.clone())
    }

    pub fn is_complete(&self, join: PlanNodeId) -> bool {
        self.slots
            .lock()
            .get(&join)
            .is_some_and(|s| s.done.is_some())
    }

    /// Block until every listed join's filter is complete or `deadline`
    /// passes; returns whether all completed. Used by the coordinator's
    /// split feeder — operators poll non-blockingly instead.
    pub fn wait_all(&self, joins: &[PlanNodeId], deadline: Instant) -> bool {
        let mut slots = self.slots.lock();
        loop {
            let all = joins
                .iter()
                .all(|j| slots.get(j).is_some_and(|s| s.done.is_some()));
            if all {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.cond.wait_for(&mut slots, deadline - now);
        }
    }

    pub fn filters_published(&self) -> u64 {
        self.totals.filters_published.load(Ordering::Relaxed)
    }
}

/// Whether a split whose per-column min/max summary is `split` can be
/// discarded under the dynamic constraint `dynamic` (both keyed by table
/// column index).
pub fn split_pruned(dynamic: &TupleDomain, split: &TupleDomain) -> bool {
    if dynamic.is_none() {
        return true;
    }
    dynamic.columns().any(|col| {
        match (dynamic.domain(col), split.domain(col)) {
            (Some(d), Some(s)) => d.intersect(s).is_none(),
            _ => false,
        }
    })
}

/// Hand-off from the coordinator into task compilation: the query's
/// registry plus the planner's filter specs.
pub struct TaskDynamicFilters {
    pub registry: Arc<DynamicFilterRegistry>,
    pub specs: Vec<DynamicFilterSpec>,
}

impl TaskDynamicFilters {
    pub fn new(
        registry: Arc<DynamicFilterRegistry>,
        specs: Vec<DynamicFilterSpec>,
    ) -> Arc<TaskDynamicFilters> {
        Arc::new(TaskDynamicFilters { registry, specs })
    }

    pub fn specs_for_scan(&self, scan: PlanNodeId) -> Vec<DynamicFilterSpec> {
        self.specs.iter().filter(|s| s.scan == scan).cloned().collect()
    }

    pub fn produces_for_join(&self, join: PlanNodeId) -> bool {
        self.specs.iter().any(|s| s.join == join)
    }
}

/// Consumer handle held by one scan operator. A scan can receive filters
/// from several joins (a star-schema fact table gets one per dimension);
/// their domains intersect. All counters are also forwarded to the
/// registry's query-wide totals.
pub struct ScanDynamicFilter {
    registry: Arc<DynamicFilterRegistry>,
    specs: Vec<DynamicFilterSpec>,
    started: Instant,
    deadline: Instant,
    ready: AtomicBool,
    /// Cached effective domain, computed once every filter is in (or the
    /// deadline expired).
    cache: Mutex<Option<Option<TupleDomain>>>,
    splits_pruned: AtomicU64,
    stripes_pruned: AtomicU64,
    rows_filtered: AtomicU64,
    wait_nanos: AtomicU64,
}

impl ScanDynamicFilter {
    pub fn new(
        registry: Arc<DynamicFilterRegistry>,
        specs: Vec<DynamicFilterSpec>,
        wait: Duration,
    ) -> Arc<ScanDynamicFilter> {
        let started = Instant::now();
        Arc::new(ScanDynamicFilter {
            registry,
            specs,
            started,
            deadline: started + wait,
            ready: AtomicBool::new(false),
            cache: Mutex::new(None),
            splits_pruned: AtomicU64::new(0),
            stripes_pruned: AtomicU64::new(0),
            rows_filtered: AtomicU64::new(0),
            wait_nanos: AtomicU64::new(0),
        })
    }

    /// Whether the scan may proceed: every expected filter arrived or the
    /// wait deadline expired. Records the wait time on the transition.
    pub fn ready(&self) -> bool {
        if self.ready.load(Ordering::Relaxed) {
            return true;
        }
        let complete = self
            .specs
            .iter()
            .all(|s| self.registry.is_complete(s.join));
        if !complete && Instant::now() < self.deadline {
            return false;
        }
        if self
            .ready
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            let waited = self.started.elapsed().as_nanos() as u64;
            self.wait_nanos.store(waited, Ordering::Relaxed);
            self.registry
                .totals()
                .wait_nanos
                .fetch_add(waited, Ordering::Relaxed);
        }
        true
    }

    /// The effective constraint over *table* column indices, from every
    /// completed filter; `None` when nothing has arrived yet.
    pub fn table_domain(&self) -> Option<TupleDomain> {
        if let Some(cached) = &*self.cache.lock() {
            return cached.clone();
        }
        let domain = self.compute_domain();
        if self.ready.load(Ordering::Relaxed) {
            *self.cache.lock() = Some(domain.clone());
        }
        domain
    }

    fn compute_domain(&self) -> Option<TupleDomain> {
        let mut td = TupleDomain::all();
        let mut any = false;
        for spec in &self.specs {
            let Some(filter) = self.registry.completed(spec.join) else {
                continue;
            };
            any = true;
            if filter.rows == 0 {
                return Some(TupleDomain::none());
            }
            for key in spec.mapped_keys() {
                if let Some(Some(d)) = filter.domains.get(key.key_index) {
                    td.constrain(key.table_column, d.clone());
                }
            }
        }
        if any {
            Some(td)
        } else {
            None
        }
    }

    /// An empty build side proves the probe produces nothing; the scan
    /// becomes a no-op.
    pub fn provably_empty(&self) -> bool {
        self.table_domain().is_some_and(|d| d.is_none())
    }

    /// Row-level membership filter: per-key range / small-set checks plus
    /// the Bloom filter over combined key hashes (only when every key of a
    /// spec maps onto this scan, so the hash is reproducible).
    pub fn prune_rows(&self, page: Page) -> Page {
        let active: Vec<(Arc<PublishedFilter>, &DynamicFilterSpec)> = self
            .specs
            .iter()
            .filter_map(|s| self.registry.completed(s.join).map(|f| (f, s)))
            .collect();
        if active.is_empty() {
            return page;
        }
        let rows = page.row_count();
        let mut keep = vec![true; rows];
        for (filter, spec) in &active {
            if filter.rows == 0 {
                keep.iter_mut().for_each(|k| *k = false);
                break;
            }
            for key in spec.mapped_keys() {
                let Some(Some(d)) = filter.domains.get(key.key_index) else {
                    continue;
                };
                if matches!(d, Domain::Set(v) if v.len() > MAX_ROW_CHECK_SET) {
                    continue; // the Bloom filter covers large sets
                }
                let block = page.block(key.scan_channel).loaded();
                for (r, slot) in keep.iter_mut().enumerate() {
                    if *slot && !d.contains(&block.value_at(key.data_type, r)) {
                        *slot = false;
                    }
                }
            }
            if let Some(bloom) = &filter.bloom {
                if !spec.keys.is_empty() && spec.keys.iter().all(Option::is_some) {
                    let channels: Vec<usize> = spec
                        .keys
                        .iter()
                        .flatten()
                        .map(|k| k.scan_channel)
                        .collect();
                    let hashes = hash_columns(&page, &channels);
                    for (slot, h) in keep.iter_mut().zip(&hashes) {
                        if *slot && !bloom.may_contain(*h) {
                            *slot = false;
                        }
                    }
                }
            }
        }
        let selection: Vec<u32> = keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i as u32))
            .collect();
        let dropped = (rows - selection.len()) as u64;
        if dropped == 0 {
            return page;
        }
        self.rows_filtered.fetch_add(dropped, Ordering::Relaxed);
        self.registry
            .totals()
            .rows_filtered
            .fetch_add(dropped, Ordering::Relaxed);
        page.filter(&selection)
    }

    pub fn note_splits_pruned(&self, n: u64) {
        self.splits_pruned.fetch_add(n, Ordering::Relaxed);
        self.registry
            .totals()
            .splits_pruned
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Counters surfaced through the owning scan operator's stats.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("df_splits_pruned", self.splits_pruned.load(Ordering::Relaxed)),
            ("df_stripes_pruned", self.stripes_pruned.load(Ordering::Relaxed)),
            ("df_rows_filtered", self.rows_filtered.load(Ordering::Relaxed)),
            (
                "df_wait_ms",
                self.wait_nanos.load(Ordering::Relaxed) / 1_000_000,
            ),
        ]
    }
}

impl presto_connector::DynamicFilter for ScanDynamicFilter {
    fn domain(&self) -> Option<TupleDomain> {
        self.table_domain()
    }

    fn record_stripes_pruned(&self, n: u64) {
        self.stripes_pruned.fetch_add(n, Ordering::Relaxed);
        self.registry
            .totals()
            .stripes_pruned
            .fetch_add(n, Ordering::Relaxed);
    }
}

/// Build-side publication config, attached to a [`crate::join::JoinBridge`]
/// when the planner mapped this join's keys onto a probe-side scan.
pub struct DynamicFilterSource {
    pub join: PlanNodeId,
    pub registry: Arc<DynamicFilterRegistry>,
    pub key_types: Vec<DataType>,
    pub max_values: usize,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::Schema;

    fn collect(values: &[i64], max_values: usize) -> CollectedDomains {
        let schema = Schema::of(&[("k", DataType::Bigint)]);
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Bigint(v)]).collect();
        let page = Page::from_rows(&schema, &rows);
        let hashes = hash_columns(&page, &[0]);
        let mut c = DomainCollector::new(vec![0], vec![DataType::Bigint], max_values);
        for (i, &h) in hashes.iter().enumerate() {
            c.add_row(&page, i, h);
        }
        c.finish()
    }

    #[test]
    fn small_build_publishes_exact_set() {
        let f = collect(&[3, 1, 2, 2], 100).publish();
        assert_eq!(f.rows, 4);
        match &f.domains[0] {
            Some(Domain::Set(v)) => {
                assert_eq!(
                    v,
                    &vec![Value::Bigint(1), Value::Bigint(2), Value::Bigint(3)]
                );
            }
            other => panic!("expected set, got {other:?}"),
        }
        assert!(f.bloom.is_some());
    }

    #[test]
    fn overflow_demotes_to_range() {
        let values: Vec<i64> = (0..50).collect();
        let f = collect(&values, 10).publish();
        match &f.domains[0] {
            Some(Domain::Range { min, max }) => {
                assert_eq!(min, &Some(Value::Bigint(0)));
                assert_eq!(max, &Some(Value::Bigint(49)));
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn nan_escalates_to_unconstrained() {
        let mut k = KeyDomain::new();
        k.add(Value::Double(1.0), 10);
        k.add(Value::Double(f64::NAN), 10);
        assert!(matches!(k, KeyDomain::All));
        assert!(k.to_domain(10).is_none());
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let hashes: Vec<u64> = (0..1000u64).map(|v| v.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let bloom = DfBloom::build(&hashes);
        assert!(hashes.iter().all(|&h| bloom.may_contain(h)));
        let misses = (5000..6000u64)
            .map(|v| v.wrapping_mul(0x517CC1B727220A95))
            .filter(|&h| bloom.may_contain(h))
            .count();
        assert!(misses < 100, "false positive rate too high: {misses}/1000");
    }

    #[test]
    fn registry_merges_partitioned_reports() {
        let registry = DynamicFilterRegistry::new();
        let join = PlanNodeId(7);
        registry.register(join, 2);
        registry.report(join, collect(&[1, 2], 100));
        assert!(!registry.is_complete(join));
        registry.report(join, collect(&[3], 100));
        let f = registry.completed(join).unwrap();
        assert_eq!(f.rows, 3);
        match &f.domains[0] {
            Some(Domain::Set(v)) => assert_eq!(v.len(), 3),
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn broadcast_first_report_wins() {
        let registry = DynamicFilterRegistry::new();
        let join = PlanNodeId(9);
        registry.register(join, 1);
        registry.report(join, collect(&[1], 100));
        registry.report(join, collect(&[1], 100)); // replica re-report: dropped
        let f = registry.completed(join).unwrap();
        assert_eq!(f.rows, 1);
        assert_eq!(registry.filters_published(), 1);
    }

    #[test]
    fn wait_all_times_out_without_reports() {
        let registry = DynamicFilterRegistry::new();
        let join = PlanNodeId(1);
        registry.register(join, 1);
        let deadline = Instant::now() + Duration::from_millis(20);
        assert!(!registry.wait_all(&[join], deadline));
        registry.report(join, collect(&[5], 100));
        assert!(registry.wait_all(&[join], Instant::now()));
    }

    #[test]
    fn split_pruning_by_range_overlap() {
        let mut dynamic = TupleDomain::all();
        dynamic.constrain(2, Domain::Set(vec![Value::Bigint(100), Value::Bigint(200)]));
        let mut inside = TupleDomain::all();
        inside.constrain(
            2,
            Domain::Range {
                min: Some(Value::Bigint(150)),
                max: Some(Value::Bigint(250)),
            },
        );
        let mut outside = TupleDomain::all();
        outside.constrain(
            2,
            Domain::Range {
                min: Some(Value::Bigint(300)),
                max: Some(Value::Bigint(400)),
            },
        );
        assert!(!split_pruned(&dynamic, &inside));
        assert!(split_pruned(&dynamic, &outside));
        // An empty dynamic domain prunes everything.
        assert!(split_pruned(&TupleDomain::none(), &inside));
        // A split with no summary is never pruned.
        assert!(!split_pruned(&dynamic, &TupleDomain::all()));
    }

    #[test]
    fn empty_build_side_proves_empty_scan() {
        let registry = DynamicFilterRegistry::new();
        let join = PlanNodeId(3);
        registry.report(join, collect(&[], 100));
        let spec = DynamicFilterSpec {
            join,
            join_fragment: 0,
            scan: PlanNodeId(4),
            scan_fragment: 1,
            broadcast: false,
            keys: vec![None],
        };
        let df = ScanDynamicFilter::new(registry, vec![spec], Duration::from_secs(5));
        assert!(df.ready());
        assert!(df.provably_empty());
    }
}
