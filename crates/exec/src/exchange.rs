//! Exchange operators: the task-side ends of a shuffle.

use presto_common::{Result, TraceBuffer, TraceKind};
use presto_page::Page;
use presto_shuffle::{ExchangeClient, OutputBuffer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::operator::{BlockedReason, Operator};
use crate::partitioned_output::PagePartitioner;

/// Source side: pulls pages from upstream task buffers via an
/// [`ExchangeClient`]. The client is shared (lock-free: all its methods
/// take `&self`) so the coordinator can attach new upstream tasks as they
/// are scheduled and N exchange drivers can poll concurrently.
pub struct ExchangeSourceOperator {
    client: Arc<ExchangeClient>,
    /// Set once the coordinator has registered every upstream task.
    no_more_sources: Arc<std::sync::atomic::AtomicBool>,
    /// Optional timeline: (buffer, pid, tid) for PageDequeue events.
    trace: Option<(Arc<TraceBuffer>, u32, u32)>,
}

impl ExchangeSourceOperator {
    pub fn new(
        client: Arc<ExchangeClient>,
        no_more_sources: Arc<std::sync::atomic::AtomicBool>,
    ) -> ExchangeSourceOperator {
        ExchangeSourceOperator {
            client,
            no_more_sources,
            trace: None,
        }
    }

    pub fn with_trace(mut self, trace: Arc<TraceBuffer>, pid: u32, tid: u32) -> Self {
        self.trace = Some((trace, pid, tid));
        self
    }
}

impl Operator for ExchangeSourceOperator {
    fn name(&self) -> &'static str {
        "ExchangeSource"
    }

    fn needs_input(&self) -> bool {
        false
    }

    fn add_input(&mut self, _page: Page) -> Result<()> {
        unreachable!("exchange sources take no local input")
    }

    fn finish(&mut self) {}

    fn output(&mut self) -> Result<Option<Page>> {
        let page = match self.client.next_page() {
            Some(p) => Some(p),
            None => {
                self.client.poll_progress()?;
                self.client.next_page()
            }
        };
        if let (Some(p), Some((trace, pid, tid))) = (&page, &self.trace) {
            trace.record(
                TraceKind::PageDequeue,
                *pid,
                *tid,
                p.row_count() as u64,
                p.size_in_bytes() as u64,
            );
        }
        Ok(page)
    }

    fn is_finished(&self) -> bool {
        self.no_more_sources.load(Ordering::SeqCst) && self.client.is_finished()
    }

    fn blocked(&self) -> Option<BlockedReason> {
        if self.is_finished() {
            None
        } else {
            Some(BlockedReason::WaitingForInput)
        }
    }

    fn system_memory_bytes(&self) -> usize {
        // The client's input buffer is system memory (shuffle buffers,
        // §IV-F2): charge the wire bytes actually held, not a token.
        self.client.buffered_bytes()
    }
}

/// How the sink routes pages to consumer partitions.
#[derive(Debug, Clone)]
pub enum OutputRouting {
    /// Everything to partition 0.
    Gather,
    /// Hash-partition rows on these channels.
    Hash { channels: Vec<usize> },
    /// Replicate every page to all partitions.
    Broadcast,
    /// Rotate whole pages across partitions.
    RoundRobin,
}

/// Sink side: writes pages into this task's [`OutputBuffer`]. Hash routing
/// goes through a coalescing [`PagePartitioner`] so consumers receive
/// target-sized pages instead of per-input-page fragments.
pub struct PartitionedOutputOperator {
    buffer: Arc<OutputBuffer>,
    routing: OutputRouting,
    round_robin_next: u64,
    input_done: bool,
    rows_out: Arc<AtomicU64>,
    /// Coalescing accumulator for hash routing (lazy: built on first page).
    partitioner: Option<PagePartitioner>,
    /// Flush accumulators at this many rows per partition…
    target_rows: usize,
    /// …or this many bytes, whichever comes first.
    target_bytes: usize,
    /// When several drivers share the buffer, only the last one to finish
    /// closes it.
    close_group: Option<Arc<std::sync::atomic::AtomicUsize>>,
    /// How many sinks share `buffer` (for the memory-accounting split).
    buffer_share: usize,
    /// Optional timeline: (buffer, pid, tid) for PageEnqueue events.
    trace: Option<(Arc<TraceBuffer>, u32, u32)>,
}

impl PartitionedOutputOperator {
    pub fn new(buffer: Arc<OutputBuffer>, routing: OutputRouting) -> PartitionedOutputOperator {
        PartitionedOutputOperator {
            buffer,
            routing,
            round_robin_next: 0,
            input_done: false,
            rows_out: Arc::new(AtomicU64::new(0)),
            partitioner: None,
            target_rows: 1024,
            target_bytes: 1 << 20,
            close_group: None,
            buffer_share: 1,
            trace: None,
        }
    }

    pub fn with_trace(mut self, trace: Arc<TraceBuffer>, pid: u32, tid: u32) -> Self {
        self.trace = Some((trace, pid, tid));
        self
    }

    /// Set the per-partition flush thresholds (`session.target_page_rows` /
    /// target shuffle page bytes).
    pub fn with_targets(mut self, target_rows: usize, target_bytes: usize) -> Self {
        self.target_rows = target_rows.max(1);
        self.target_bytes = target_bytes.max(1);
        self
    }

    /// Share the buffer across a group of sink instances (one per driver);
    /// the buffer closes when the whole group has finished.
    pub fn with_close_group(
        mut self,
        group: Arc<std::sync::atomic::AtomicUsize>,
    ) -> PartitionedOutputOperator {
        self.buffer_share = group.load(Ordering::SeqCst).max(1);
        self.close_group = Some(group);
        self
    }

    pub fn rows_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.rows_out)
    }
}

impl Operator for PartitionedOutputOperator {
    fn name(&self) -> &'static str {
        "PartitionedOutput"
    }

    fn needs_input(&self) -> bool {
        !self.input_done && self.buffer.can_add()
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        self.rows_out
            .fetch_add(page.row_count() as u64, Ordering::Relaxed);
        if let Some((trace, pid, tid)) = &self.trace {
            trace.record(
                TraceKind::PageEnqueue,
                *pid,
                *tid,
                page.row_count() as u64,
                page.size_in_bytes() as u64,
            );
        }
        let consumers = self.buffer.consumer_count();
        match &self.routing {
            OutputRouting::Gather => self.buffer.enqueue(0, &page),
            OutputRouting::Broadcast => self.buffer.broadcast(&page),
            OutputRouting::RoundRobin => {
                // Route only to currently-active partitions so writer tasks
                // can be added dynamically (§IV-E3).
                let active = self.buffer.active_partitions() as u64;
                let p = (self.round_robin_next % active) as usize;
                self.round_robin_next += 1;
                self.buffer.enqueue(p, &page);
            }
            OutputRouting::Hash { channels } => {
                if consumers == 1 {
                    self.buffer.enqueue(0, &page);
                    return Ok(());
                }
                let partitioner = self.partitioner.get_or_insert_with(|| {
                    PagePartitioner::new(
                        channels.clone(),
                        consumers,
                        self.target_rows,
                        self.target_bytes,
                    )
                });
                for (p, out) in partitioner.add_page(page) {
                    self.buffer.enqueue(p, &out);
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self) {
        if !self.input_done {
            self.input_done = true;
            // Flush rows still sitting in the coalescing accumulators.
            if let Some(partitioner) = &mut self.partitioner {
                for (p, out) in partitioner.finish() {
                    self.buffer.enqueue(p, &out);
                }
            }
            match &self.close_group {
                None => self.buffer.set_no_more_pages(),
                Some(group) => {
                    if group.fetch_sub(1, Ordering::SeqCst) == 1 {
                        self.buffer.set_no_more_pages();
                    }
                }
            }
        }
    }

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(None) // sink
    }

    fn is_finished(&self) -> bool {
        self.input_done
    }

    fn blocked(&self) -> Option<BlockedReason> {
        if !self.input_done && !self.buffer.can_add() {
            Some(BlockedReason::OutputFull)
        } else {
            None
        }
    }

    fn system_memory_bytes(&self) -> usize {
        // Retained shuffle output is system memory (§IV-F2's example):
        // rows accumulating in this sink's partitioner, plus this sink's
        // share of the wire bytes the shared buffer retains.
        let pending = self
            .partitioner
            .as_ref()
            .map_or(0, PagePartitioner::retained_bytes);
        pending + self.buffer.retained_bytes() / self.buffer_share
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};
    use std::time::Duration;

    fn page(vals: &[i64]) -> Page {
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        Page::from_rows(
            &schema,
            &vals
                .iter()
                .map(|&v| vec![Value::Bigint(v)])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn hash_routing_is_deterministic_and_complete() {
        let buffer = OutputBuffer::new(4, 1 << 20);
        let mut sink = PartitionedOutputOperator::new(
            Arc::clone(&buffer),
            OutputRouting::Hash { channels: vec![0] },
        );
        sink.add_input(page(&(0..100).collect::<Vec<_>>())).unwrap();
        sink.finish();
        // All 100 rows arrive across the 4 partitions; same key → same part.
        let mut total = 0;
        for p in 0..4 {
            let r = buffer.poll(p, 0, usize::MAX);
            for bytes in &r.pages {
                total += presto_page::decode_framed_page(bytes).unwrap().row_count();
            }
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn hash_routing_coalesces_across_input_pages() {
        let buffer = OutputBuffer::new(4, 1 << 20);
        let mut sink = PartitionedOutputOperator::new(
            Arc::clone(&buffer),
            OutputRouting::Hash { channels: vec![0] },
        )
        .with_targets(64, usize::MAX);
        // 64 pages of 16 rows each: the old path would emit ~256 fragments
        // of ~4 rows; coalescing emits ~16 pages of ~64 rows.
        for i in 0..64 {
            sink.add_input(page(&(i * 16..(i + 1) * 16).collect::<Vec<_>>()))
                .unwrap();
        }
        assert!(
            sink.system_memory_bytes() > 0,
            "pending accumulator rows must be charged to the system pool"
        );
        sink.finish();
        let mut total_rows = 0usize;
        let mut total_pages = 0usize;
        for p in 0..4 {
            for bytes in &buffer.poll(p, 0, usize::MAX).pages {
                let decoded = presto_page::decode_framed_page(bytes).unwrap();
                total_rows += decoded.row_count();
                total_pages += 1;
            }
        }
        assert_eq!(total_rows, 1024);
        assert!(total_pages <= 24, "expected coalesced pages, got {total_pages}");
        let mean = total_rows / total_pages;
        assert!(mean >= 32, "mean delivered page rows {mean} < target/2");
    }

    #[test]
    fn sink_blocks_on_full_buffer() {
        let buffer = OutputBuffer::new(1, 32);
        let mut sink = PartitionedOutputOperator::new(Arc::clone(&buffer), OutputRouting::Gather);
        while sink.needs_input() {
            sink.add_input(page(&[1, 2, 3])).unwrap();
        }
        assert_eq!(sink.blocked(), Some(BlockedReason::OutputFull));
        // Draining unblocks.
        let r = buffer.poll(0, 0, usize::MAX);
        buffer.poll(0, r.next_token, usize::MAX);
        assert!(sink.needs_input());
    }

    #[test]
    fn exchange_source_streams_until_finished() {
        let upstream = OutputBuffer::new(1, 1 << 20);
        upstream.enqueue(0, &page(&[1]));
        upstream.enqueue(0, &page(&[2]));
        upstream.set_no_more_pages();
        let client = Arc::new(ExchangeClient::new(1 << 20, Duration::ZERO));
        client.add_source(upstream, 0);
        let no_more = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let mut src = ExchangeSourceOperator::new(client, no_more);
        let mut rows = 0;
        while !src.is_finished() {
            if let Some(p) = src.output().unwrap() {
                rows += p.row_count();
            }
        }
        assert_eq!(rows, 2);
    }

    #[test]
    fn round_robin_spreads_pages() {
        let buffer = OutputBuffer::new(3, 1 << 20);
        let mut sink =
            PartitionedOutputOperator::new(Arc::clone(&buffer), OutputRouting::RoundRobin);
        for _ in 0..6 {
            sink.add_input(page(&[1])).unwrap();
        }
        sink.finish();
        for p in 0..3 {
            assert_eq!(buffer.poll(p, 0, usize::MAX).pages.len(), 2);
        }
    }
}
