//! The driver loop (§IV-E1).
//!
//! "Once a split is assigned to a thread, it is executed by the driver
//! loop … It is much more amenable to cooperative multi-tasking, since
//! operators can be quickly brought to a known state before yielding the
//! thread instead of blocking indefinitely … Every iteration of the loop
//! moves data between all pairs of operators that can make progress."

use presto_common::{PrestoError, Result};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::memory::{ReservationResult, TaskMemoryContext};
use crate::operator::{BlockedReason, Operator, OperatorStats};

/// Outcome of one driver quanta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverState {
    /// Made progress and can run again immediately (quanta expired).
    Ready,
    /// Cannot progress until the given condition clears.
    Blocked(BlockedReason),
    /// All operators finished.
    Finished,
}

/// A linear chain of operators executed by one thread at a time.
pub struct Driver {
    operators: Vec<Box<dyn Operator>>,
    finish_notified: Vec<bool>,
    memory: Arc<TaskMemoryContext>,
    stats: Vec<OperatorStats>,
    cpu_time: Duration,
}

impl Driver {
    pub fn new(operators: Vec<Box<dyn Operator>>, memory: Arc<TaskMemoryContext>) -> Driver {
        assert!(!operators.is_empty());
        let n = operators.len();
        Driver {
            operators,
            finish_notified: vec![false; n],
            memory,
            stats: vec![OperatorStats::default(); n],
            cpu_time: Duration::ZERO,
        }
    }

    /// Total thread time this driver has consumed (the scheduler's
    /// accounting input, §IV-F1).
    pub fn cpu_time(&self) -> Duration {
        self.cpu_time
    }

    /// Per-operator statistics (name, counters).
    pub fn operator_stats(&self) -> Vec<(&'static str, OperatorStats)> {
        self.operators
            .iter()
            .map(|o| o.name())
            .zip(self.stats.iter().copied())
            .collect()
    }

    pub fn is_finished(&self) -> bool {
        self.operators
            .last()
            .map(|o| o.is_finished())
            .unwrap_or(true)
    }

    /// Run for up to `quanta`, then yield (§IV-F1: "Any given split is only
    /// allowed to run on a thread for a maximum quanta of one second").
    pub fn process(&mut self, quanta: Duration) -> Result<DriverState> {
        let start = Instant::now();
        let result = self.process_until(start, quanta);
        self.cpu_time += start.elapsed();
        result
    }

    fn process_until(&mut self, start: Instant, quanta: Duration) -> Result<DriverState> {
        loop {
            if self.is_finished() {
                self.memory.release_all();
                return Ok(DriverState::Finished);
            }
            let mut progressed = false;
            let n = self.operators.len();
            // Move pages between every adjacent pair that can progress.
            for i in 0..n - 1 {
                let (upstream, downstream) = {
                    let (a, b) = self.operators.split_at_mut(i + 1);
                    (&mut a[i], &mut b[0])
                };
                if downstream.needs_input() && !upstream.is_finished() {
                    if let Some(page) = upstream.output()? {
                        self.stats[i].record_output(&page);
                        self.stats[i + 1].record_input(&page);
                        downstream.add_input(page)?;
                        progressed = true;
                    }
                }
                // Drain remaining output even after the upstream finished
                // accepting input.
                if upstream.is_finished() && !self.finish_notified[i + 1] {
                    // One more drain attempt before propagating finish.
                    if downstream.needs_input() {
                        if let Some(page) = upstream.output()? {
                            self.stats[i].record_output(&page);
                            self.stats[i + 1].record_input(&page);
                            downstream.add_input(page)?;
                            progressed = true;
                            continue;
                        }
                    }
                    downstream.finish();
                    self.finish_notified[i + 1] = true;
                    progressed = true;
                }
            }
            // Let the sink flush (e.g. TableWriter commit happens in
            // output(); PartitionedOutput returns None immediately).
            if let Some(page) = self.operators[n - 1].output()? {
                // The last operator should be a sink; any page it produces
                // has nowhere to go — that is a pipeline construction bug.
                return Err(PrestoError::internal(format!(
                    "sink operator {} produced a page of {} rows",
                    self.operators[n - 1].name(),
                    page.row_count()
                )));
            }
            // Reconcile memory with the pool.
            let user: usize = self.operators.iter().map(|o| o.user_memory_bytes()).sum();
            let system: usize = self.operators.iter().map(|o| o.system_memory_bytes()).sum();
            if self.memory.update(user, system)? == ReservationResult::Blocked {
                return Ok(DriverState::Blocked(BlockedReason::Memory));
            }
            if !progressed {
                // Determine why we are stuck.
                if self.is_finished() {
                    self.memory.release_all();
                    return Ok(DriverState::Finished);
                }
                for op in &self.operators {
                    if let Some(reason) = op.blocked() {
                        return Ok(DriverState::Blocked(reason));
                    }
                }
                // No operator reports blocked but nothing moved: the source
                // is dry but unfinished — treat as waiting for input.
                return Ok(DriverState::Blocked(BlockedReason::WaitingForInput));
            }
            if start.elapsed() >= quanta {
                return Ok(DriverState::Ready);
            }
        }
    }

    /// Spill revocable state, largest consumer first (§IV-F2 revocation).
    /// Returns bytes freed.
    pub fn revoke_memory(&mut self) -> Result<u64> {
        let mut order: Vec<usize> = (0..self.operators.len())
            .filter(|&i| self.operators[i].can_revoke_memory())
            .collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.operators[i].user_memory_bytes()));
        let mut freed = 0;
        for i in order {
            freed += self.operators[i].revoke_memory()?;
        }
        Ok(freed)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::filter::{LimitOperator, ValuesOperator};
    use crate::memory::UnlimitedPool;
    use presto_common::{DataType, QueryId, Schema, Value};
    use presto_page::Page;

    /// Test sink collecting pages into shared storage.
    pub struct CollectorSink {
        pub pages: Arc<parking_lot::Mutex<Vec<Page>>>,
        done: bool,
    }

    impl CollectorSink {
        pub fn new() -> (CollectorSink, Arc<parking_lot::Mutex<Vec<Page>>>) {
            let pages = Arc::new(parking_lot::Mutex::new(Vec::new()));
            (
                CollectorSink {
                    pages: Arc::clone(&pages),
                    done: false,
                },
                pages,
            )
        }
    }

    impl crate::operator::Operator for CollectorSink {
        fn name(&self) -> &'static str {
            "Collector"
        }
        fn needs_input(&self) -> bool {
            !self.done
        }
        fn add_input(&mut self, page: Page) -> Result<()> {
            self.pages.lock().push(page);
            Ok(())
        }
        fn finish(&mut self) {
            self.done = true;
        }
        fn output(&mut self) -> Result<Option<Page>> {
            Ok(None)
        }
        fn is_finished(&self) -> bool {
            self.done
        }
    }

    fn page(n: i64) -> Page {
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        Page::from_rows(
            &schema,
            &(0..n).map(|i| vec![Value::Bigint(i)]).collect::<Vec<_>>(),
        )
    }

    fn memory() -> Arc<TaskMemoryContext> {
        TaskMemoryContext::new(QueryId(0), Arc::new(UnlimitedPool))
    }

    #[test]
    fn runs_pipeline_to_completion() {
        let (sink, pages) = CollectorSink::new();
        let mut driver = Driver::new(
            vec![
                Box::new(ValuesOperator::new(vec![page(10), page(5)])),
                Box::new(LimitOperator::new(12)),
                Box::new(sink),
            ],
            memory(),
        );
        let state = driver.process(Duration::from_secs(1)).unwrap();
        assert_eq!(state, DriverState::Finished);
        let total: usize = pages.lock().iter().map(Page::row_count).sum();
        assert_eq!(total, 12);
        assert!(driver.is_finished());
        assert!(driver.cpu_time() > Duration::ZERO);
    }

    #[test]
    fn yields_on_quanta_expiry() {
        // Many pages + zero quanta: the driver must yield Ready, not finish.
        let (sink, _) = CollectorSink::new();
        let mut driver = Driver::new(
            vec![
                Box::new(ValuesOperator::new((0..1000).map(|_| page(10)).collect())),
                Box::new(sink),
            ],
            memory(),
        );
        let state = driver.process(Duration::ZERO).unwrap();
        assert_eq!(state, DriverState::Ready);
        // Keep running; it finishes eventually.
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100_000);
            match driver.process(Duration::from_millis(1)).unwrap() {
                DriverState::Finished => break,
                DriverState::Ready => continue,
                b => panic!("unexpected {b:?}"),
            }
        }
    }

    #[test]
    fn operator_stats_flow() {
        let (sink, _) = CollectorSink::new();
        let mut driver = Driver::new(
            vec![Box::new(ValuesOperator::new(vec![page(7)])), Box::new(sink)],
            memory(),
        );
        driver.process(Duration::from_secs(1)).unwrap();
        let stats = driver.operator_stats();
        assert_eq!(stats[0].1.output_rows, 7);
        assert_eq!(stats[1].1.input_rows, 7);
    }
}
