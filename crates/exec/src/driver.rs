//! The driver loop (§IV-E1).
//!
//! "Once a split is assigned to a thread, it is executed by the driver
//! loop … It is much more amenable to cooperative multi-tasking, since
//! operators can be quickly brought to a known state before yielding the
//! thread instead of blocking indefinitely … Every iteration of the loop
//! moves data between all pairs of operators that can make progress."

use presto_common::{PrestoError, Result};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::memory::{ReservationResult, TaskMemoryContext};
use crate::operator::{BlockedReason, Operator, OperatorStats};

/// Outcome of one driver quanta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverState {
    /// Made progress and can run again immediately (quanta expired).
    Ready,
    /// Cannot progress until the given condition clears.
    Blocked(BlockedReason),
    /// All operators finished.
    Finished,
}

/// A linear chain of operators executed by one thread at a time.
pub struct Driver {
    operators: Vec<Box<dyn Operator>>,
    finish_notified: Vec<bool>,
    memory: Arc<TaskMemoryContext>,
    stats: Vec<OperatorStats>,
    cpu_time: Duration,
    /// Index of the owning pipeline inside the task (for rollup grouping).
    pipeline: usize,
    /// When false the per-operator timing hooks are skipped entirely (no
    /// extra clock reads on the page-transfer path); flow counters are
    /// always kept — they are just integer adds.
    stats_enabled: bool,
    /// Set when `process` returns Blocked: the park began then, for this
    /// reason, attributable to this operator. Charged on the next entry.
    last_block: Option<(Instant, BlockedReason, usize)>,
}

impl Driver {
    pub fn new(operators: Vec<Box<dyn Operator>>, memory: Arc<TaskMemoryContext>) -> Driver {
        assert!(!operators.is_empty());
        let n = operators.len();
        Driver {
            operators,
            finish_notified: vec![false; n],
            memory,
            stats: vec![OperatorStats::default(); n],
            cpu_time: Duration::ZERO,
            pipeline: 0,
            stats_enabled: true,
            last_block: None,
        }
    }

    /// Tag this driver with its pipeline index within the task.
    pub fn with_pipeline(mut self, pipeline: usize) -> Driver {
        self.pipeline = pipeline;
        self
    }

    pub fn pipeline(&self) -> usize {
        self.pipeline
    }

    /// Toggle the per-operator CPU/blocked timing hooks (used by the
    /// overhead benchmark; defaults to on).
    pub fn set_stats_enabled(&mut self, enabled: bool) {
        self.stats_enabled = enabled;
    }

    /// Total thread time this driver has consumed (the scheduler's
    /// accounting input, §IV-F1).
    pub fn cpu_time(&self) -> Duration {
        self.cpu_time
    }

    /// Per-operator statistics (name, counters), with each operator's live
    /// [`Operator::counters`] folded in.
    pub fn operator_stats(&self) -> Vec<(&'static str, OperatorStats)> {
        self.operators
            .iter()
            .zip(self.stats.iter())
            .map(|(op, stats)| {
                let mut stats = stats.clone();
                for (name, value) in op.counters() {
                    stats.add_counter(name, value);
                }
                (op.name(), stats)
            })
            .collect()
    }

    /// Snapshot this driver's contribution for the task-level rollup.
    pub fn stats_report(&self) -> crate::stats::DriverStatsReport {
        crate::stats::DriverStatsReport {
            pipeline: self.pipeline,
            cpu_time: self.cpu_time,
            operators: self
                .operator_stats()
                .into_iter()
                .map(|(name, stats)| crate::stats::OperatorStatsEntry {
                    name,
                    stats,
                })
                .collect(),
        }
    }

    pub fn is_finished(&self) -> bool {
        self.operators
            .last()
            .map(|o| o.is_finished())
            .unwrap_or(true)
    }

    /// Run for up to `quanta`, then yield (§IV-F1: "Any given split is only
    /// allowed to run on a thread for a maximum quanta of one second").
    pub fn process(&mut self, quanta: Duration) -> Result<DriverState> {
        let start = Instant::now();
        // Attribute the time we spent parked since the last Blocked return
        // to the operator that caused it.
        if let Some((since, reason, op)) = self.last_block.take() {
            if self.stats_enabled {
                self.stats[op].record_blocked(reason, start.duration_since(since));
            }
        }
        // Service a pending revocation request first: the arbiter flagged
        // this driver's revocable reservation to unblock someone else
        // (possibly another query), so spill before making more progress.
        if self.memory.revocation().take_request() {
            self.revoke_memory()?;
        }
        let result = self.process_until(start, quanta);
        self.cpu_time += start.elapsed();
        if let Ok(DriverState::Blocked(reason)) = &result {
            self.last_block = Some((Instant::now(), *reason, self.blocked_operator(*reason)));
        }
        result
    }

    /// Which operator to blame for a Blocked return: the memory hog for
    /// memory waits, the operator reporting blocked otherwise, the source
    /// as a fallback.
    fn blocked_operator(&self, reason: BlockedReason) -> usize {
        if reason == BlockedReason::Memory {
            return (0..self.operators.len())
                .max_by_key(|&i| {
                    self.operators[i].user_memory_bytes() + self.operators[i].system_memory_bytes()
                })
                .unwrap_or(0);
        }
        self.operators
            .iter()
            .position(|op| op.blocked() == Some(reason))
            .unwrap_or(0)
    }

    /// Transfer one page from operator `i` to `i+1`, timing both sides
    /// when stats are enabled. Returns whether a page moved.
    fn transfer(&mut self, i: usize) -> Result<bool> {
        let (upstream, downstream) = {
            let (a, b) = self.operators.split_at_mut(i + 1);
            (&mut a[i], &mut b[0])
        };
        if self.stats_enabled {
            let t0 = Instant::now();
            let page = upstream.output()?;
            let t1 = Instant::now();
            self.stats[i].cpu += t1 - t0;
            let Some(page) = page else { return Ok(false) };
            self.stats[i].record_output(&page);
            self.stats[i + 1].record_input(&page);
            downstream.add_input(page)?;
            self.stats[i + 1].cpu += t1.elapsed();
        } else {
            let Some(page) = upstream.output()? else {
                return Ok(false);
            };
            self.stats[i].record_output(&page);
            self.stats[i + 1].record_input(&page);
            downstream.add_input(page)?;
        }
        Ok(true)
    }

    fn process_until(&mut self, start: Instant, quanta: Duration) -> Result<DriverState> {
        loop {
            if self.is_finished() {
                self.memory.release_all();
                return Ok(DriverState::Finished);
            }
            let mut progressed = false;
            let n = self.operators.len();
            // Move pages between every adjacent pair that can progress.
            for i in 0..n - 1 {
                if self.operators[i + 1].needs_input() && !self.operators[i].is_finished() {
                    progressed |= self.transfer(i)?;
                }
                // Drain remaining output even after the upstream finished
                // accepting input.
                if self.operators[i].is_finished() && !self.finish_notified[i + 1] {
                    // One more drain attempt before propagating finish.
                    if self.operators[i + 1].needs_input() && self.transfer(i)? {
                        progressed = true;
                        continue;
                    }
                    self.operators[i + 1].finish();
                    self.finish_notified[i + 1] = true;
                    progressed = true;
                }
            }
            // Let the sink flush (e.g. TableWriter commit happens in
            // output(); PartitionedOutput returns None immediately).
            let sink_t0 = self.stats_enabled.then(Instant::now);
            let sink_page = self.operators[n - 1].output()?;
            if let Some(t0) = sink_t0 {
                self.stats[n - 1].cpu += t0.elapsed();
            }
            if let Some(page) = sink_page {
                // The last operator should be a sink; any page it produces
                // has nowhere to go — that is a pipeline construction bug.
                return Err(PrestoError::internal(format!(
                    "sink operator {} produced a page of {} rows",
                    self.operators[n - 1].name(),
                    page.row_count()
                )));
            }
            // Reconcile memory with the pool, tracking per-operator peaks
            // and publishing how much of the reservation is revocable
            // (spillable) so the pool's arbiter can request spill instead
            // of promoting or killing (§IV-F2).
            let mut user = 0usize;
            let mut system = 0usize;
            let mut revocable = 0u64;
            for (op, stats) in self.operators.iter().zip(self.stats.iter_mut()) {
                let u = op.user_memory_bytes();
                let s = op.system_memory_bytes();
                user += u;
                system += s;
                if op.can_revoke_memory() {
                    revocable += u as u64;
                }
                stats.peak_user_memory_bytes = stats.peak_user_memory_bytes.max(u as u64);
                stats.peak_system_memory_bytes = stats.peak_system_memory_bytes.max(s as u64);
            }
            self.memory.revocation().set_bytes(revocable);
            if self.memory.update(user, system)? == ReservationResult::Blocked {
                return Ok(DriverState::Blocked(BlockedReason::Memory));
            }
            if !progressed {
                // Determine why we are stuck.
                if self.is_finished() {
                    self.memory.release_all();
                    return Ok(DriverState::Finished);
                }
                for op in &self.operators {
                    if let Some(reason) = op.blocked() {
                        return Ok(DriverState::Blocked(reason));
                    }
                }
                // No operator reports blocked but nothing moved: the source
                // is dry but unfinished — treat as waiting for input.
                return Ok(DriverState::Blocked(BlockedReason::WaitingForInput));
            }
            if start.elapsed() >= quanta {
                return Ok(DriverState::Ready);
            }
        }
    }

    /// Spill revocable state, largest consumer first (§IV-F2 revocation).
    /// Returns bytes freed.
    pub fn revoke_memory(&mut self) -> Result<u64> {
        let mut order: Vec<usize> = (0..self.operators.len())
            .filter(|&i| self.operators[i].can_revoke_memory())
            .collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.operators[i].user_memory_bytes()));
        let mut freed = 0;
        for i in order {
            freed += self.operators[i].revoke_memory()?;
        }
        // Refresh the published revocable balance so the arbiter does not
        // request again based on the pre-spill figure.
        let remaining: u64 = self
            .operators
            .iter()
            .filter(|op| op.can_revoke_memory())
            .map(|op| op.user_memory_bytes() as u64)
            .sum();
        self.memory.revocation().set_bytes(remaining);
        Ok(freed)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::filter::{LimitOperator, ValuesOperator};
    use crate::memory::UnlimitedPool;
    use presto_common::{DataType, QueryId, Schema, Value};
    use presto_page::Page;

    /// Test sink collecting pages into shared storage.
    pub struct CollectorSink {
        pub pages: Arc<parking_lot::Mutex<Vec<Page>>>,
        done: bool,
    }

    impl CollectorSink {
        pub fn new() -> (CollectorSink, Arc<parking_lot::Mutex<Vec<Page>>>) {
            let pages = Arc::new(parking_lot::Mutex::new(Vec::new()));
            (
                CollectorSink {
                    pages: Arc::clone(&pages),
                    done: false,
                },
                pages,
            )
        }
    }

    impl crate::operator::Operator for CollectorSink {
        fn name(&self) -> &'static str {
            "Collector"
        }
        fn needs_input(&self) -> bool {
            !self.done
        }
        fn add_input(&mut self, page: Page) -> Result<()> {
            self.pages.lock().push(page);
            Ok(())
        }
        fn finish(&mut self) {
            self.done = true;
        }
        fn output(&mut self) -> Result<Option<Page>> {
            Ok(None)
        }
        fn is_finished(&self) -> bool {
            self.done
        }
    }

    fn page(n: i64) -> Page {
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        Page::from_rows(
            &schema,
            &(0..n).map(|i| vec![Value::Bigint(i)]).collect::<Vec<_>>(),
        )
    }

    fn memory() -> Arc<TaskMemoryContext> {
        TaskMemoryContext::new(QueryId(0), Arc::new(UnlimitedPool))
    }

    #[test]
    fn runs_pipeline_to_completion() {
        let (sink, pages) = CollectorSink::new();
        let mut driver = Driver::new(
            vec![
                Box::new(ValuesOperator::new(vec![page(10), page(5)])),
                Box::new(LimitOperator::new(12)),
                Box::new(sink),
            ],
            memory(),
        );
        let state = driver.process(Duration::from_secs(1)).unwrap();
        assert_eq!(state, DriverState::Finished);
        let total: usize = pages.lock().iter().map(Page::row_count).sum();
        assert_eq!(total, 12);
        assert!(driver.is_finished());
        assert!(driver.cpu_time() > Duration::ZERO);
    }

    #[test]
    fn yields_on_quanta_expiry() {
        // Many pages + zero quanta: the driver must yield Ready, not finish.
        let (sink, _) = CollectorSink::new();
        let mut driver = Driver::new(
            vec![
                Box::new(ValuesOperator::new((0..1000).map(|_| page(10)).collect())),
                Box::new(sink),
            ],
            memory(),
        );
        let state = driver.process(Duration::ZERO).unwrap();
        assert_eq!(state, DriverState::Ready);
        // Keep running; it finishes eventually.
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100_000);
            match driver.process(Duration::from_millis(1)).unwrap() {
                DriverState::Finished => break,
                DriverState::Ready => continue,
                b => panic!("unexpected {b:?}"),
            }
        }
    }

    #[test]
    fn operator_stats_flow() {
        let (sink, _) = CollectorSink::new();
        let mut driver = Driver::new(
            vec![Box::new(ValuesOperator::new(vec![page(7)])), Box::new(sink)],
            memory(),
        );
        driver.process(Duration::from_secs(1)).unwrap();
        let stats = driver.operator_stats();
        assert_eq!(stats[0].1.output_rows, 7);
        assert_eq!(stats[1].1.input_rows, 7);
    }
}
