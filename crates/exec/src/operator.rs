//! The operator interface.
//!
//! "A pipeline consists of a chain of operators, each of which performs a
//! single, well-defined computation on the data" (§IV-D). Operators are
//! page-in/page-out state machines; the driver moves pages between them and
//! reacts to blocked states without parking threads.

use presto_common::Result;
use presto_page::Page;
use std::time::Duration;

/// Why an operator cannot currently make progress. The driver propagates
/// the reason so the worker scheduler can account for it (§IV-F1: "When
/// output buffers are full … input buffers are empty … or the system is out
/// of memory, the local scheduler simply switches to processing another
/// task").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedReason {
    /// Downstream cannot absorb output (full output buffer).
    OutputFull,
    /// Upstream has produced nothing yet (empty exchange, no splits).
    WaitingForInput,
    /// Waiting on a sibling pipeline (e.g. hash-join build).
    WaitingForBuild,
    /// Memory pool exhausted.
    Memory,
}

/// One computation in a pipeline.
pub trait Operator: Send {
    /// Short name for telemetry ("ScanFilterProject", "LookupJoin", …).
    fn name(&self) -> &'static str;

    /// Whether the operator can accept a page right now.
    fn needs_input(&self) -> bool;

    /// Feed one page. Only valid when [`Operator::needs_input`] is true.
    fn add_input(&mut self, page: Page) -> Result<()>;

    /// Signal that no more input will arrive.
    fn finish(&mut self);

    /// Produce an output page if one is ready.
    fn output(&mut self) -> Result<Option<Page>>;

    /// Fully done: no more output will ever be produced.
    fn is_finished(&self) -> bool;

    /// If the operator cannot progress, why.
    fn blocked(&self) -> Option<BlockedReason> {
        None
    }

    /// *User* memory retained (proportional to data, §IV-F2): hash tables,
    /// sort buffers, group state.
    fn user_memory_bytes(&self) -> usize {
        0
    }

    /// *System* memory retained (implementation byproduct): shuffle and
    /// I/O buffers.
    fn system_memory_bytes(&self) -> usize {
        0
    }

    /// Whether this operator can free memory by spilling.
    fn can_revoke_memory(&self) -> bool {
        false
    }

    /// Spill revocable state to disk; returns bytes freed (§IV-F2
    /// "Revocation is processed by spilling state to disk").
    fn revoke_memory(&mut self) -> Result<u64> {
        Ok(0)
    }

    /// Operator-specific counters (flathash RLE hits, spill bytes, splits
    /// processed, …), snapshotted by the driver into [`OperatorStats`].
    /// Counter values are cumulative; names should be stable identifiers.
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// Uniform per-operator counters every driver keeps, merged upward to
/// pipeline, task, and stage level (§VII "we collect and store operator
/// level statistics … for every query").
#[derive(Debug, Default, Clone)]
pub struct OperatorStats {
    pub input_rows: u64,
    pub input_bytes: u64,
    pub input_pages: u64,
    pub output_rows: u64,
    pub output_bytes: u64,
    pub output_pages: u64,
    /// Thread time spent inside this operator's `output`/`add_input`
    /// (measured by the driver's timing hooks).
    pub cpu: Duration,
    /// Time the driver sat parked because this operator was starved of
    /// upstream input (WaitingForInput / WaitingForBuild).
    pub blocked_on_input: Duration,
    /// Time parked because this operator's downstream sink was full.
    pub blocked_on_output: Duration,
    /// Time parked waiting for a memory-pool grant.
    pub blocked_on_memory: Duration,
    /// High-water user-memory reservation observed for this operator.
    pub peak_user_memory_bytes: u64,
    /// High-water system-memory reservation observed for this operator.
    pub peak_system_memory_bytes: u64,
    /// Operator-specific counters ([`Operator::counters`]); merged by name.
    pub counters: Vec<(&'static str, u64)>,
}

impl OperatorStats {
    pub fn record_input(&mut self, page: &Page) {
        self.input_rows += page.row_count() as u64;
        self.input_bytes += page.size_in_bytes() as u64;
        self.input_pages += 1;
    }

    pub fn record_output(&mut self, page: &Page) {
        self.output_rows += page.row_count() as u64;
        self.output_bytes += page.size_in_bytes() as u64;
        self.output_pages += 1;
    }

    /// Total parked time, all causes.
    pub fn blocked_total(&self) -> Duration {
        self.blocked_on_input + self.blocked_on_output + self.blocked_on_memory
    }

    /// Add a blocked interval attributed to `reason`.
    pub fn record_blocked(&mut self, reason: BlockedReason, elapsed: Duration) {
        match reason {
            BlockedReason::WaitingForInput | BlockedReason::WaitingForBuild => {
                self.blocked_on_input += elapsed;
            }
            BlockedReason::OutputFull => self.blocked_on_output += elapsed,
            BlockedReason::Memory => self.blocked_on_memory += elapsed,
        }
    }

    /// Fold an operator-specific counter in by name.
    pub fn add_counter(&mut self, name: &'static str, value: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += value;
        } else {
            self.counters.push((name, value));
        }
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Merge a sibling instance (another driver of the same pipeline, or
    /// the same operator on another task). Flows and counters add; memory
    /// peaks add as well — concurrent drivers reserve simultaneously, so
    /// the pipeline-level high-water mark is bounded by the sum.
    pub fn merge(&mut self, other: &OperatorStats) {
        self.input_rows += other.input_rows;
        self.input_bytes += other.input_bytes;
        self.input_pages += other.input_pages;
        self.output_rows += other.output_rows;
        self.output_bytes += other.output_bytes;
        self.output_pages += other.output_pages;
        self.cpu += other.cpu;
        self.blocked_on_input += other.blocked_on_input;
        self.blocked_on_output += other.blocked_on_output;
        self.blocked_on_memory += other.blocked_on_memory;
        self.peak_user_memory_bytes += other.peak_user_memory_bytes;
        self.peak_system_memory_bytes += other.peak_system_memory_bytes;
        for (name, value) in &other.counters {
            self.add_counter(name, *value);
        }
    }
}
