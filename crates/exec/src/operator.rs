//! The operator interface.
//!
//! "A pipeline consists of a chain of operators, each of which performs a
//! single, well-defined computation on the data" (§IV-D). Operators are
//! page-in/page-out state machines; the driver moves pages between them and
//! reacts to blocked states without parking threads.

use presto_common::Result;
use presto_page::Page;

/// Why an operator cannot currently make progress. The driver propagates
/// the reason so the worker scheduler can account for it (§IV-F1: "When
/// output buffers are full … input buffers are empty … or the system is out
/// of memory, the local scheduler simply switches to processing another
/// task").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedReason {
    /// Downstream cannot absorb output (full output buffer).
    OutputFull,
    /// Upstream has produced nothing yet (empty exchange, no splits).
    WaitingForInput,
    /// Waiting on a sibling pipeline (e.g. hash-join build).
    WaitingForBuild,
    /// Memory pool exhausted.
    Memory,
}

/// One computation in a pipeline.
pub trait Operator: Send {
    /// Short name for telemetry ("ScanFilterProject", "LookupJoin", …).
    fn name(&self) -> &'static str;

    /// Whether the operator can accept a page right now.
    fn needs_input(&self) -> bool;

    /// Feed one page. Only valid when [`Operator::needs_input`] is true.
    fn add_input(&mut self, page: Page) -> Result<()>;

    /// Signal that no more input will arrive.
    fn finish(&mut self);

    /// Produce an output page if one is ready.
    fn output(&mut self) -> Result<Option<Page>>;

    /// Fully done: no more output will ever be produced.
    fn is_finished(&self) -> bool;

    /// If the operator cannot progress, why.
    fn blocked(&self) -> Option<BlockedReason> {
        None
    }

    /// *User* memory retained (proportional to data, §IV-F2): hash tables,
    /// sort buffers, group state.
    fn user_memory_bytes(&self) -> usize {
        0
    }

    /// *System* memory retained (implementation byproduct): shuffle and
    /// I/O buffers.
    fn system_memory_bytes(&self) -> usize {
        0
    }

    /// Whether this operator can free memory by spilling.
    fn can_revoke_memory(&self) -> bool {
        false
    }

    /// Spill revocable state to disk; returns bytes freed (§IV-F2
    /// "Revocation is processed by spilling state to disk").
    fn revoke_memory(&mut self) -> Result<u64> {
        Ok(0)
    }
}

/// Rows-and-bytes counters every driver keeps per operator, merged upward
/// to task and stage level (§VII "we collect and store operator level
/// statistics … for every query").
#[derive(Debug, Default, Clone, Copy)]
pub struct OperatorStats {
    pub input_rows: u64,
    pub input_bytes: u64,
    pub output_rows: u64,
    pub output_bytes: u64,
}

impl OperatorStats {
    pub fn record_input(&mut self, page: &Page) {
        self.input_rows += page.row_count() as u64;
        self.input_bytes += page.size_in_bytes() as u64;
    }

    pub fn record_output(&mut self, page: &Page) {
        self.output_rows += page.row_count() as u64;
        self.output_bytes += page.size_in_bytes() as u64;
    }

    pub fn merge(&mut self, other: &OperatorStats) {
        self.input_rows += other.input_rows;
        self.input_bytes += other.input_bytes;
        self.output_rows += other.output_rows;
        self.output_bytes += other.output_bytes;
    }
}
