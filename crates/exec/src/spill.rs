//! The unified spill subsystem (§IV-F2: "Revocation is processed by
//! spilling state to disk").
//!
//! Every operator that spills — hash aggregation, sort, grace hash join —
//! writes its runs through one task-owned [`SpillManager`]: a configurable
//! spill directory (`Session::spill_dir`, OS temp dir by default), a disk
//! budget (`Session::spill_max_bytes`) enforced at write time, and a live
//! registry of every run file so task teardown can guarantee nothing leaks
//! when a spilling query is aborted or its worker dies mid-run.
//!
//! Run files hold framed pages: each record is a `u32` length followed by
//! the §IV-E2 wire frame (`presto_page::frame_payload`) — xxh64-checksummed
//! and LZ-compressed above a threshold — so a torn or corrupted run is
//! detected on re-ingest and surfaces as a *transient* error instead of
//! silently wrong results. File names are crash-safe: they embed the
//! process id plus a process-unique monotonic id, so a recycled operator
//! address can never collide with a leaked file from an earlier operator
//! (the ABA class of bug), and leftovers of a crashed process are
//! attributable by pid.
//!
//! The chaos harness injects spill-IO faults ([`SpillFault`]) here: write
//! failures and disk-full conditions surface as retryable errors, so a
//! query whose spill disk misbehaves degrades exactly like one whose
//! network does.

use parking_lot::Mutex;
use presto_common::{PrestoError, Result};
use presto_page::{deserialize_page, frame_payload, serialize_page, unframe_payload, Page};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-unique monotonic run ids. Never reused within a process, unlike
/// the operator addresses the file names previously embedded.
static NEXT_RUN_ID: AtomicU64 = AtomicU64::new(0);

/// Spill records at least this long are LZ-compressed inside their frame.
const SPILL_COMPRESSION_MIN_BYTES: usize = 8 << 10;

/// An injected spill-IO fault (chaos harness, §IV-G). Both kinds surface
/// as *retryable* errors: a bad spill disk is environmental, and re-running
/// the query on another node (or after the disk recovers) can succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillFault {
    /// Every spill write after the first `after_writes` fails.
    WriteError { after_writes: u64 },
    /// The disk "fills up" once the manager holds this many live bytes.
    DiskFull { capacity_bytes: u64 },
}

/// Task-owned coordinator of all spill I/O: directory, disk budget,
/// lifetime counters, fault injection, and the live-file registry that
/// backs guaranteed cleanup on abort.
pub struct SpillManager {
    dir: PathBuf,
    /// Disk budget in bytes; 0 = unlimited. Exceeding it is an
    /// insufficient-resources failure, like exceeding a memory limit.
    max_bytes: u64,
    /// Bytes currently on disk across live runs.
    used_bytes: AtomicU64,
    /// Lifetime bytes written (monotonic; files are deleted after
    /// re-ingest, so this cannot be derived from live state).
    spilled_bytes: AtomicU64,
    /// Lifetime spill write operations.
    spill_events: AtomicU64,
    /// Lifetime write calls, for fault-injection schedules.
    writes: AtomicU64,
    fault: Option<SpillFault>,
    /// Live run files: id → path. Runs unregister when consumed or
    /// dropped; [`SpillManager::remove_all`] deletes whatever remains.
    files: Mutex<HashMap<u64, PathBuf>>,
}

impl SpillManager {
    /// A manager writing to `dir` (OS temp dir when `None`) under a byte
    /// budget (0 = unlimited).
    pub fn new(dir: Option<PathBuf>, max_bytes: u64) -> Arc<SpillManager> {
        SpillManager::with_fault(dir, max_bytes, None)
    }

    /// [`SpillManager::new`] with an injected IO fault (chaos harness).
    pub fn with_fault(
        dir: Option<PathBuf>,
        max_bytes: u64,
        fault: Option<SpillFault>,
    ) -> Arc<SpillManager> {
        Arc::new(SpillManager {
            dir: dir.unwrap_or_else(std::env::temp_dir),
            max_bytes,
            used_bytes: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            spill_events: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            fault,
            files: Mutex::new(HashMap::new()),
        })
    }

    /// The manager a session configures: `spill_dir`/`spill_max_bytes`.
    pub fn for_session(session: &presto_common::Session) -> Arc<SpillManager> {
        SpillManager::new(session.spill_dir.clone(), session.spill_max_bytes)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Bytes currently held on disk by live runs.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Lifetime bytes written to spill files.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// Lifetime spill write operations.
    pub fn spill_events(&self) -> u64 {
        self.spill_events.load(Ordering::Relaxed)
    }

    /// Live (not yet consumed or removed) run files.
    pub fn live_files(&self) -> usize {
        self.files.lock().len()
    }

    /// Start a new empty run. No I/O happens until the first append.
    pub fn create_run(self: &Arc<Self>, label: &'static str) -> SpillRun {
        let id = NEXT_RUN_ID.fetch_add(1, Ordering::Relaxed);
        let path = self
            .dir
            .join(format!("presto-spill-{}-{label}-{id}.run", std::process::id()));
        SpillRun {
            manager: Arc::clone(self),
            id,
            path,
            file: None,
            bytes: 0,
            pages: 0,
            rows: 0,
        }
    }

    /// Delete every live run file. Called from the task teardown cascade so
    /// an aborted or killed spilling task leaves zero files behind, and from
    /// the manager's own `Drop` as a last resort.
    pub fn remove_all(&self) {
        let files = std::mem::take(&mut *self.files.lock());
        let mut freed = 0u64;
        for path in files.values() {
            if let Ok(meta) = std::fs::metadata(path) {
                freed += meta.len();
            }
            let _ = std::fs::remove_file(path);
        }
        sub_saturating(&self.used_bytes, freed);
    }

    /// Pre-write gate: fault injection, then the disk budget.
    fn check_write(&self, len: u64, path: &Path) -> Result<()> {
        let write_no = self.writes.fetch_add(1, Ordering::Relaxed);
        match self.fault {
            Some(SpillFault::WriteError { after_writes }) if write_no >= after_writes => {
                return Err(PrestoError::transient(format!(
                    "spill write failed (injected fault): {}",
                    path.display()
                )));
            }
            Some(SpillFault::DiskFull { capacity_bytes })
                if self.used_bytes.load(Ordering::Relaxed) + len > capacity_bytes =>
            {
                return Err(PrestoError::transient(format!(
                    "spill disk full (injected fault) at {} bytes: {}",
                    capacity_bytes,
                    path.display()
                )));
            }
            _ => {}
        }
        if self.max_bytes > 0 && self.used_bytes.load(Ordering::Relaxed) + len > self.max_bytes {
            return Err(PrestoError::resources(format!(
                "spill budget exceeded: task holds {} spilled bytes, writing {} more \
                 would pass spill_max_bytes={}",
                self.used_bytes.load(Ordering::Relaxed),
                len,
                self.max_bytes
            )));
        }
        Ok(())
    }

    fn record_write(&self, len: u64) {
        self.used_bytes.fetch_add(len, Ordering::Relaxed);
        self.spilled_bytes.fetch_add(len, Ordering::Relaxed);
        self.spill_events.fetch_add(1, Ordering::Relaxed);
    }

    fn register(&self, id: u64, path: &Path) {
        self.files.lock().insert(id, path.to_path_buf());
    }

    fn unregister(&self, id: u64, bytes: u64) {
        self.files.lock().remove(&id);
        sub_saturating(&self.used_bytes, bytes);
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        self.remove_all();
    }
}

fn sub_saturating(counter: &AtomicU64, v: u64) {
    let mut cur = counter.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(v);
        match counter.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// One checksummed run file of framed pages. Append during revocation,
/// read back on re-ingest; the file is deleted when the run is consumed,
/// dropped, or the owning manager tears down — whichever comes first.
pub struct SpillRun {
    manager: Arc<SpillManager>,
    id: u64,
    path: PathBuf,
    file: Option<std::fs::File>,
    bytes: u64,
    pages: u64,
    rows: u64,
}

impl SpillRun {
    /// Frame and append one page. Returns the bytes written.
    pub fn append(&mut self, page: &Page) -> Result<u64> {
        let payload = serialize_page(page);
        let frame = frame_payload(&payload, SPILL_COMPRESSION_MIN_BYTES);
        let record_len = frame.len() as u64 + 4;
        self.manager.check_write(record_len, &self.path)?;
        if self.file.is_none() {
            std::fs::create_dir_all(&self.manager.dir)?;
            self.file = Some(std::fs::File::create(&self.path)?);
            self.manager.register(self.id, &self.path);
        }
        let file = self.file.as_mut().expect("spill file just opened");
        file.write_all(&(frame.len() as u32).to_le_bytes())?;
        file.write_all(&frame)?;
        file.flush()?;
        self.bytes += record_len;
        self.rows += page.row_count() as u64;
        self.pages += 1;
        self.manager.record_write(record_len);
        Ok(record_len)
    }

    /// Bytes written to this run so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Rows written to this run so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Pages written to this run so far.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Read every page back, verifying checksums. The run stays on disk
    /// (use [`SpillRun::into_pages`] to consume-and-delete). Corruption or
    /// truncation surfaces as a transient error, like a bad wire frame.
    pub fn read_pages(&mut self) -> Result<Vec<Page>> {
        if self.pages == 0 {
            return Ok(Vec::new());
        }
        // Reopen for reading; the write handle's cursor is at EOF.
        let mut file = std::fs::File::open(&self.path)?;
        let mut out = Vec::with_capacity(self.pages as usize);
        let mut len_buf = [0u8; 4];
        loop {
            match file.read_exact(&mut len_buf) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
            let len = u32::from_le_bytes(len_buf) as usize;
            let mut buf = vec![0u8; len];
            file.read_exact(&mut buf).map_err(|e| {
                PrestoError::transient(format!(
                    "spill run truncated mid-record ({}): {e}",
                    self.path.display()
                ))
            })?;
            let payload = unframe_payload(&buf)?;
            out.push(deserialize_page(&payload)?);
        }
        Ok(out)
    }

    /// Read every page back and delete the run.
    pub fn into_pages(mut self) -> Result<Vec<Page>> {
        let pages = self.read_pages()?;
        self.remove();
        Ok(pages)
    }

    /// Delete the file and release its budget. Idempotent.
    pub fn remove(&mut self) {
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.path);
            self.manager.unregister(self.id, self.bytes);
            self.bytes = 0;
            self.pages = 0;
            self.rows = 0;
        }
    }
}

impl Drop for SpillRun {
    fn drop(&mut self) {
        self.remove();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "presto-spilltest-{tag}-{}-{}",
            std::process::id(),
            NEXT_RUN_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn page(n: i64) -> Page {
        let schema = Schema::of(&[("k", DataType::Bigint), ("s", DataType::Varchar)]);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Bigint(i), Value::varchar(format!("row-{i}"))])
            .collect();
        Page::from_rows(&schema, &rows)
    }

    fn rows_of(pages: &[Page]) -> Vec<(i64, String)> {
        let mut out = Vec::new();
        for p in pages {
            for i in 0..p.row_count() {
                out.push((p.block(0).i64_at(i), p.block(1).str_at(i).to_string()));
            }
        }
        out
    }

    #[test]
    fn round_trip_preserves_pages() {
        let dir = scratch_dir("roundtrip");
        let mgr = SpillManager::new(Some(dir.clone()), 0);
        let mut run = mgr.create_run("test");
        run.append(&page(100)).unwrap();
        run.append(&page(7)).unwrap();
        assert_eq!(run.rows(), 107);
        assert_eq!(mgr.live_files(), 1);
        assert!(mgr.used_bytes() > 0);
        assert_eq!(mgr.spill_events(), 2);
        let pages = run.into_pages().unwrap();
        assert_eq!(
            rows_of(&pages),
            rows_of(&[page(100), page(7)]),
            "byte-identical round trip"
        );
        assert_eq!(mgr.live_files(), 0, "consumed run removed its file");
        assert_eq!(mgr.used_bytes(), 0);
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_removes_file() {
        let dir = scratch_dir("drop");
        let mgr = SpillManager::new(Some(dir.clone()), 0);
        {
            let mut run = mgr.create_run("test");
            run.append(&page(10)).unwrap();
            assert_eq!(mgr.live_files(), 1);
        }
        assert_eq!(mgr.live_files(), 0);
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_all_cleans_leaked_runs() {
        let dir = scratch_dir("removeall");
        let mgr = SpillManager::new(Some(dir.clone()), 0);
        let mut a = mgr.create_run("a");
        let mut b = mgr.create_run("b");
        a.append(&page(5)).unwrap();
        b.append(&page(5)).unwrap();
        // Abort path: the manager deletes files out from under live runs.
        mgr.remove_all();
        assert_eq!(mgr.live_files(), 0);
        assert_eq!(mgr.used_bytes(), 0);
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        drop(a);
        drop(b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_exceeded_is_resources_error() {
        let dir = scratch_dir("budget");
        let mgr = SpillManager::new(Some(dir.clone()), 64);
        let mut run = mgr.create_run("test");
        let err = run.append(&page(1000)).unwrap_err();
        assert_eq!(
            err.code,
            presto_common::ErrorCode::InsufficientResources,
            "spill budget is a resource limit: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_fault_is_retryable() {
        let dir = scratch_dir("fault");
        let mgr = SpillManager::with_fault(
            Some(dir.clone()),
            0,
            Some(SpillFault::WriteError { after_writes: 1 }),
        );
        let mut run = mgr.create_run("test");
        run.append(&page(10)).unwrap();
        let err = run.append(&page(10)).unwrap_err();
        assert!(err.is_retryable(), "spill-IO fault must be retryable: {err}");
        drop(run);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_disk_full_is_retryable() {
        let dir = scratch_dir("diskfull");
        let mgr = SpillManager::with_fault(
            Some(dir.clone()),
            0,
            Some(SpillFault::DiskFull { capacity_bytes: 64 }),
        );
        let mut run = mgr.create_run("test");
        let err = run.append(&page(1000)).unwrap_err();
        assert!(err.is_retryable(), "disk-full fault must be retryable: {err}");
        drop(run);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_run_surfaces_transient_error() {
        let dir = scratch_dir("corrupt");
        let mgr = SpillManager::new(Some(dir.clone()), 0);
        let mut run = mgr.create_run("test");
        run.append(&page(50)).unwrap();
        // Flip a byte past the length prefix: the frame checksum must catch it.
        let path = dir
            .join(format!("presto-spill-{}-test-{}.run", std::process::id(), run.id));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = run.read_pages().unwrap_err();
        assert!(err.is_retryable(), "corruption is transient: {err}");
        drop(run);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_ids_are_process_unique() {
        let mgr = SpillManager::new(None, 0);
        let a = mgr.create_run("x");
        let b = mgr.create_run("x");
        assert_ne!(a.id, b.id);
        assert_ne!(a.path, b.path);
    }
}
