//! FilterProject and Values operators.

use presto_common::{Result, Session};
use presto_expr::{Expr, PageProcessor};
use presto_page::Page;

use crate::operator::Operator;

/// Filter + projection over streaming pages (the mid-pipeline variant of
/// the fused scan processor).
pub struct FilterProjectOperator {
    processor: PageProcessor,
    pending: Option<Page>,
    input_done: bool,
}

impl FilterProjectOperator {
    pub fn new(
        filter: Option<&Expr>,
        projections: &[Expr],
        session: &Session,
    ) -> FilterProjectOperator {
        FilterProjectOperator {
            processor: PageProcessor::new(filter, projections, session),
            pending: None,
            input_done: false,
        }
    }
}

impl Operator for FilterProjectOperator {
    fn name(&self) -> &'static str {
        "FilterProject"
    }

    fn needs_input(&self) -> bool {
        self.pending.is_none() && !self.input_done
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        debug_assert!(self.pending.is_none());
        let out = self.processor.process(&page)?;
        if out.row_count() > 0 {
            self.pending = Some(out);
        }
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(self.pending.take())
    }

    fn is_finished(&self) -> bool {
        self.input_done && self.pending.is_none()
    }
}

/// Emits a fixed set of pages (literal VALUES).
pub struct ValuesOperator {
    pages: std::vec::IntoIter<Page>,
}

impl ValuesOperator {
    pub fn new(pages: Vec<Page>) -> ValuesOperator {
        ValuesOperator {
            pages: pages.into_iter(),
        }
    }
}

impl Operator for ValuesOperator {
    fn name(&self) -> &'static str {
        "Values"
    }

    fn needs_input(&self) -> bool {
        false
    }

    fn add_input(&mut self, _page: Page) -> Result<()> {
        unreachable!("values operators take no input")
    }

    fn finish(&mut self) {}

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(self.pages.next())
    }

    fn is_finished(&self) -> bool {
        self.pages.len() == 0
    }
}

/// Truncates the stream after N rows (final Limit).
pub struct LimitOperator {
    remaining: u64,
    pending: Option<Page>,
    input_done: bool,
}

impl LimitOperator {
    pub fn new(count: u64) -> LimitOperator {
        LimitOperator {
            remaining: count,
            pending: None,
            input_done: false,
        }
    }
}

impl Operator for LimitOperator {
    fn name(&self) -> &'static str {
        "Limit"
    }

    fn needs_input(&self) -> bool {
        self.remaining > 0 && self.pending.is_none() && !self.input_done
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        if self.remaining == 0 {
            return Ok(());
        }
        let take = (self.remaining as usize).min(page.row_count());
        self.remaining -= take as u64;
        self.pending = Some(page.truncate(take));
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(self.pending.take())
    }

    fn is_finished(&self) -> bool {
        self.pending.is_none() && (self.input_done || self.remaining == 0)
    }
}

/// Concatenates several upstream operators' output (UNION ALL); inputs are
/// handled by the driver wiring multiple children sequentially, so at the
/// operator level this is a pass-through.
pub struct PassThroughOperator {
    pending: Option<Page>,
    input_done: bool,
    name: &'static str,
}

impl PassThroughOperator {
    pub fn new(name: &'static str) -> PassThroughOperator {
        PassThroughOperator {
            pending: None,
            input_done: false,
            name,
        }
    }
}

impl Operator for PassThroughOperator {
    fn name(&self) -> &'static str {
        self.name
    }

    fn needs_input(&self) -> bool {
        self.pending.is_none() && !self.input_done
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        self.pending = Some(page);
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(self.pending.take())
    }

    fn is_finished(&self) -> bool {
        self.input_done && self.pending.is_none()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};
    use presto_expr::CmpOp;

    fn page(n: i64) -> Page {
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Bigint(i)]).collect();
        Page::from_rows(&schema, &rows)
    }

    #[test]
    fn filter_project_streams() {
        let session = Session::default();
        let filter = Expr::cmp(
            CmpOp::Lt,
            Expr::column(0, DataType::Bigint),
            Expr::literal(3i64),
        );
        let proj = vec![Expr::arith(
            presto_expr::ArithOp::Mul,
            Expr::column(0, DataType::Bigint),
            Expr::literal(2i64),
        )];
        let mut op = FilterProjectOperator::new(Some(&filter), &proj, &session);
        assert!(op.needs_input());
        op.add_input(page(10)).unwrap();
        let out = op.output().unwrap().unwrap();
        assert_eq!(out.row_count(), 3);
        assert_eq!(out.block(0).i64_at(2), 4);
        op.finish();
        assert!(op.is_finished());
    }

    #[test]
    fn limit_truncates_and_finishes_early() {
        let mut op = LimitOperator::new(5);
        op.add_input(page(3)).unwrap();
        assert_eq!(op.output().unwrap().unwrap().row_count(), 3);
        op.add_input(page(10)).unwrap();
        assert_eq!(op.output().unwrap().unwrap().row_count(), 2);
        // Limit satisfied: finished without finish() — upstream can cancel.
        assert!(op.is_finished());
        assert!(!op.needs_input());
    }

    #[test]
    fn values_emits_all() {
        let mut op = ValuesOperator::new(vec![page(2), page(3)]);
        let mut rows = 0;
        while let Some(p) = op.output().unwrap() {
            rows += p.row_count();
        }
        assert_eq!(rows, 5);
        assert!(op.is_finished());
    }
}
