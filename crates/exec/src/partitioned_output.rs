//! Coalescing page partitioner for hash-routed shuffle output.
//!
//! The naive hash route shatters every input page into up to `consumers`
//! fragments and serializes each immediately, so downstream operators see
//! pages of `rows / consumers` rows — at 64 consumers, slivers. The
//! [`PagePartitioner`] instead scatters rows into per-partition
//! [`BlockBuilder`]s that accumulate *across* input pages and flush only at
//! a target row/byte size, so the wire carries full-size pages again and
//! the per-page costs (frame header, serialization setup, downstream
//! dispatch) amortize (§IV-E2; PAPERS.md identifies the exchange and
//! serialization path as the dominant overhead once operators are fast).
//!
//! One encoding-aware hash pass per page ([`hash_columns_cached`] reuses
//! dictionary entry hashes and hashes RLE runs once), then a selection-
//! vector scatter per destination. Two fast paths skip row copies:
//! RLE-keyed pages route whole to one partition, and any single-destination
//! page that is already target-size passes through untouched.

use presto_page::hash::{hash_columns_cached, DictionaryHashCache};
use presto_page::{BlockBuilder, Page, PhysicalType};

/// Scatters input pages into per-partition accumulators; yields
/// `(partition, page)` pairs as accumulators reach the target size.
pub struct PagePartitioner {
    channels: Vec<usize>,
    consumers: usize,
    /// Flush a partition's accumulator at this many rows…
    target_rows: usize,
    /// …or this many retained bytes, whichever comes first.
    target_bytes: usize,
    /// Per-partition builders, one per column; `None` until the first page
    /// reveals the physical column types.
    builders: Vec<Option<Vec<BlockBuilder>>>,
    /// Rows accumulated per partition (builders may be temporarily `None`).
    pending_rows: Vec<usize>,
    /// Reused per-partition selection vectors (cleared each page).
    positions: Vec<Vec<u32>>,
    /// Dictionary hash memo, persistent across pages from the same source.
    cache: DictionaryHashCache,
    column_types: Option<Vec<PhysicalType>>,
}

impl PagePartitioner {
    pub fn new(
        channels: Vec<usize>,
        consumers: usize,
        target_rows: usize,
        target_bytes: usize,
    ) -> PagePartitioner {
        assert!(consumers > 0, "partitioner needs at least one consumer");
        PagePartitioner {
            channels,
            consumers,
            target_rows: target_rows.max(1),
            target_bytes: target_bytes.max(1),
            builders: (0..consumers).map(|_| None).collect(),
            pending_rows: vec![0; consumers],
            positions: vec![Vec::new(); consumers],
            cache: DictionaryHashCache::new(),
            column_types: None,
        }
    }

    /// Route one input page. Returns the partitions whose accumulators
    /// crossed the flush threshold, as ready-to-enqueue pages.
    pub fn add_page(&mut self, page: Page) -> Vec<(usize, Page)> {
        if page.is_empty() {
            return Vec::new();
        }
        if self.consumers == 1 || page.column_count() == 0 {
            // Degenerate routes: nothing to scatter, forward whole pages.
            return vec![(0, page)];
        }
        let hashes = hash_columns_cached(&page, &self.channels, &mut self.cache);
        for v in &mut self.positions {
            v.clear();
        }
        for (i, h) in hashes.iter().enumerate() {
            self.positions[(h % self.consumers as u64) as usize].push(i as u32);
        }
        // Single-destination page (RLE keys, or skewed/pre-partitioned
        // data): if the destination is empty and the page already meets the
        // target, pass it through without touching a row.
        let rows = page.row_count();
        if let Some(only) = self.single_destination() {
            if self.pending_rows[only] == 0 && rows * 2 >= self.target_rows {
                return vec![(only, page)];
            }
        }
        if self.column_types.is_none() {
            self.column_types = Some(page.blocks().iter().map(|b| b.physical_type()).collect());
        }
        let mut flushed = Vec::new();
        for p in 0..self.consumers {
            if self.positions[p].is_empty() {
                continue;
            }
            let builders = self.builders[p].get_or_insert_with(|| {
                let types = self.column_types.as_deref().unwrap_or(&[]);
                let capacity = self.target_rows.min(64 * 1024);
                types
                    .iter()
                    .map(|&t| BlockBuilder::for_physical(t, capacity))
                    .collect()
            });
            for (c, block) in page.blocks().iter().enumerate() {
                builders[c].append_filtered(block, &self.positions[p]);
            }
            self.pending_rows[p] += self.positions[p].len();
            if self.pending_rows[p] >= self.target_rows
                || builders.iter().map(|b| b.size_in_bytes()).sum::<usize>() >= self.target_bytes
            {
                if let Some(out) = self.take(p) {
                    flushed.push((p, out));
                }
            }
        }
        flushed
    }

    /// Flush every non-empty accumulator (end of input).
    pub fn finish(&mut self) -> Vec<(usize, Page)> {
        (0..self.consumers)
            .filter_map(|p| self.take(p).map(|page| (p, page)))
            .collect()
    }

    /// Bytes retained across all accumulators, for §IV-F2 memory accounting.
    pub fn retained_bytes(&self) -> usize {
        self.builders
            .iter()
            .flatten()
            .flat_map(|cols| cols.iter())
            .map(|b| b.size_in_bytes())
            .sum()
    }

    /// The single partition every row of the current page routes to, if any.
    fn single_destination(&self) -> Option<usize> {
        let mut dest = None;
        for (p, v) in self.positions.iter().enumerate() {
            if !v.is_empty() {
                if dest.is_some() {
                    return None;
                }
                dest = Some(p);
            }
        }
        dest
    }

    fn take(&mut self, partition: usize) -> Option<Page> {
        if self.pending_rows[partition] == 0 {
            return None;
        }
        let builders = self.builders[partition].take()?;
        self.pending_rows[partition] = 0;
        Some(Page::new(builders.into_iter().map(|b| b.finish()).collect()))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};
    use presto_page::{Block, DictionaryBlock, LongBlock, VarcharBlock};
    use std::sync::Arc;

    fn key_page(keys: &[i64]) -> Page {
        let schema = Schema::of(&[("k", DataType::Bigint)]);
        Page::from_rows(
            &schema,
            &keys
                .iter()
                .map(|&k| vec![Value::Bigint(k)])
                .collect::<Vec<_>>(),
        )
    }

    fn drain_rows(parts: Vec<(usize, Page)>) -> usize {
        parts.iter().map(|(_, p)| p.row_count()).sum()
    }

    #[test]
    fn coalesces_small_pages_into_target_sized_flushes() {
        let mut part = PagePartitioner::new(vec![0], 4, 100, usize::MAX);
        let mut flushed = 0usize;
        let mut fed = 0usize;
        // 50 pages of 20 rows: naive routing would emit ~200 fragments of
        // ~5 rows; coalescing emits ~10 pages of ~100 rows.
        let mut emitted_pages = 0usize;
        for i in 0..50 {
            let page = key_page(&(0..20).map(|j| i * 20 + j).collect::<Vec<_>>());
            fed += page.row_count();
            let out = part.add_page(page);
            for (_, p) in &out {
                assert!(
                    p.row_count() >= 100,
                    "flushes must be at least target-sized"
                );
            }
            emitted_pages += out.len();
            flushed += drain_rows(out);
        }
        let tail = part.finish();
        emitted_pages += tail.len();
        flushed += drain_rows(tail);
        assert_eq!(flushed, fed, "no rows lost or duplicated");
        assert!(emitted_pages <= 14, "got {emitted_pages} pages for {fed} rows");
        assert_eq!(part.retained_bytes(), 0);
    }

    #[test]
    fn routing_matches_naive_hash_partitioning() {
        use presto_page::hash::hash_columns;
        let consumers = 4;
        let page = key_page(&(0..257).collect::<Vec<_>>());
        let hashes = hash_columns(&page, &[0]);
        let mut part = PagePartitioner::new(vec![0], consumers, 8, usize::MAX);
        let mut out = part.add_page(page.clone());
        out.extend(part.finish());
        // Every value lands in the partition its hash names.
        for (p, flushed) in &out {
            for row in 0..flushed.row_count() {
                let v = flushed.block(0).i64_at(row);
                let expected = (hashes[v as usize] % consumers as u64) as usize;
                assert_eq!(*p, expected, "value {v} in wrong partition");
            }
        }
        assert_eq!(out.iter().map(|(_, p)| p.row_count()).sum::<usize>(), 257);
    }

    #[test]
    fn rle_keys_pass_through_without_rebuild() {
        // A page whose key column is RLE hashes identically for every row →
        // single destination; a big page passes through structurally intact.
        let page = Page::new(vec![Block::rle(
            Block::from(LongBlock::from_values(vec![42])),
            1000,
        )]);
        let mut part = PagePartitioner::new(vec![0], 8, 100, usize::MAX);
        let out = part.add_page(page);
        assert_eq!(out.len(), 1);
        let (_, routed) = &out[0];
        assert!(
            matches!(routed.block(0), Block::Rle(_)),
            "pass-through must preserve the RLE encoding"
        );
        assert_eq!(routed.row_count(), 1000);
        assert!(part.finish().is_empty());
    }

    #[test]
    fn dictionary_and_varchar_columns_scatter_correctly() {
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["x", "yy", "zzz"])));
        let keys: Vec<i64> = (0..30).collect();
        let page = Page::new(vec![
            Block::from(LongBlock::from_values(keys.clone())),
            Block::Dictionary(DictionaryBlock::new(
                dict,
                (0..30u32).map(|i| i % 3).collect(),
            )),
        ]);
        let mut part = PagePartitioner::new(vec![0], 3, 1000, usize::MAX);
        part.add_page(page);
        let out = part.finish();
        let mut seen = 0;
        for (_, p) in &out {
            for row in 0..p.row_count() {
                let k = p.block(0).i64_at(row);
                assert_eq!(p.block(1).str_at(row), ["x", "yy", "zzz"][(k % 3) as usize]);
                seen += 1;
            }
        }
        assert_eq!(seen, 30);
    }

    #[test]
    fn byte_target_also_triggers_flush() {
        let mut part = PagePartitioner::new(vec![0], 2, usize::MAX, 256);
        let mut total = 0usize;
        let mut out = Vec::new();
        for i in 0..20 {
            let page = key_page(&(0..16).map(|j| i * 16 + j).collect::<Vec<_>>());
            total += page.row_count();
            out.extend(part.add_page(page));
        }
        assert!(!out.is_empty(), "byte threshold must flush before finish");
        out.extend(part.finish());
        assert_eq!(drain_rows(out), total);
    }
}
