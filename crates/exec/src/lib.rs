//! Query execution: operators, pipelines, and the driver loop (§IV-E).
//!
//! A plan fragment compiles into a [`task::Task`]: one or more
//! [`pipeline::Pipeline`]s of [`operator::Operator`]s linked by in-memory
//! bridges (Fig. 4). Leaf pipelines can run many parallel drivers sharing a
//! split queue (intra-node parallelism, §IV-C4); a hash join splits into a
//! build pipeline and a probe pipeline joined by a
//! [`join::JoinBridge`].
//!
//! The [`driver::Driver`] implements the paper's driver loop: "more complex
//! than the popular Volcano (pull) model … operators can be quickly brought
//! to a known state before yielding the thread instead of blocking
//! indefinitely. Every iteration of the loop moves data between all pairs
//! of operators that can make progress." Drivers yield on quanta expiry,
//! full output buffers, empty exchange inputs, and memory-pool exhaustion —
//! the cooperative multitasking substrate the worker scheduler (in
//! `presto-cluster`) relies on.

pub mod agg;
pub mod driver;
pub mod dynfilter;
pub mod exchange;
pub mod filter;
pub mod flathash;
pub mod fused;
pub mod join;
pub mod memory;
pub mod operator;
pub mod partitioned_output;
pub mod pipeline;
pub mod scan;
pub mod sort;
pub mod spill;
pub mod stats;
pub mod task;
pub mod window;
pub mod writer;

pub use driver::{Driver, DriverState};
pub use dynfilter::{
    DynamicFilterRegistry, PublishedFilter, ScanDynamicFilter, TaskDynamicFilters,
};
pub use memory::{MemoryPool, RevocationHandle, TaskMemoryContext, UnlimitedPool};
pub use operator::{BlockedReason, Operator, OperatorStats};
pub use pipeline::Pipeline;
pub use spill::{SpillFault, SpillManager, SpillRun};
pub use stats::{
    DriverStatsReport, OperatorStatsEntry, PipelineStats, QueryPhases, QueryStats, StageStats,
    TaskStats, TaskStatsCollector,
};
pub use task::{Task, TaskContext};
