//! Hash joins (build + probe pipelines, Fig. 4) and index joins.

use parking_lot::Mutex;
use presto_common::{DataType, Schema};
use presto_common::{PrestoError, Result};
use presto_expr::{CompiledExpr, Expr};
use presto_page::hash::hash_columns;
use presto_page::{BlockBuilder, Page};
use std::collections::HashMap;
use std::sync::Arc;

use crate::operator::{BlockedReason, Operator};

/// The completed build side of a hash join.
pub struct JoinHashTable {
    /// Build pages, fully loaded.
    pages: Vec<Page>,
    /// Row addresses: (page, row).
    rows: Vec<(u32, u32)>,
    /// key hash → indices into `rows`.
    map: HashMap<u64, Vec<u32>>,
    key_channels: Vec<usize>,
    memory_bytes: usize,
}

impl JoinHashTable {
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// All build rows (for cross joins).
    pub fn all_rows(&self) -> &[(u32, u32)] {
        &self.rows
    }

    pub fn page(&self, i: u32) -> &Page {
        &self.pages[i as usize]
    }

    /// Candidate build rows for a probe row with the given key hash; the
    /// caller must verify key equality (hash collisions).
    fn candidates(&self, hash: u64) -> &[u32] {
        self.map.get(&hash).map(Vec::as_slice).unwrap_or(&[])
    }

    fn keys_match(&self, addr: (u32, u32), probe: &Page, probe_keys: &[usize], row: usize) -> bool {
        let build_page = &self.pages[addr.0 as usize];
        self.key_channels.iter().zip(probe_keys).all(|(&bc, &pc)| {
            build_page
                .block(bc)
                .eq_at(addr.1 as usize, probe.block(pc), row)
        })
    }
}

/// Shared hand-off between the build pipeline and probe drivers.
pub struct JoinBridge {
    state: Mutex<BuildState>,
}

struct BuildState {
    pages: Vec<Page>,
    bytes: usize,
    /// Build drivers still running.
    pending_builders: usize,
    table: Option<Arc<JoinHashTable>>,
    key_channels: Vec<usize>,
}

impl JoinBridge {
    pub fn new(key_channels: Vec<usize>, builder_count: usize) -> Arc<JoinBridge> {
        Arc::new(JoinBridge {
            state: Mutex::new(BuildState {
                pages: Vec::new(),
                bytes: 0,
                pending_builders: builder_count.max(1),
                table: None,
                key_channels,
            }),
        })
    }

    /// The finished hash table, once all builders are done.
    pub fn table(&self) -> Option<Arc<JoinHashTable>> {
        self.state.lock().table.clone()
    }

    pub fn build_bytes(&self) -> usize {
        let s = self.state.lock();
        s.bytes + s.table.as_ref().map_or(0, |t| t.memory_bytes())
    }

    fn add_page(&self, page: Page) {
        let mut s = self.state.lock();
        s.bytes += page.size_in_bytes();
        s.pages.push(page.load_all());
    }

    fn builder_finished(&self) {
        let mut s = self.state.lock();
        s.pending_builders -= 1;
        if s.pending_builders == 0 && s.table.is_none() {
            // Finalize: hash every build row.
            let pages = std::mem::take(&mut s.pages);
            let key_channels = s.key_channels.clone();
            let mut rows = Vec::new();
            let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
            let mut bytes = 0usize;
            for (pi, page) in pages.iter().enumerate() {
                bytes += page.size_in_bytes();
                if key_channels.is_empty() {
                    for ri in 0..page.row_count() {
                        rows.push((pi as u32, ri as u32));
                    }
                    continue;
                }
                let hashes = hash_columns(page, &key_channels);
                for (ri, &h) in hashes.iter().enumerate() {
                    // NULL keys never join (SQL equality).
                    if key_channels.iter().any(|&c| page.block(c).is_null(ri)) {
                        continue;
                    }
                    let idx = rows.len() as u32;
                    rows.push((pi as u32, ri as u32));
                    map.entry(h).or_default().push(idx);
                }
            }
            bytes += rows.len() * 8 + map.len() * 24;
            s.table = Some(Arc::new(JoinHashTable {
                pages,
                rows,
                map,
                key_channels,
                memory_bytes: bytes,
            }));
        }
    }
}

/// Build-side sink operator: accumulates pages into the bridge.
pub struct HashBuilderOperator {
    bridge: Arc<JoinBridge>,
    finished: bool,
}

impl HashBuilderOperator {
    pub fn new(bridge: Arc<JoinBridge>) -> HashBuilderOperator {
        HashBuilderOperator {
            bridge,
            finished: false,
        }
    }
}

impl Operator for HashBuilderOperator {
    fn name(&self) -> &'static str {
        "HashBuilder"
    }

    fn needs_input(&self) -> bool {
        !self.finished
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        self.bridge.add_page(page);
        Ok(())
    }

    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            self.bridge.builder_finished();
        }
    }

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(None)
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn user_memory_bytes(&self) -> usize {
        // Charged once by the (single) build pipeline driver.
        self.bridge.build_bytes()
    }
}

/// Join semantics the probe operator implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeJoinType {
    Inner,
    Left,
    Cross,
}

/// Probe-side operator: streams probe pages against the hash table.
pub struct LookupJoinOperator {
    bridge: Arc<JoinBridge>,
    join_type: ProbeJoinType,
    probe_keys: Vec<usize>,
    probe_schema: Schema,
    build_schema: Schema,
    /// Residual non-equi condition over the concatenated output schema.
    filter: Option<CompiledExpr>,
    pending: Option<Page>,
    input_done: bool,
    rows_out: u64,
}

impl LookupJoinOperator {
    pub fn new(
        bridge: Arc<JoinBridge>,
        join_type: ProbeJoinType,
        probe_keys: Vec<usize>,
        probe_schema: Schema,
        build_schema: Schema,
        filter: Option<&Expr>,
    ) -> LookupJoinOperator {
        LookupJoinOperator {
            bridge,
            join_type,
            probe_keys,
            probe_schema,
            build_schema,
            filter: filter.map(CompiledExpr::compile),
            pending: None,
            input_done: false,
            rows_out: 0,
        }
    }

    fn join_page(&self, table: &JoinHashTable, probe: &Page) -> Result<Page> {
        let probe_width = self.probe_schema.len();
        let build_width = self.build_schema.len();
        // Pair candidates: (probe row, build addr).
        let mut pairs: Vec<(u32, (u32, u32))> = Vec::new();
        // For LEFT joins: which probe rows found any key match.
        let mut candidate_of_probe = vec![0u32; probe.row_count()];
        match self.join_type {
            ProbeJoinType::Cross => {
                for row in 0..probe.row_count() as u32 {
                    for &addr in table.all_rows() {
                        pairs.push((row, addr));
                    }
                }
            }
            _ => {
                let hashes = hash_columns(probe, &self.probe_keys);
                for row in 0..probe.row_count() {
                    if self.probe_keys.iter().any(|&c| probe.block(c).is_null(row)) {
                        continue;
                    }
                    for &idx in table.candidates(hashes[row]) {
                        let addr = table.all_rows()[idx as usize];
                        if table.keys_match(addr, probe, &self.probe_keys, row) {
                            pairs.push((row as u32, addr));
                            candidate_of_probe[row] += 1;
                        }
                    }
                }
            }
        }
        // Materialize candidate pairs into a combined page.
        let mut builders: Vec<BlockBuilder> = self
            .probe_schema
            .fields()
            .iter()
            .chain(self.build_schema.fields())
            .map(|f| BlockBuilder::with_capacity(f.data_type, pairs.len()))
            .collect();
        for &(prow, (bpage, brow)) in &pairs {
            for (c, b) in builders.iter_mut().enumerate().take(probe_width) {
                b.append_from(probe.block(c), prow as usize);
            }
            let build_page = table.page(bpage);
            for c in 0..build_width {
                builders[probe_width + c].append_from(build_page.block(c), brow as usize);
            }
        }
        let mut combined = if builders.is_empty() {
            Page::zero_column(pairs.len())
        } else {
            Page::new(builders.into_iter().map(BlockBuilder::finish).collect())
        };
        // Residual filter.
        let mut surviving_probe_matches = candidate_of_probe;
        if let Some(filter) = &self.filter {
            let selection = filter.eval_selection(&combined)?;
            if selection.len() != combined.row_count() {
                // Recompute per-probe match counts for LEFT semantics.
                if self.join_type == ProbeJoinType::Left {
                    surviving_probe_matches = vec![0; probe.row_count()];
                    for &s in &selection {
                        surviving_probe_matches[pairs[s as usize].0 as usize] += 1;
                    }
                }
                combined = combined.filter(&selection);
            }
        }
        // LEFT join: append null-padded rows for unmatched probe rows.
        if self.join_type == ProbeJoinType::Left {
            let unmatched: Vec<u32> = (0..probe.row_count() as u32)
                .filter(|&r| surviving_probe_matches[r as usize] == 0)
                .collect();
            if !unmatched.is_empty() {
                let mut builders: Vec<BlockBuilder> = self
                    .probe_schema
                    .fields()
                    .iter()
                    .chain(self.build_schema.fields())
                    .map(|f| BlockBuilder::with_capacity(f.data_type, unmatched.len()))
                    .collect();
                for &r in &unmatched {
                    for (c, b) in builders.iter_mut().enumerate().take(probe_width) {
                        b.append_from(probe.block(c), r as usize);
                    }
                    for b in builders.iter_mut().skip(probe_width) {
                        b.push_null();
                    }
                }
                let nulls = Page::new(builders.into_iter().map(BlockBuilder::finish).collect());
                combined = Page::concat(&[combined, nulls]);
            }
        }
        Ok(combined)
    }
}

impl Operator for LookupJoinOperator {
    fn name(&self) -> &'static str {
        "LookupJoin"
    }

    fn needs_input(&self) -> bool {
        !self.input_done && self.pending.is_none() && self.bridge.table().is_some()
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        let table = self
            .bridge
            .table()
            .ok_or_else(|| PrestoError::internal("probe before build finished"))?;
        let out = self.join_page(&table, &page)?;
        if out.row_count() > 0 {
            self.rows_out += out.row_count() as u64;
            self.pending = Some(out);
        }
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(self.pending.take())
    }

    fn is_finished(&self) -> bool {
        self.input_done && self.pending.is_none()
    }

    fn blocked(&self) -> Option<BlockedReason> {
        if self.bridge.table().is_none() {
            Some(BlockedReason::WaitingForBuild)
        } else {
            None
        }
    }
}

/// Index-nested-loop join (§IV-B3-3): probe rows look up a connector index.
pub struct IndexJoinOperator {
    index: Box<dyn presto_connector::IndexSource>,
    probe_keys: Vec<usize>,
    key_types: Vec<DataType>,
    probe_schema: Schema,
    pending: Option<Page>,
    input_done: bool,
}

impl IndexJoinOperator {
    pub fn new(
        index: Box<dyn presto_connector::IndexSource>,
        probe_keys: Vec<usize>,
        key_types: Vec<DataType>,
        probe_schema: Schema,
    ) -> IndexJoinOperator {
        IndexJoinOperator {
            index,
            probe_keys,
            key_types,
            probe_schema,
            pending: None,
            input_done: false,
        }
    }
}

impl Operator for IndexJoinOperator {
    fn name(&self) -> &'static str {
        "IndexJoin"
    }

    fn needs_input(&self) -> bool {
        !self.input_done && self.pending.is_none()
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        // Project the probe keys into the lookup page.
        let keys = page.project(&self.probe_keys);
        let _ = &self.key_types;
        let (matches, key_indices) = self.index.lookup(&keys)?;
        if matches.row_count() == 0 {
            return Ok(());
        }
        // Gather probe columns for each matched output row.
        let probe_side = page.filter(&key_indices);
        let combined = probe_side.append_columns(&matches);
        debug_assert_eq!(
            combined.column_count(),
            self.probe_schema.len() + matches.column_count()
        );
        self.pending = Some(combined);
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(self.pending.take())
    }

    fn is_finished(&self) -> bool {
        self.input_done && self.pending.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::Value;

    fn kv_page(rows: &[(i64, &str)]) -> Page {
        let schema = Schema::of(&[("k", DataType::Bigint), ("s", DataType::Varchar)]);
        Page::from_rows(
            &schema,
            &rows
                .iter()
                .map(|&(k, s)| vec![Value::Bigint(k), Value::varchar(s)])
                .collect::<Vec<_>>(),
        )
    }

    fn build_table(rows: &[(i64, &str)]) -> Arc<JoinBridge> {
        let bridge = JoinBridge::new(vec![0], 1);
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        b.add_input(kv_page(rows)).unwrap();
        b.finish();
        bridge
    }

    fn schema() -> Schema {
        Schema::of(&[("k", DataType::Bigint), ("s", DataType::Varchar)])
    }

    fn drain_rows(op: &mut LookupJoinOperator) -> Vec<(i64, String, i64, String)> {
        let mut out = Vec::new();
        while let Some(p) = op.output().unwrap() {
            for i in 0..p.row_count() {
                out.push((
                    p.block(0).i64_at(i),
                    p.block(1).str_at(i).to_string(),
                    if p.block(2).is_null(i) {
                        -1
                    } else {
                        p.block(2).i64_at(i)
                    },
                    if p.block(3).is_null(i) {
                        "-".into()
                    } else {
                        p.block(3).str_at(i).to_string()
                    },
                ));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn inner_join_matches_keys() {
        let bridge = build_table(&[(1, "a"), (2, "b"), (2, "b2")]);
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Inner,
            vec![0],
            schema(),
            schema(),
            None,
        );
        probe.add_input(kv_page(&[(2, "x"), (3, "y")])).unwrap();
        let rows = drain_rows(&mut probe);
        // key 2 matches both build rows; key 3 matches none.
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.0 == 2 && r.2 == 2));
        probe.finish();
        assert!(probe.is_finished());
    }

    #[test]
    fn left_join_pads_unmatched() {
        let bridge = build_table(&[(1, "a")]);
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Left,
            vec![0],
            schema(),
            schema(),
            None,
        );
        probe.add_input(kv_page(&[(1, "x"), (9, "z")])).unwrap();
        let rows = drain_rows(&mut probe);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (1, "x".into(), 1, "a".into()));
        assert_eq!(rows[1], (9, "z".into(), -1, "-".into()));
    }

    #[test]
    fn null_keys_never_match_but_survive_left_join() {
        let bridge = build_table(&[(1, "a")]);
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Left,
            vec![0],
            schema(),
            schema(),
            None,
        );
        let schema2 = schema();
        let p = Page::from_rows(
            &schema2,
            &[
                vec![Value::Null, Value::varchar("n")],
                vec![Value::Bigint(1), Value::varchar("m")],
            ],
        );
        probe.add_input(p).unwrap();
        let rows = drain_rows(&mut probe);
        assert_eq!(rows.len(), 2);
        // NULL key row survives null-padded.
        assert!(rows.iter().any(|r| r.1 == "n" && r.2 == -1));
    }

    #[test]
    fn residual_filter_applies_to_pairs() {
        let bridge = build_table(&[(1, "keep"), (1, "drop")]);
        // filter: build.s = 'keep' (channel 3 of the combined schema)
        let filter = Expr::cmp(
            presto_expr::CmpOp::Eq,
            Expr::column(3, DataType::Varchar),
            Expr::literal("keep"),
        );
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Inner,
            vec![0],
            schema(),
            schema(),
            Some(&filter),
        );
        probe.add_input(kv_page(&[(1, "x")])).unwrap();
        let rows = drain_rows(&mut probe);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].3, "keep");
    }

    #[test]
    fn probe_blocks_until_build_done() {
        let bridge = JoinBridge::new(vec![0], 1);
        let probe = LookupJoinOperator::new(
            Arc::clone(&bridge),
            ProbeJoinType::Inner,
            vec![0],
            schema(),
            schema(),
            None,
        );
        assert_eq!(probe.blocked(), Some(BlockedReason::WaitingForBuild));
        assert!(!probe.needs_input());
        let mut b = HashBuilderOperator::new(bridge);
        b.finish();
        assert!(probe.blocked().is_none());
        assert!(probe.needs_input());
    }

    #[test]
    fn cross_join_produces_product() {
        let bridge = JoinBridge::new(vec![], 1);
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        b.add_input(kv_page(&[(10, "a"), (20, "b")])).unwrap();
        b.finish();
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Cross,
            vec![],
            schema(),
            schema(),
            None,
        );
        probe
            .add_input(kv_page(&[(1, "x"), (2, "y"), (3, "z")]))
            .unwrap();
        let rows = drain_rows(&mut probe);
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn multiple_builders_merge() {
        let bridge = JoinBridge::new(vec![0], 2);
        let mut b1 = HashBuilderOperator::new(Arc::clone(&bridge));
        let mut b2 = HashBuilderOperator::new(Arc::clone(&bridge));
        b1.add_input(kv_page(&[(1, "a")])).unwrap();
        b2.add_input(kv_page(&[(2, "b")])).unwrap();
        b1.finish();
        assert!(bridge.table().is_none(), "waits for all builders");
        b2.finish();
        assert_eq!(bridge.table().unwrap().row_count(), 2);
    }
}
